"""Coverage-backend selection: ``settrace`` reference vs ``sys.monitoring``.

The per-exec fast path splits branch coverage into two interchangeable
backends behind the same selection-seam pattern :mod:`repro.execcore`
established for the persistence domain and counter maps:

* ``settrace`` — the original :class:`~repro.instrument.branchcov.
  BranchCoverage` recorder, retained as the reference semantics.  Works
  on every supported interpreter but pays a Python callback per executed
  line in *every* frame entered while tracing is active.
* ``monitoring`` — PEP 669 ``sys.monitoring`` LINE events (py3.12+).
  Lines in non-instrumented files answer ``DISABLE`` once and are never
  reported again, so the steady-state per-event cost collapses to the
  instrumented workload lines only.

The contract (enforced by ``tests/test_fastpath_grid.py`` and the
hypothesis properties in ``tests/fuzz/test_coverage_properties.py``) is
*identical edge maps*: the same ``stable_hash16(file:line)`` locations,
the same ``cur ^ (prev >> 1)`` slot encoding, byte-identical sparse
maps for the same execution.  The monitoring backend is therefore the
default wherever the interpreter provides ``sys.monitoring``; older
interpreters degrade to ``settrace`` automatically (graceful
degradation, never a hard failure).

Selection is process-global for the same reason exec-core selection is:
executions fork into worker subprocesses that inherit the constructed
executor, so the engine sets the global once from its ``cov_backend``
kwarg before the executor is built, and records the resolved value in
its campaign metadata.  The backend is engine configuration, never a
stats field: ``comparable()`` output is identical across backends.
"""

from __future__ import annotations

import sys
from typing import Iterable, Optional

from repro.errors import FuzzerError

#: Whether this interpreter provides PEP 669 monitoring (py3.12+).
HAVE_MONITORING = hasattr(sys, "monitoring")

#: Backend names accepted by ``--cov-backend`` / :func:`set_backend`.
COV_BACKENDS = ("settrace", "monitoring")

#: The default backend: monitoring wherever PEP 669 exists, else settrace.
DEFAULT_BACKEND = "monitoring" if HAVE_MONITORING else "settrace"

_active = DEFAULT_BACKEND


def resolve(name: Optional[str] = None) -> str:
    """Validate ``name`` and resolve None/"" to the platform default.

    Asking for ``monitoring`` on an interpreter without ``sys.monitoring``
    is a configuration error (the caller asked for something the host
    cannot honor), unlike the silent default degradation when no backend
    is named.
    """
    if name in (None, ""):
        return DEFAULT_BACKEND
    if name not in COV_BACKENDS:
        raise FuzzerError(f"unknown coverage backend {name!r}; "
                          f"known: {', '.join(COV_BACKENDS)}")
    if name == "monitoring" and not HAVE_MONITORING:
        raise FuzzerError(
            "coverage backend 'monitoring' requires sys.monitoring "
            f"(PEP 669, py3.12+), unavailable on {sys.version.split()[0]}")
    return name


def set_backend(name: Optional[str] = None) -> str:
    """Select the process-global backend; returns the resolved name."""
    global _active
    _active = resolve(name)
    return _active


def active_backend() -> str:
    """The backend :func:`make_branch_coverage` currently builds."""
    return _active


# ----------------------------------------------------------------------
# Construction factory (the only seam the rest of the code uses)
# ----------------------------------------------------------------------
def make_branch_coverage(path_fragments: Optional[Iterable[str]] = None):
    """Build a branch-coverage recorder under the active backend."""
    if _active == "monitoring":
        from repro.instrument.branchcov import MonitoringBranchCoverage
        return MonitoringBranchCoverage(path_fragments)
    from repro.instrument.branchcov import BranchCoverage
    return BranchCoverage(path_fragments)
