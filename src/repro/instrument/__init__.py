"""Instrumentation: PM-operation tracking and branch coverage.

The original PMFuzz instruments PM programs twice:

* an LLVM pass inserts a tracking call (with a compile-time-unique ID)
  before every PM-library call site, feeding the PM counter-map of
  Algorithm 1; and
* AFL++'s compile-time instrumentation records branch (edge) coverage.

In this reproduction the workloads are Python, so both trackers are
runtime components:

* :mod:`repro.instrument.pmops` assigns stable 16-bit IDs to PM-library
  call sites (``file:line`` of the calling workload code);
* :mod:`repro.instrument.counter_map` is the PM counter-map update of
  Algorithm 1 (XOR transition encoding, 8-bit saturating counters);
* :mod:`repro.instrument.branchcov` records AFL-style line-edge coverage
  over workload modules via ``sys.settrace``;
* :mod:`repro.instrument.context` ties them together into the
  per-execution :class:`~repro.instrument.context.ExecutionContext` that
  the pmdk layer reports into.
"""

from repro.instrument.branchcov import BranchCoverage
from repro.instrument.context import (
    ExecutionContext,
    current_context,
    pm_call_site,
    push_context,
)
from repro.instrument.counter_map import PM_MAP_SIZE, PMCounterMap
from repro.instrument.pmops import PMOpRegistry

__all__ = [
    "BranchCoverage",
    "ExecutionContext",
    "PMCounterMap",
    "PMOpRegistry",
    "PM_MAP_SIZE",
    "current_context",
    "pm_call_site",
    "push_context",
]
