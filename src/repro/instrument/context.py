"""Per-execution instrumentation context.

Ties the PM-op registry, the PM counter-map and the trace buffer together
for one execution of a workload, and exposes them to the pmdk layer via a
module-level context stack.  The pmdk functions call
:func:`current_context` on every PM operation; when no context is active
(plain library use outside the fuzzer), tracking is a no-op, which is the
analogue of running an uninstrumented binary.

The context also carries the :class:`~repro.workloads.synthetic.BugInjector`
(if any) so the library can consult active synthetic bugs, mirroring how
the paper injects bugs into PMDK itself.
"""

from __future__ import annotations

import contextlib
import sys
from typing import Iterator, List, Optional

from repro.execcore import make_counter_map
from repro.instrument.pmops import GLOBAL_REGISTRY, PMOpRegistry
from repro.pmem.persistence import TraceEvent


class ExecutionContext:
    """Instrumentation state for a single workload execution.

    Attributes:
        counter_map: the Algorithm-1 PM counter-map for this execution.
        trace: collected PM trace events (consumed by the detectors).
        registry: call-site ID registry (shared, compile-time analogue).
        injector: optional synthetic-bug injector consulted by pmdk.
    """

    def __init__(
        self,
        registry: Optional[PMOpRegistry] = None,
        injector: Optional[object] = None,
        collect_trace: bool = True,
        counter_map: Optional[object] = None,
    ) -> None:
        self.registry = registry or GLOBAL_REGISTRY
        # The executor pools one counter map across executions (64 KiB
        # allocated once, reset in place per exec); standalone contexts
        # build their own.
        self.counter_map = counter_map if counter_map is not None \
            else make_counter_map()
        self.trace: List[TraceEvent] = []
        self.injector = injector
        self.collect_trace = collect_trace
        #: All PM-operation site labels hit (synthetic-bug site coverage).
        self.sites_hit: set = set()

    def record_pm_op(self, site_label: str) -> int:
        """Record one PM operation at ``site_label``; returns its op ID."""
        op_id = self.registry.site_id(site_label)
        self.counter_map.update(op_id)
        self.sites_hit.add(site_label)
        return op_id

    def observe(self, event: TraceEvent) -> None:
        """PersistenceDomain observer: buffer the trace event."""
        if self.collect_trace:
            self.trace.append(event)


_STACK: List[ExecutionContext] = []


def current_context() -> Optional[ExecutionContext]:
    """Return the innermost active context, or None."""
    return _STACK[-1] if _STACK else None


@contextlib.contextmanager
def push_context(ctx: ExecutionContext) -> Iterator[ExecutionContext]:
    """Activate ``ctx`` for the dynamic extent of the with-block."""
    _STACK.append(ctx)
    try:
        yield ctx
    finally:
        popped = _STACK.pop()
        assert popped is ctx, "instrumentation context stack corrupted"


_SITE_CACHE: dict = {}


def pm_call_site(depth: int = 2) -> str:
    """Return the ``file:line`` label of the PM-library caller.

    ``depth`` counts frames above this function: the default of 2 labels
    the caller of the pmdk entry point that invoked ``pm_call_site``.
    This reproduces the compiler pass inserting a tracking call *at the
    call site* of each PM library function (Section 4.2).  Labels are
    cached per (code object, line), since call sites are static.
    """
    frame = sys._getframe(depth)
    key = (id(frame.f_code), frame.f_lineno)
    label = _SITE_CACHE.get(key)
    if label is None:
        filename = frame.f_code.co_filename
        # Trailing two path components keep labels stable and readable.
        parts = filename.replace("\\", "/").rsplit("/", 2)
        label = f"{'/'.join(parts[-2:])}:{frame.f_lineno}"
        _SITE_CACHE[key] = label
    return label
