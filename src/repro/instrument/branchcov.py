"""AFL-style branch (edge) coverage for Python workloads.

AFL++ instruments every basic block at compile time; at runtime the pair
(previous block, current block) is hashed into a 64 Ki slot bitmap.  The
reproduction gets the same signal from ``sys.settrace`` line events
restricted to workload source files: each executed line is a location,
consecutive locations form an edge, and edges index an AFL-style counter
map with the classic ``cur ^ (prev >> 1)`` encoding.

Location IDs are stable CRC hashes of ``file:line``, satisfying the
derandomization requirement: the same input always produces the same
coverage map.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Iterable, List, Optional

from repro._util import stable_hash16

#: Coverage map size (matches AFL's 64 KiB).
COV_MAP_SIZE = 1 << 16


class BranchCoverage:
    """Edge-coverage recorder over a set of instrumented source files.

    Args:
        path_fragments: only files whose path contains one of these
            fragments are instrumented (default: the workloads package),
            mirroring how only the target binary is AFL-instrumented.
    """

    def __init__(self, path_fragments: Optional[Iterable[str]] = None) -> None:
        self.counters = bytearray(COV_MAP_SIZE)
        #: Slots hit this execution (lets consumers avoid full-map scans).
        self.touched = set()
        self._prev_loc = 0
        self._fragments: List[str] = list(path_fragments or ["repro/workloads"])
        self._file_ok: Dict[str, bool] = {}
        self._loc_cache: Dict[int, int] = {}
        self._active = False

    # ------------------------------------------------------------------
    def _instrumented(self, filename: str) -> bool:
        ok = self._file_ok.get(filename)
        if ok is None:
            norm = filename.replace("\\", "/")
            ok = any(frag in norm for frag in self._fragments)
            self._file_ok[filename] = ok
        return ok

    def _local_trace(self, frame, event: str, arg) -> Optional[Callable]:
        if event == "line":
            key = (id(frame.f_code) << 20) ^ frame.f_lineno
            loc = self._loc_cache.get(key)
            if loc is None:
                loc = stable_hash16(f"{frame.f_code.co_filename}:{frame.f_lineno}")
                self._loc_cache[key] = loc
            slot = (loc ^ self._prev_loc) & (COV_MAP_SIZE - 1)
            if self.counters[slot] != 0xFF:
                self.counters[slot] += 1
            self.touched.add(slot)
            self._prev_loc = loc >> 1
        return self._local_trace

    def _global_trace(self, frame, event: str, arg) -> Optional[Callable]:
        if event == "call" and self._instrumented(frame.f_code.co_filename):
            return self._local_trace
        return None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin recording (installs the trace hook)."""
        if self._active:
            return
        self._active = True
        sys.settrace(self._global_trace)

    def stop(self) -> None:
        """Stop recording (removes the trace hook)."""
        if not self._active:
            return
        sys.settrace(None)
        self._active = False

    def __enter__(self) -> "BranchCoverage":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear counters for a fresh execution."""
        self.counters = bytearray(COV_MAP_SIZE)
        self.touched = set()
        self._prev_loc = 0

    def sparse(self):
        """Yield (slot, count) for the slots hit this execution."""
        counters = self.counters
        return [(slot, counters[slot]) for slot in self.touched]

    def edge_count(self) -> int:
        """Number of distinct edges hit."""
        return sum(1 for c in self.counters if c)

    def nonzero_slots(self) -> List[int]:
        """Indices of all populated slots."""
        return [i for i, c in enumerate(self.counters) if c]
