"""AFL-style branch (edge) coverage for Python workloads.

AFL++ instruments every basic block at compile time; at runtime the pair
(previous block, current block) is hashed into a 64 Ki slot bitmap.  The
reproduction gets the same signal from line events restricted to
workload source files: each executed line is a location, consecutive
locations form an edge, and edges index an AFL-style counter map with
the classic ``cur ^ (prev >> 1)`` encoding.

Location IDs are stable CRC hashes of ``file:line``, satisfying the
derandomization requirement: the same input always produces the same
coverage map.

Two recorders implement the same map (see
:mod:`repro.instrument.covcore` for selection):

* :class:`BranchCoverage` — ``sys.settrace`` line events, the reference
  backend that runs on every supported interpreter.
* :class:`MonitoringBranchCoverage` — PEP 669 ``sys.monitoring`` LINE
  events (py3.12+), which lets non-instrumented code answer ``DISABLE``
  once per location instead of paying a callback per line forever.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro._util import stable_hash16
from repro.errors import FuzzerError

#: Coverage map size (matches AFL's 64 KiB).
COV_MAP_SIZE = 1 << 16


class BranchCoverage:
    """Edge-coverage recorder over a set of instrumented source files.

    Args:
        path_fragments: only files whose path contains one of these
            fragments are instrumented (default: the workloads package),
            mirroring how only the target binary is AFL-instrumented.
    """

    def __init__(self, path_fragments: Optional[Iterable[str]] = None) -> None:
        self.counters = bytearray(COV_MAP_SIZE)
        #: Slots hit this execution (lets consumers avoid full-map scans).
        #: Every touched slot has a nonzero counter — counters only ever
        #: increment between resets — so edge accounting derives from
        #: this set instead of scanning all 64 Ki slots.
        self.touched = set()
        self._prev_loc = 0
        self._fragments: List[str] = list(path_fragments or ["repro/workloads"])
        self._file_ok: Dict[str, bool] = {}
        #: ``(id(code), lineno) -> (stable_hash16(file:line), code)``.
        #: Two aliasing hazards shape this layout: a bare ``id(code)``
        #: key can be reissued once the original code object is
        #: collected, and keying by the code object itself is no better —
        #: code objects hash and compare *ignoring* ``co_filename``, so
        #: identical source compiled under two filenames would share one
        #: entry.  Keying by id and pinning the code object in the value
        #: closes both: the reference keeps the id from ever being
        #: reissued while the entry is cached.
        self._loc_cache: Dict[Tuple[int, int], Tuple[int, object]] = {}
        self._active = False

    # ------------------------------------------------------------------
    def _instrumented(self, filename: str) -> bool:
        ok = self._file_ok.get(filename)
        if ok is None:
            norm = filename.replace("\\", "/")
            ok = any(frag in norm for frag in self._fragments)
            self._file_ok[filename] = ok
        return ok

    def _hit(self, code, lineno: int) -> None:
        key = (id(code), lineno)
        entry = self._loc_cache.get(key)
        if entry is None:
            loc = stable_hash16(f"{code.co_filename}:{lineno}")
            self._loc_cache[key] = (loc, code)
        else:
            loc = entry[0]
        slot = (loc ^ self._prev_loc) & (COV_MAP_SIZE - 1)
        if self.counters[slot] != 0xFF:
            self.counters[slot] += 1
        self.touched.add(slot)
        self._prev_loc = loc >> 1

    def _global_trace(self, frame, event: str, arg) -> Optional[Callable]:
        if event != "call" or not self._instrumented(frame.f_code.co_filename):
            return None
        # Per-frame-entry line filter matching PEP 669 LINE semantics: an
        # event fires only when the line number *changes* within the
        # frame.  Seeding with ``f_lineno`` at the call event reproduces
        # the two places sys.monitoring stays silent where raw settrace
        # would fire again: a backward jump to a single-line loop body,
        # and generator/genexpr resumption into the defining line (each
        # resume is a fresh call event, so the seed re-arms).  Both
        # backends therefore produce byte-identical maps.
        last_line = frame.f_lineno

        def _local_trace(frame, event, arg):
            nonlocal last_line
            if event == "line" and frame.f_lineno != last_line:
                last_line = frame.f_lineno
                self._hit(frame.f_code, last_line)
            return _local_trace

        return _local_trace

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin recording (installs the trace hook)."""
        if self._active:
            return
        self._active = True
        sys.settrace(self._global_trace)

    def stop(self) -> None:
        """Stop recording (removes the trace hook)."""
        if not self._active:
            return
        sys.settrace(None)
        self._active = False

    def __enter__(self) -> "BranchCoverage":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear counters for a fresh execution.

        In place: only the slots hit since the previous reset are
        zeroed, so the 64 KiB map is allocated once per recorder
        lifetime instead of once per execution.
        """
        counters = self.counters
        for slot in self.touched:
            counters[slot] = 0
        self.touched.clear()
        self._prev_loc = 0

    def preload(self, pairs: Sequence[Tuple[int, int]], prev_loc: int) -> None:
        """Replay a recorded ``(slot, count)`` delta into a fresh map.

        Used by the warm-open cache to re-apply the execution prefix's
        coverage without re-executing it; ``prev_loc`` restores the edge
        chain so the first post-prefix line forms the same edge it would
        after a cold run.
        """
        counters = self.counters
        touched = self.touched
        for slot, count in pairs:
            counters[slot] = count
            touched.add(slot)
        self._prev_loc = prev_loc

    @property
    def prev_loc(self) -> int:
        """The ``prev >> 1`` edge-chain state (for prefix capture)."""
        return self._prev_loc

    def sparse(self):
        """Yield (slot, count) for the slots hit this execution."""
        counters = self.counters
        return [(slot, counters[slot]) for slot in self.touched]

    def edge_count(self) -> int:
        """Number of distinct edges hit."""
        return len(self.touched)

    def nonzero_slots(self) -> List[int]:
        """Indices of all populated slots."""
        return sorted(self.touched)


class MonitoringBranchCoverage(BranchCoverage):
    """PEP 669 ``sys.monitoring`` LINE-event recorder (py3.12+).

    Produces the exact map :class:`BranchCoverage` produces — same
    ``stable_hash16`` locations, same ``cur ^ (prev >> 1)`` slots — but
    non-instrumented code locations answer ``sys.monitoring.DISABLE``
    on first sight and never fire again (until ``restart_events``), so
    steady-state event cost is confined to the instrumented workload
    lines.

    ``DISABLE`` decisions are interpreter-global per tool id and outlive
    any single recorder, so they are only valid for one instrumented
    fragment set at a time: starting a recorder whose fragments differ
    from the set the standing decisions were made under calls
    ``sys.monitoring.restart_events()`` first.
    """

    _TOOL_NAME = "repro-branchcov"
    #: Whether COVERAGE_ID has been claimed for this process.
    _tool_claimed = False
    #: Fragment tuple the standing interpreter-global DISABLE decisions
    #: were made under (None = no decisions standing).
    _disable_fragments: Optional[Tuple[str, ...]] = None

    def start(self) -> None:
        if self._active:
            return
        mon = sys.monitoring
        cls = MonitoringBranchCoverage
        if not cls._tool_claimed:
            try:
                mon.use_tool_id(mon.COVERAGE_ID, cls._TOOL_NAME)
            except ValueError as exc:
                raise FuzzerError(
                    "sys.monitoring COVERAGE_ID is already claimed by "
                    f"another tool ({mon.get_tool(mon.COVERAGE_ID)!r}); "
                    "run with --cov-backend settrace") from exc
            cls._tool_claimed = True
        fragments = tuple(self._fragments)
        if cls._disable_fragments is None:
            cls._disable_fragments = fragments
        elif cls._disable_fragments != fragments:
            mon.restart_events()
            cls._disable_fragments = fragments
        mon.register_callback(mon.COVERAGE_ID, mon.events.LINE, self._on_line)
        mon.set_events(mon.COVERAGE_ID, mon.events.LINE)
        self._active = True

    def stop(self) -> None:
        if not self._active:
            return
        mon = sys.monitoring
        mon.set_events(mon.COVERAGE_ID, 0)
        mon.register_callback(mon.COVERAGE_ID, mon.events.LINE, None)
        self._active = False

    def _on_line(self, code, line_number: int):
        key = (id(code), line_number)
        entry = self._loc_cache.get(key)
        if entry is None:
            if not self._instrumented(code.co_filename):
                return sys.monitoring.DISABLE
            loc = stable_hash16(f"{code.co_filename}:{line_number}")
            self._loc_cache[key] = (loc, code)
        else:
            loc = entry[0]
        slot = (loc ^ self._prev_loc) & (COV_MAP_SIZE - 1)
        if self.counters[slot] != 0xFF:
            self.counters[slot] += 1
        self.touched.add(slot)
        self._prev_loc = loc >> 1
        return None
