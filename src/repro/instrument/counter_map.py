"""The PM counter-map of Algorithm 1.

PMFuzz encodes each *transition* between two consecutive PM operations by
XORing their call-site IDs, and increments an 8-bit saturating counter at
that index in a 64 Ki-slot map.  After recording, the previous ID is
right-shifted by one bit so that A→B and B→A map to different slots
(preserving direction), exactly as in AFL's edge encoding.

A "PM path" in the evaluation is a distinct populated slot: a test case
covers a *new* PM path when it hits a slot no prior test case hit
(Algorithm 2's ``unseen`` predicate).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

#: Number of slots in the PM counter-map (matches AFL's 64 KiB map).
PM_MAP_SIZE = 1 << 16

#: AFL-style count bucketing: collapse raw counts into coarse classes so
#: "significantly different counter values" (Algorithm 2) is well defined.
_BUCKETS = (0, 1, 2, 3, 4, 8, 16, 32, 128)


def _bucket_of_scan(count: int) -> int:
    """Threshold-scan bucketing (the LUT's generator and test oracle)."""
    for i in range(len(_BUCKETS) - 1, -1, -1):
        if count >= _BUCKETS[i]:
            return i
    return 0


#: Counters are 8-bit saturating, so every reachable value is covered by
#: a 256-entry lookup table — one index instead of up to nine compares
#: on the Algorithm-2 prioritization path.
_BUCKET_LUT = tuple(_bucket_of_scan(c) for c in range(256))


def bucket_of(count: int) -> int:
    """Return the bucket index for a raw 8-bit counter value."""
    if 0 <= count < 256:
        return _BUCKET_LUT[count]
    return _bucket_of_scan(count)


class PMCounterMap:
    """Per-execution PM transition counter map (Algorithm 1)."""

    __slots__ = ("counters", "touched", "_prev_id")

    def __init__(self) -> None:
        self.counters = bytearray(PM_MAP_SIZE)
        #: Slots hit this execution (lets consumers avoid full-map scans).
        self.touched = set()
        self._prev_id = 0

    def update(self, op_id: int) -> int:
        """Record one PM operation; returns the map slot that was hit.

        Implements Algorithm 1: ``loc = curID ^ prevID``; increment
        (saturating at 255); ``prevID = curID >> 1``.
        """
        loc = (op_id ^ self._prev_id) & (PM_MAP_SIZE - 1)
        if self.counters[loc] != 0xFF:
            self.counters[loc] += 1
        self.touched.add(loc)
        self._prev_id = op_id >> 1
        return loc

    def reset(self) -> None:
        """Clear counters and transition state for a fresh execution."""
        self.counters = bytearray(PM_MAP_SIZE)
        self.touched = set()
        self._prev_id = 0

    def sparse(self):
        """Yield (slot, count) for the slots hit this execution."""
        counters = self.counters
        return [(slot, counters[slot]) for slot in self.touched]

    def nonzero_slots(self) -> List[int]:
        """Return the indices of all populated slots (PM paths hit)."""
        return [i for i, c in enumerate(self.counters) if c]

    def items(self) -> Iterator[Tuple[int, int]]:
        """Yield (slot, raw count) for populated slots."""
        for i, c in enumerate(self.counters):
            if c:
                yield i, c

    def path_count(self) -> int:
        """Number of distinct PM transitions (populated slots)."""
        return sum(1 for c in self.counters if c)
