"""The PM counter-map of Algorithm 1.

PMFuzz encodes each *transition* between two consecutive PM operations by
XORing their call-site IDs, and increments an 8-bit saturating counter at
that index in a 64 Ki-slot map.  After recording, the previous ID is
right-shifted by one bit so that A→B and B→A map to different slots
(preserving direction), exactly as in AFL's edge encoding.

A "PM path" in the evaluation is a distinct populated slot: a test case
covers a *new* PM path when it hits a slot no prior test case hit
(Algorithm 2's ``unseen`` predicate).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

try:  # The vector core needs numpy; the scalar map never does.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less hosts
    _np = None

#: Number of slots in the PM counter-map (matches AFL's 64 KiB map).
PM_MAP_SIZE = 1 << 16

#: AFL-style count bucketing: collapse raw counts into coarse classes so
#: "significantly different counter values" (Algorithm 2) is well defined.
_BUCKETS = (0, 1, 2, 3, 4, 8, 16, 32, 128)


def _bucket_of_scan(count: int) -> int:
    """Threshold-scan bucketing (the LUT's generator and test oracle)."""
    for i in range(len(_BUCKETS) - 1, -1, -1):
        if count >= _BUCKETS[i]:
            return i
    return 0


#: Counters are 8-bit saturating, so every reachable value is covered by
#: a 256-entry lookup table — one index instead of up to nine compares
#: on the Algorithm-2 prioritization path.
_BUCKET_LUT = tuple(_bucket_of_scan(c) for c in range(256))


def bucket_of(count: int) -> int:
    """Return the bucket index for a raw 8-bit counter value."""
    if 0 <= count < 256:
        return _BUCKET_LUT[count]
    return _bucket_of_scan(count)


#: The same 256-entry LUT as a numpy array: one vectorized table lookup
#: buckets a whole sparse map at once (see VectorGlobalCoverage).
BUCKET_LUT_NP = _np.array(_BUCKET_LUT, dtype=_np.uint8) if _np is not None \
    else None


class PMCounterMap:
    """Per-execution PM transition counter map (Algorithm 1)."""

    __slots__ = ("counters", "touched", "_prev_id")

    def __init__(self) -> None:
        self.counters = bytearray(PM_MAP_SIZE)
        #: Slots hit this execution (lets consumers avoid full-map scans).
        self.touched = set()
        self._prev_id = 0

    def update(self, op_id: int) -> int:
        """Record one PM operation; returns the map slot that was hit.

        Implements Algorithm 1: ``loc = curID ^ prevID``; increment
        (saturating at 255); ``prevID = curID >> 1``.
        """
        loc = (op_id ^ self._prev_id) & (PM_MAP_SIZE - 1)
        if self.counters[loc] != 0xFF:
            self.counters[loc] += 1
        self.touched.add(loc)
        self._prev_id = op_id >> 1
        return loc

    def reset(self) -> None:
        """Clear counters and transition state for a fresh execution.

        In place: only the slots hit since the previous reset are
        zeroed, so the 64 KiB map is allocated once per map lifetime
        (the executor pools one map across executions) instead of once
        per execution.
        """
        counters = self.counters
        for slot in self.touched:
            counters[slot] = 0
        self.touched.clear()
        self._prev_id = 0

    def preload(self, pairs, prev_id: int) -> None:
        """Replay a recorded ``(slot, count)`` delta into a fresh map.

        Used by the warm-open cache to re-apply the execution prefix's
        PM transitions without re-executing it; ``prev_id`` restores
        Algorithm 1's transition chain.
        """
        counters = self.counters
        touched = self.touched
        for slot, count in pairs:
            counters[slot] = count
            touched.add(slot)
        self._prev_id = prev_id

    @property
    def prev_id(self) -> int:
        """The ``prev >> 1`` transition-chain state (for prefix capture)."""
        return self._prev_id

    def sparse(self):
        """Yield (slot, count) for the slots hit this execution."""
        counters = self.counters
        return [(slot, counters[slot]) for slot in self.touched]

    def nonzero_slots(self) -> List[int]:
        """Return the indices of all populated slots (PM paths hit)."""
        return [i for i, c in enumerate(self.counters) if c]

    def items(self) -> Iterator[Tuple[int, int]]:
        """Yield (slot, raw count) for populated slots."""
        for i, c in enumerate(self.counters):
            if c:
                yield i, c

    def path_count(self) -> int:
        """Number of distinct PM transitions (populated slots)."""
        return sum(1 for c in self.counters if c)


class VectorPMCounterMap:
    """Deferred-accumulation PM counter map (the ``vector`` exec core).

    :meth:`update` stays on Algorithm 1's arithmetic but only *appends*
    the hit slot to a pending list — the per-op cost drops to an xor, a
    shift and a list append.  The saturating counter increments are
    applied in one batch the first time anything reads the map
    (typically :meth:`sparse`, once per execution): a plain loop for
    ordinary executions, one vectorized ``unique``/gather/scatter pass
    when the batch is large enough to amortize numpy's call overhead.
    Deferral is invisible: saturating addition commutes, so folding the
    pending hits in any batching yields the same counters the scalar
    map builds one op at a time.

    ``sparse()`` returns the same (slot, count) *set* as the scalar map
    in sorted-slot order; sparse order is behavior-neutral everywhere
    (the coverage algebra is commutative and no determinism-contract
    field embeds it), which the exec-core grid test demonstrates.
    """

    __slots__ = ("_counters", "_counters_np", "_touched", "_prev_id",
                 "_pending")

    #: Pending-hit batches at or under this size fold in with a plain
    #: Python loop; bigger ones go through one numpy unique/scatter.
    #: Typical executions hit tens to a few hundred transitions, where
    #: the loop beats numpy's fixed call overhead.
    _BULK_PENDING = 512

    def __init__(self) -> None:
        self._counters = bytearray(PM_MAP_SIZE)
        self._counters_np = _np.frombuffer(self._counters, dtype=_np.uint8)
        self._touched: set = set()
        self._prev_id = 0
        self._pending: List[int] = []

    def update(self, op_id: int) -> int:
        """Record one PM operation; returns the map slot that was hit."""
        loc = (op_id ^ self._prev_id) & (PM_MAP_SIZE - 1)
        self._pending.append(loc)
        self._prev_id = op_id >> 1
        return loc

    def _materialize(self) -> None:
        pending = self._pending
        if not pending:
            return
        if len(pending) <= self._BULK_PENDING:
            counters = self._counters
            touched = self._touched
            for loc in pending:
                count = counters[loc]
                if count != 0xFF:
                    counters[loc] = count + 1
                touched.add(loc)
        else:
            slots, hits = _np.unique(
                _np.array(pending, dtype=_np.int64), return_counts=True)
            current = self._counters_np[slots].astype(_np.int64)
            self._counters_np[slots] = _np.minimum(current + hits, 255)
            self._touched.update(slots.tolist())
        pending.clear()

    @property
    def counters(self) -> bytearray:
        """The full 64 Ki map (materializes pending hits first)."""
        self._materialize()
        return self._counters

    @property
    def touched(self) -> set:
        """Slots hit this execution (materializes pending hits first)."""
        self._materialize()
        return self._touched

    def reset(self) -> None:
        """Clear counters and transition state for a fresh execution.

        In place — the bytearray and its numpy view are kept (the view
        aliases the buffer, so the buffer must never be replaced); only
        the slots hit since the previous reset are zeroed.  Pending hits
        were never applied to the counters, so dropping them is enough.
        """
        self._pending.clear()
        counters = self._counters
        for slot in self._touched:
            counters[slot] = 0
        self._touched.clear()
        self._prev_id = 0

    def preload(self, pairs, prev_id: int) -> None:
        """Replay a recorded ``(slot, count)`` delta into a fresh map."""
        counters = self._counters
        touched = self._touched
        for slot, count in pairs:
            counters[slot] = count
            touched.add(slot)
        self._prev_id = prev_id

    @property
    def prev_id(self) -> int:
        """The ``prev >> 1`` transition-chain state (for prefix capture)."""
        return self._prev_id

    def sparse(self) -> List[Tuple[int, int]]:
        """Return (slot, count) for the slots hit this execution."""
        self._materialize()
        counters = self._counters
        return [(slot, counters[slot]) for slot in sorted(self._touched)]

    def nonzero_slots(self) -> List[int]:
        """Return the indices of all populated slots (PM paths hit)."""
        self._materialize()
        return _np.flatnonzero(self._counters_np).tolist()

    def items(self) -> Iterator[Tuple[int, int]]:
        """Yield (slot, raw count) for populated slots."""
        self._materialize()
        counters = self._counters
        for slot in _np.flatnonzero(self._counters_np).tolist():
            yield slot, counters[slot]

    def path_count(self) -> int:
        """Number of distinct PM transitions (populated slots)."""
        self._materialize()
        return int(_np.count_nonzero(self._counters_np))
