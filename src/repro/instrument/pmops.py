"""PM-operation call-site registry.

PMFuzz's compiler pass assigns a unique ID to every PM-library call site
at compile time (Section 4.2).  Here, a call site is identified by the
``file:line`` of the workload code that invoked the PM library function;
the ID is a stable 16-bit hash of that label, so it is identical across
runs and processes (a derandomization requirement).

The registry also remembers the label for each ID so detection reports
can name the offending source location.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._util import stable_hash16


class PMOpRegistry:
    """Maps call-site labels to stable 16-bit PM operation IDs."""

    def __init__(self) -> None:
        self._by_label: Dict[str, int] = {}
        self._by_id: Dict[int, str] = {}

    def site_id(self, label: str) -> int:
        """Return (registering if needed) the 16-bit ID for ``label``."""
        op_id = self._by_label.get(label)
        if op_id is None:
            op_id = stable_hash16(label)
            self._by_label[label] = op_id
            # Collisions are possible (16-bit space) and harmless — AFL's
            # coverage map has the same property; keep the first label.
            self._by_id.setdefault(op_id, label)
        return op_id

    def label_of(self, op_id: int) -> Optional[str]:
        """Return the first label registered for ``op_id``, if any."""
        return self._by_id.get(op_id)

    def __len__(self) -> int:
        return len(self._by_label)


#: Process-wide registry: IDs are stable, so sharing it is safe and mirrors
#: compile-time ID assignment (one binary, one ID set).
GLOBAL_REGISTRY = PMOpRegistry()
