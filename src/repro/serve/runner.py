"""One hosted campaign: the forked child the daemon supervises.

The runner is the serving plane's analogue of a fleet member
(:mod:`repro.orchestrate.member`), minus the corpus barriers: it drives
a full campaign engine in checkpoint-sized slices, renews a heartbeat
lease at each round so the daemon's watchdog can tell a slow campaign
from a wedged one, and distinguishes two clean exits:

* **0** — the campaign reached its terminal state; the final stats
  were atomically published as ``stats.bin`` (the daemon reads this,
  marks the campaign done, and only then commits the journal intent).
* **75** (``EX_TEMPFAIL``) — the daemon is draining: the runner
  checkpointed everything and got out of the way.  The journal intent
  stays pending, so the next daemon start resumes the campaign
  bit-for-bit (PR-1's resume contract) and it still terminates exactly
  once.

Any other status is a death the daemon's backoff/circuit-breaker
machinery deals with.  Because the runner re-checkpoints at fixed
virtual-time boundaries and every random decision flows through the
snapshotted RNG, a SIGKILLed-and-resumed campaign produces
``comparable()`` stats identical to an undisturbed one — the serving
plane inherits the determinism contract instead of re-proving it.
"""

from __future__ import annotations

import math
import os
import signal
import time
import traceback

from repro._util import atomic_write_bytes
from repro.core.config import config_by_name
from repro.fuzz.engine import FuzzEngine
from repro.fuzz.rng import DeterministicRandom
from repro.orchestrate.heartbeat import HeartbeatWriter
from repro.serve.state import ServePaths

#: Clean drain exit: checkpointed, not terminal (sysexits EX_TEMPFAIL).
DRAIN_EXIT = 75

#: Chaos exit used by the ``fail`` hook (exercises the circuit breaker).
CHAOS_EXIT = 3


def _build_engine(request: dict, cid: str, paths: ServePaths) -> FuzzEngine:
    ckpt = paths.checkpoint(cid)
    if os.path.exists(ckpt):
        return FuzzEngine.resume(ckpt)
    from repro.core.pmfuzz import build_engine

    config = config_by_name(request["config"])
    rng = DeterministicRandom(int(request["seed"])).fork(
        f"{request['workload']}/{config.name}")
    return build_engine(
        request["workload"], config, rng=rng,
        fault_plan=request.get("fault_plan"),
        checkpoint_path=ckpt,
        trace_dir=paths.campaign_dir(cid),
    )


def runner_main(request: dict, cid: str, root: str,
                lease_s: float = 5.0,
                checkpoint_every: float = 0.25) -> int:
    """Run one submitted campaign to its terminal state (or a drain).

    Called in the forked child by the daemon (and directly by tests).
    Never raises: an unexpected error becomes a nonzero status for the
    daemon's circuit breaker.
    """
    try:
        return _runner_main(request, cid, root, lease_s, checkpoint_every)
    except Exception:
        traceback.print_exc()
        return 1


def _runner_main(request: dict, cid: str, root: str,
                 lease_s: float, checkpoint_every: float) -> int:
    paths = ServePaths(root)
    campaign_dir = paths.campaign_dir(cid)
    os.makedirs(campaign_dir, exist_ok=True)
    heartbeat = HeartbeatWriter(paths.heartbeat(cid), lease_s=lease_s)
    heartbeat.beat(0)

    chaos = request.get("chaos")
    if chaos == "fail":
        # Always dies: the watchdog's circuit breaker must retire it.
        return CHAOS_EXIT
    if chaos == "wedge-once":
        # Wedge exactly once: the lease expires, the watchdog escalates
        # SIGTERM → SIGKILL, and the restarted runner (marker present)
        # proceeds normally.
        marker = os.path.join(campaign_dir, "wedged.once")
        if not os.path.exists(marker):
            atomic_write_bytes(marker, b"", fsync=False)
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            while True:
                time.sleep(3600.0)

    # Install the drain handler *before* the (potentially slow) engine
    # build: a SIGTERM that lands while the engine is still being
    # constructed or resumed must park the campaign, not kill the child
    # under the default disposition (which the daemon would count as a
    # death).
    holder = {"engine": None, "requested": False}

    def on_sigterm(signum, frame):
        holder["requested"] = True
        if holder["engine"] is not None:
            holder["engine"].request_stop()

    previous = signal.signal(signal.SIGTERM, on_sigterm)
    engine = _build_engine(request, cid, paths)
    holder["engine"] = engine
    if holder["requested"]:
        engine.request_stop()

    budget = float(request["budget"])
    slice_every = min(checkpoint_every, budget) or budget
    epochs = max(1, int(math.ceil(budget / slice_every)))
    start = min(int(engine.vclock / slice_every), epochs - 1)
    try:
        for epoch in range(start, epochs):
            heartbeat.beat(epoch)
            engine.run_slice(min(budget, (epoch + 1) * slice_every))
            if engine.stop_requested:
                break
            engine.checkpoint()
        if engine.stop_requested and engine.vclock < budget:
            # Drain: persist everything and get out of the way.  The
            # checkpoint (determinism-neutral, PR-4) is what makes
            # "drain then resume" equal to "never drained".
            engine.checkpoint()
            engine.close()
            return DRAIN_EXIT
        # A stop that landed exactly as the budget ran out is not a
        # drain: clear the flag so finish() reports stop_reason="budget"
        # identically to an unsignalled run.
        engine._stop_requested = False
        stats = engine.finish()
    finally:
        signal.signal(signal.SIGTERM, previous)
    paths.write_stats(cid, stats)
    heartbeat.beat(epochs)
    return 0
