"""Durable write-ahead submission journal for the serve daemon.

An HTTP submission is *accepted* only after an intent record for it has
been durably appended here — the same write-ahead discipline (and the
same on-disk container: checksummed ``<op>-<key>.intent`` records in
the :data:`~repro.corpusdb.journal.INTENT_MAGIC` format, written
write-tmp+fsync+rename) that makes the corpus database's mutations
crash-atomic.  The shared format means the same damage taxonomy applies
and the same tooling heals it: an unreadable or torn intent is detected
by checksum, dropped, and counted, exactly as
:meth:`repro.corpusdb.journal.IntentJournal.pending` does.

The record carries the *complete* normalized submission, so a SIGKILLed
daemon restarts with nothing but this directory plus the per-campaign
artifacts and can re-queue (or resume, or mark terminal) every accepted
campaign:

* intent present + loadable ``stats.bin``/``retired`` marker → the
  campaign already reached its terminal state; the intent is committed.
* intent present + ``campaign.ckpt`` → the runner died mid-campaign;
  re-queue with resume (bit-identical replay, PR-1 contract).
* intent present + nothing else → accepted but never started; re-queue
  fresh.

Replay is idempotent: an intent is removed exactly once (``os.remove``
— concurrent removers observe FileNotFoundError as already-committed),
and re-running a partially-completed campaign from its checkpoint
converges on the same terminal artifacts.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from repro._util import atomic_write_bytes, pack_checksummed, \
    unpack_checksummed
from repro._vfs import current_vfs
from repro.corpusdb.journal import INTENT_MAGIC, INTENT_SUFFIX

#: The single operation this journal records.
SUBMIT_OP = "submit"


class SubmissionJournal:
    """Directory of per-submission intent records.

    ``injector`` (an :class:`~repro.resilience.faults.EnvFaultInjector`
    or None) is consulted at the ``serve-journal`` host fault site
    before every append, so the daemon's own durability path is
    testable under the seeded injector: a fired fault raises before
    anything lands on disk, the submission is *not* accepted, and the
    client gets an explicit retryable error.
    """

    def __init__(self, directory: str, injector=None) -> None:
        self.directory = directory
        self.injector = injector
        self.dropped_damaged = 0  #: unreadable intents dropped by pending()

    # ------------------------------------------------------------------
    def path_for(self, cid: str) -> str:
        return os.path.join(self.directory,
                            f"{SUBMIT_OP}-{cid}{INTENT_SUFFIX}")

    def append(self, cid: str, request: dict) -> str:
        """Durably record the accepted submission; returns the path.

        Raises :class:`~repro.errors.StorageFaultError` when the
        ``serve-journal`` fault site fires (the caller maps this to a
        retryable 503 — the submission was never accepted).
        """
        if self.injector is not None:
            self.injector.check_host("serve-journal")
        record = json.dumps({"op": SUBMIT_OP, "key": cid,
                             "request": request},
                            sort_keys=True).encode("utf-8")
        path = self.path_for(cid)
        atomic_write_bytes(path, pack_checksummed(INTENT_MAGIC, record))
        return path

    def commit(self, path: str) -> None:
        """Drop a terminal campaign's intent (idempotent)."""
        try:
            current_vfs().unlink(path)
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    def pending(self) -> List[Tuple[str, Optional[str], Optional[dict]]]:
        """Sorted ``(path, campaign_id, request)`` for every intent.

        A record that cannot be read, verified, or parsed yields
        ``(path, None, None)``; :meth:`recover_pending` drops those (a
        lost intent can only lose a submission the daemon never
        acknowledged durably — acceptance *is* the journal append).
        """
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        out: List[Tuple[str, Optional[str], Optional[dict]]] = []
        for name in names:
            if not name.endswith(INTENT_SUFFIX):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as fh:
                    blob = unpack_checksummed(INTENT_MAGIC, fh.read(),
                                              what=name)
                record = json.loads(blob.decode("utf-8"))
                if record.get("op") != SUBMIT_OP:
                    raise ValueError(f"not a submission intent: {record!r}")
                cid, request = record["key"], record["request"]
                if not isinstance(cid, str) or not isinstance(request, dict):
                    raise ValueError(f"malformed intent record {record!r}")
            except (OSError, ValueError, KeyError, TypeError):
                out.append((path, None, None))
                continue
            out.append((path, cid, request))
        return out

    def recover_pending(self) -> List[Tuple[str, str, dict]]:
        """:meth:`pending` minus damaged records, which are removed."""
        healthy: List[Tuple[str, str, dict]] = []
        for path, cid, request in self.pending():
            if cid is None or request is None:
                try:
                    current_vfs().unlink(path)
                except OSError:
                    pass
                self.dropped_damaged += 1
                continue
            healthy.append((path, cid, request))
        return healthy
