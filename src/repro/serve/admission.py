"""Admission control: validate, sandbox, and rate-limit submissions.

Everything a hostile (or merely confused) client can put in a POST body
is checked here, *before* any disk write:

* **Schema** — required fields, types, unknown-field rejection.
* **Registry** — the workload must exist in the workload registry and
  the configuration in the Table-2 config table; a ``fault_plan`` must
  parse under the ``site:rate[:burst]`` grammar.
* **Tenancy** — tenant names are confined to ``[a-z0-9][a-z0-9_-]*``
  (max 32 chars), which is what makes the per-tenant directory layout
  safe: a tenant name can never traverse out of ``tenants/``.
* **Budget bounds** — a budget must be positive and below the daemon's
  ceiling, so one submission cannot monopolize the pool for hours.

Quota enforcement (per-tenant concurrency, global queue depth) lives in
:meth:`AdmissionPolicy.check_quota`, separated from validation because
it depends on live daemon state; its rejections are explicitly
*retryable* (HTTP 429 with a Retry-After), unlike validation failures
(400, permanent).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import config_by_name
from repro.errors import FuzzerError, ReproError
from repro.resilience.faults import as_fault_plan
from repro.workloads import workload_names

TENANT_RE = re.compile(r"^[a-z0-9][a-z0-9_-]{0,31}$")

#: Fields a submission body may carry (everything else is rejected —
#: a typo like "buget" should fail loudly, not silently default).
ALLOWED_FIELDS = ("tenant", "workload", "config", "budget", "seed",
                  "fault_plan", "chaos")

#: Chaos hooks a test-mode daemon accepts (see ServeDaemon.enable_chaos).
CHAOS_KINDS = ("wedge-once", "fail")


class AdmissionError(ReproError):
    """A submission was rejected; carries the HTTP status to return."""

    def __init__(self, message: str, http_status: int = 400,
                 retryable: bool = False) -> None:
        super().__init__(message)
        self.http_status = http_status
        self.retryable = retryable


@dataclass(frozen=True)
class Submission:
    """One validated, normalized campaign submission."""

    tenant: str
    workload: str
    config: str
    budget: float
    seed: int
    fault_plan: Optional[str] = None
    chaos: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form, the shape journaled and re-validated on
        recovery (``None`` fields omitted so records stay minimal)."""
        out: Dict[str, object] = {
            "tenant": self.tenant, "workload": self.workload,
            "config": self.config, "budget": self.budget, "seed": self.seed,
        }
        if self.fault_plan is not None:
            out["fault_plan"] = self.fault_plan
        if self.chaos is not None:
            out["chaos"] = self.chaos
        return out


class AdmissionPolicy:
    """The daemon's standing admission rules."""

    def __init__(self, max_budget: float = 120.0,
                 tenant_quota: int = 2,
                 queue_limit: int = 32,
                 allow_chaos: bool = False) -> None:
        self.max_budget = max_budget
        self.tenant_quota = tenant_quota
        self.queue_limit = queue_limit
        self.allow_chaos = allow_chaos

    # ------------------------------------------------------------------
    def validate(self, body: object) -> Submission:
        """Normalize one request body; raises :class:`AdmissionError`."""
        if not isinstance(body, dict):
            raise AdmissionError("request body must be a JSON object")
        unknown = sorted(set(body) - set(ALLOWED_FIELDS))
        if unknown:
            raise AdmissionError(f"unknown fields: {', '.join(unknown)} "
                                 f"(allowed: {', '.join(ALLOWED_FIELDS)})")

        tenant = body.get("tenant", "default")
        if not isinstance(tenant, str) or not TENANT_RE.match(tenant):
            raise AdmissionError(
                f"invalid tenant {tenant!r}: must match "
                f"{TENANT_RE.pattern} (lowercase, digits, - and _)")

        workload = body.get("workload")
        if workload not in workload_names():
            raise AdmissionError(
                f"unknown workload {workload!r}; "
                f"known: {', '.join(workload_names())}")

        config = body.get("config", "pmfuzz")
        if not isinstance(config, str):
            raise AdmissionError(f"config must be a string, got {config!r}")
        try:
            config_by_name(config)
        except KeyError:
            raise AdmissionError(f"unknown config {config!r}")

        try:
            budget = float(body.get("budget", 0))
        except (TypeError, ValueError):
            raise AdmissionError(
                f"budget must be a number, got {body.get('budget')!r}")
        if not budget > 0:
            raise AdmissionError(f"budget must be > 0, got {budget}")
        if budget > self.max_budget:
            raise AdmissionError(
                f"budget {budget} exceeds this daemon's ceiling "
                f"of {self.max_budget} virtual seconds")

        seed = body.get("seed", 0x504D465A)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise AdmissionError(f"seed must be an integer, got {seed!r}")

        fault_plan = body.get("fault_plan")
        if fault_plan is not None:
            if not isinstance(fault_plan, str):
                raise AdmissionError("fault_plan must be a spec string")
            try:
                as_fault_plan(fault_plan)
            except FuzzerError as exc:
                raise AdmissionError(f"bad fault_plan: {exc}")

        chaos = body.get("chaos")
        if chaos is not None:
            if not self.allow_chaos:
                raise AdmissionError(
                    "chaos hooks are disabled on this daemon "
                    "(start it with --enable-chaos)")
            if chaos not in CHAOS_KINDS:
                raise AdmissionError(
                    f"unknown chaos kind {chaos!r}; "
                    f"known: {', '.join(CHAOS_KINDS)}")

        return Submission(tenant=tenant, workload=workload,
                          config=config, budget=budget, seed=seed,
                          fault_plan=fault_plan, chaos=chaos)

    # ------------------------------------------------------------------
    def check_quota(self, submission: Submission, records) -> None:
        """Backpressure against the live campaign table.

        ``records`` is the daemon's id → :class:`CampaignRecord` map.
        Raises a *retryable* :class:`AdmissionError` (HTTP 429) when the
        global queue or the tenant's concurrency slice is full — the
        work already accepted is preserved; this submission simply has
        to come back later.
        """
        active = [r for r in records.values() if not r.terminal]
        if len(active) >= self.queue_limit:
            raise AdmissionError(
                f"queue full: {len(active)} campaigns queued or running "
                f"(limit {self.queue_limit})",
                http_status=429, retryable=True)
        tenant_active = sum(1 for r in active
                            if r.tenant == submission.tenant)
        if tenant_active >= self.tenant_quota:
            raise AdmissionError(
                f"tenant {submission.tenant!r} already has "
                f"{tenant_active} active campaigns "
                f"(quota {self.tenant_quota})",
                http_status=429, retryable=True)
