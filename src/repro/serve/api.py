"""Localhost REST API for the serve daemon (stdlib ``http.server``).

Endpoints (all JSON):

=====================  ======================================================
``GET /healthz``        liveness: 200 whenever the process can answer
``GET /readyz``         readiness: 200 while accepting, 503 once draining
``GET /v1/campaigns``   every campaign this serve directory knows about
``POST /v1/campaigns``  submit one campaign; 201 accepted (durably
                        journaled), 400 invalid, 429 quota/queue
                        backpressure (with ``Retry-After``), 503
                        draining or transient accept/journal fault
``GET /v1/campaigns/<id>``  lifecycle state + the campaign's live
                        ``status.json`` (torn-read hardened) + a result
                        summary once terminal
=====================  ======================================================

The handler threads only ever touch the daemon through its lock-guarded
methods; supervision stays on the daemon's main loop.  Responses carry
explicit machine-readable bodies (``{"error": ..., "retryable": true}``)
because the admission contract — *a 201 means the submission is durable,
anything else means it was never accepted* — is what clients build
retry loops against.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.errors import HarnessFaultError
from repro.serve.admission import AdmissionError

#: Largest accepted request body; a submission is a few hundred bytes.
MAX_BODY_BYTES = 64 * 1024

#: Suggested client backoff for 429/503 responses, in seconds.
RETRY_AFTER_S = 1


class ServeAPIHandler(BaseHTTPRequestHandler):
    """Routes requests onto the owning :class:`ServeDaemon`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # The daemon is attached to the server object by make_server().
    @property
    def daemon(self):
        return self.server.serve_daemon

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.daemon.quiet:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _respond(self, status: int, payload: dict,
                 retry_after: Optional[int] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        try:
            self.wfile.write(body)
        except BrokenPipeError:
            pass  # client went away; nothing to clean up

    def _read_body(self) -> Optional[object]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._respond(400, {"error": "bad Content-Length"})
            return None
        if length <= 0:
            self._respond(400, {"error": "empty request body"})
            return None
        if length > MAX_BODY_BYTES:
            self._respond(413, {"error": f"body exceeds {MAX_BODY_BYTES} "
                                         "bytes"})
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._respond(400, {"error": "request body is not valid JSON"})
            return None

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._respond(200, {"ok": True})
            return
        if path == "/readyz":
            if self.daemon.accepting:
                self._respond(200, {"ready": True})
            else:
                self._respond(503, {"ready": False, "draining": True},
                              retry_after=RETRY_AFTER_S)
            return
        if path == "/v1/campaigns":
            self._respond(200, {"campaigns": self.daemon.list_view()})
            return
        if path.startswith("/v1/campaigns/"):
            cid = path[len("/v1/campaigns/"):]
            view = self.daemon.campaign_view(cid)
            if view is None:
                self._respond(404, {"error": f"no campaign {cid!r}"})
            else:
                self._respond(200, view)
            return
        self._respond(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.rstrip("/") != "/v1/campaigns":
            self._respond(404, {"error": f"no route {self.path!r}"})
            return
        body = self._read_body()
        if body is None:
            return
        try:
            record = self.daemon.submit(body)
        except AdmissionError as exc:
            status = exc.http_status
            self._respond(status,
                          {"error": str(exc), "retryable": exc.retryable},
                          retry_after=RETRY_AFTER_S if exc.retryable
                          else None)
            return
        except HarnessFaultError as exc:
            # Injected serve-accept/serve-journal fault: nothing was
            # accepted; the client retries against an intact daemon.
            self._respond(503, {"error": f"transient accept failure: {exc}",
                                "retryable": True},
                          retry_after=RETRY_AFTER_S)
            return
        self._respond(201, {"id": record.cid, "state": record.state,
                            "tenant": record.tenant})


def make_server(daemon, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Bind the API server (port 0 = kernel-assigned) for ``daemon``."""
    server = ThreadingHTTPServer((host, port), ServeAPIHandler)
    server.daemon_threads = True
    server.serve_daemon = daemon
    return server
