"""Campaign-as-a-service: the crash-recoverable serving plane.

``python -m repro serve <dir>`` runs a long-lived multi-tenant daemon
that accepts campaign submissions over a localhost REST API, executes
them in supervised runner processes, and survives its own SIGKILL
without losing a single accepted submission:

* :mod:`repro.serve.journal` — durable write-ahead submission journal
  (corpusdb intent-record format);
* :mod:`repro.serve.admission` — request validation, tenant sandboxing,
  quotas, and bounded-queue backpressure;
* :mod:`repro.serve.state` — the serve-directory layout and the
  artifact-derived campaign lifecycle;
* :mod:`repro.serve.runner` — one supervised campaign child
  (checkpoint slices, heartbeat lease, drain exit);
* :mod:`repro.serve.daemon` — the pool supervisor: recovery, watchdog
  escalation, circuit breaker, two-stage drain;
* :mod:`repro.serve.api` — the stdlib ``http.server`` REST surface.

See DESIGN.md §12 for the journal format, admission rules, drain
semantics, and the failure matrix.
"""

from repro.serve.admission import (AdmissionError, AdmissionPolicy,
                                   Submission)
from repro.serve.daemon import ServeDaemon
from repro.serve.journal import SubmissionJournal
from repro.serve.runner import DRAIN_EXIT, runner_main
from repro.serve.state import CampaignRecord, ServePaths, campaign_id

__all__ = [
    "AdmissionError", "AdmissionPolicy", "Submission",
    "ServeDaemon", "SubmissionJournal",
    "DRAIN_EXIT", "runner_main",
    "CampaignRecord", "ServePaths", "campaign_id",
]
