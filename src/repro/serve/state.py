"""On-disk layout and lifecycle records for the serving plane.

One daemon owns one *serve directory*; everything the daemon must not
lose across its own crashes lives under it, each artifact with the same
crash-safety discipline as the campaign data it manages:

``journal/``
    The durable submission journal (:mod:`repro.serve.journal`): one
    checksummed intent per accepted-but-not-yet-terminal campaign.
``tenants/<tenant>/<campaign-id>/``
    One directory per accepted campaign, holding the engine checkpoint
    (``campaign.ckpt``), the live ``status.json``/trace shards (the
    existing observe data plane), the heartbeat lease, and — once the
    campaign reaches a terminal state — either the final stats
    (``stats.bin``, same checksummed container as a fleet member's) or
    a ``retired`` marker from the watchdog's circuit breaker.
``endpoint.json``
    Where the daemon is actually listening (the kernel picks the port
    when ``--port 0``), published atomically so scripts and tests can
    discover it without racing the bind.

A campaign's *state* is never stored in daemon memory alone: it is a
pure function of these files, which is what makes the daemon
crash-recoverable — a restarted daemon rebuilds the exact queue from
journal + checkpoints + terminal artifacts (see
:meth:`repro.serve.daemon.ServeDaemon.recover`).
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._util import atomic_write_bytes
from repro.orchestrate.member import read_member_stats, write_member_stats

#: Campaign lifecycle states (terminal: done / retired).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
RETIRED = "retired"

#: States in which the journal intent has been committed and the
#: campaign will never run again.
TERMINAL_STATES = (DONE, RETIRED)

#: ``<tenant>-c<seq>`` — tenant names are admission-validated, so the
#: trailing ``-cNNNNNN`` is unambiguous.
CAMPAIGN_ID_RE = re.compile(r"^([a-z0-9][a-z0-9_-]*)-c(\d{6})$")


def campaign_id(tenant: str, seq: int) -> str:
    return f"{tenant}-c{seq:06d}"


def parse_campaign_id(cid: str):
    """``(tenant, seq)`` or None for a string that is not a campaign id."""
    match = CAMPAIGN_ID_RE.match(cid)
    if not match:
        return None
    return match.group(1), int(match.group(2))


class ServePaths:
    """The serve directory layout one daemon lives in."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.journal = os.path.join(self.root, "journal")
        self.tenants = os.path.join(self.root, "tenants")
        self.endpoint = os.path.join(self.root, "endpoint.json")

    def make_dirs(self) -> None:
        for path in (self.journal, self.tenants):
            os.makedirs(path, exist_ok=True)

    # -- per-campaign artifacts ----------------------------------------
    def tenant_dir(self, tenant: str) -> str:
        return os.path.join(self.tenants, tenant)

    def campaign_dir(self, cid: str) -> str:
        parsed = parse_campaign_id(cid)
        tenant = parsed[0] if parsed else "unknown"
        return os.path.join(self.tenant_dir(tenant), cid)

    def checkpoint(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "campaign.ckpt")

    def heartbeat(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "heartbeat.json")

    def stats_file(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "stats.bin")

    def retired_marker(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "retired")

    def request_file(self, cid: str) -> str:
        return os.path.join(self.campaign_dir(cid), "request.json")

    def status_file(self, cid: str) -> str:
        # Solo campaigns (member_index -1) publish plain status.json.
        return os.path.join(self.campaign_dir(cid), "status.json")

    # -- endpoint discovery --------------------------------------------
    def publish_endpoint(self, host: str, port: int) -> None:
        blob = json.dumps({"host": host, "port": port, "pid": os.getpid(),
                           "written_at": time.time()},
                          sort_keys=True).encode("utf-8")
        atomic_write_bytes(self.endpoint, blob, fsync=False)

    def read_endpoint(self) -> Optional[dict]:
        try:
            with open(self.endpoint, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    # -- state reconstruction ------------------------------------------
    def terminal_state(self, cid: str) -> Optional[str]:
        """The campaign's terminal state from its artifacts, or None.

        ``stats.bin`` must *load* (checksummed container), not merely
        exist: a half-written stats file from a killed runner means the
        campaign is not terminal and must be resumed.
        """
        if read_member_stats(self.stats_file(cid)) is not None:
            return DONE
        if os.path.exists(self.retired_marker(cid)):
            return RETIRED
        return None

    def write_retired(self, cid: str) -> None:
        # fsynced: the journal intent commit follows this marker, and a
        # crash that lost the marker after dropping the intent would
        # forget the campaign entirely (the one unacceptable outcome).
        os.makedirs(self.campaign_dir(cid), exist_ok=True)
        atomic_write_bytes(self.retired_marker(cid), b"")

    def load_stats(self, cid: str):
        return read_member_stats(self.stats_file(cid))

    def write_stats(self, cid: str, stats) -> None:
        os.makedirs(self.campaign_dir(cid), exist_ok=True)
        write_member_stats(self.stats_file(cid), stats)

    def max_seq(self) -> int:
        """Highest campaign sequence number ever allocated under this
        root (journal keys + tenant directories), so a restarted daemon
        never reuses an id."""
        highest = 0
        names: List[str] = []
        try:
            for tenant in os.listdir(self.tenants):
                tdir = os.path.join(self.tenants, tenant)
                if os.path.isdir(tdir):
                    names.extend(os.listdir(tdir))
        except OSError:
            pass
        for name in names:
            parsed = parse_campaign_id(name)
            if parsed:
                highest = max(highest, parsed[1])
        return highest


@dataclass
class CampaignRecord:
    """Daemon-side lifecycle state for one accepted campaign."""

    cid: str
    tenant: str
    request: dict
    state: str = QUEUED
    intent_path: str = ""
    accepted_at: float = field(default_factory=time.time)
    # Runtime supervision fields (main loop only).
    pid: Optional[int] = None
    spawned_at: float = 0.0
    term_sent_at: float = 0.0  #: monotonic instant SIGTERM was escalated
    restarts: int = 0
    deaths: List[float] = field(default_factory=list)
    backoff: float = 0.0
    restart_at: float = 0.0
    last_exit: str = ""
    drained: bool = False  #: runner checkpointed and exited for drain

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def public_view(self) -> Dict[str, object]:
        """The JSON shape the REST API exposes for this campaign."""
        return {
            "id": self.cid,
            "tenant": self.tenant,
            "state": self.state,
            "workload": self.request.get("workload"),
            "config": self.request.get("config"),
            "budget": self.request.get("budget"),
            "restarts": self.restarts,
            "accepted_at": self.accepted_at,
        }
