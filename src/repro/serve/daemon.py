"""The campaign-as-a-service daemon: pool, watchdog, recovery, drain.

``python -m repro serve <dir>`` turns the one-shot CLI into a
long-lived serving plane.  The daemon owns a pool of campaign runner
processes (:mod:`repro.serve.runner`), accepts submissions over a
localhost REST API (:mod:`repro.serve.api`), and applies the same
crash-recovery discipline to its *control* state that the corpus
database applies to data:

* **Durable acceptance** — a submission is acknowledged only after its
  intent record landed in the write-ahead submission journal
  (:mod:`repro.serve.journal`).  A SIGKILLed daemon restarts, replays
  the journal against the per-campaign artifacts, and every accepted
  campaign resumes (checkpoint present), re-queues (never started), or
  is recognized as already terminal — exactly once, no loss, no
  duplicate runs.
* **Watchdog with escalation** — runners renew heartbeat leases (the
  fleet's monotonic-lease machinery); a stale lease escalates
  SIGTERM → ``kill_grace`` → SIGKILL, the death feeds an exponential
  restart backoff, and ``max_deaths`` deaths inside ``death_window``
  retire the campaign via the circuit breaker (terminal state
  ``retired``, journal intent committed).
* **Two-stage drain** — the first SIGTERM/SIGINT stops acceptance
  (``/readyz`` flips to 503), forwards graceful stops so every running
  campaign checkpoints (runner exit 75), and exits 0 once the pool is
  empty; queued work stays journaled for the next start.  The second
  signal hard-exits.
* **Seeded fault coverage** — the daemon's own failure paths are fault
  sites (``serve-journal``, ``serve-accept``, ``serve-spawn``) in the
  standard ``--fault-plan`` grammar, drawn from the host fault stream
  so injected daemon faults never perturb campaign trajectories.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from typing import Dict, List, Optional

from repro.errors import HarnessFaultError
from repro.orchestrate.heartbeat import read_heartbeat
from repro.orchestrate.signals import GracefulStop
from repro.resilience.faults import EnvFaultInjector, as_fault_plan
from repro.serve.admission import AdmissionError, AdmissionPolicy
from repro.serve.journal import SubmissionJournal
from repro.serve.runner import DRAIN_EXIT, runner_main
from repro.serve.state import (DONE, QUEUED, RETIRED, RUNNING,
                               CampaignRecord, ServePaths, campaign_id,
                               parse_campaign_id)


class ServeDaemon:
    """One serve directory's daemon: REST admission + supervised pool."""

    def __init__(self, root: str,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 max_running: int = 2,
                 tenant_quota: int = 2,
                 queue_limit: int = 32,
                 max_budget: float = 120.0,
                 lease_s: float = 5.0,
                 spawn_grace: float = 10.0,
                 kill_grace: float = 2.0,
                 poll_interval: float = 0.05,
                 restart_backoff: float = 0.25,
                 max_deaths: int = 3,
                 death_window: float = 30.0,
                 checkpoint_every: float = 0.25,
                 fault_plan=None,
                 enable_chaos: bool = False,
                 exit_when_idle: bool = False,
                 quiet: bool = False) -> None:
        self.paths = ServePaths(root)
        self.paths.make_dirs()
        self.host = host
        self.port = port
        self.max_running = max_running
        self.lease_s = lease_s
        self.spawn_grace = spawn_grace
        self.kill_grace = kill_grace
        self.poll_interval = poll_interval
        self.restart_backoff = restart_backoff
        self.max_deaths = max_deaths
        self.death_window = death_window
        self.checkpoint_every = checkpoint_every
        self.exit_when_idle = exit_when_idle
        self.quiet = quiet
        plan = as_fault_plan(fault_plan)
        self.injector = EnvFaultInjector(plan) if plan is not None else None
        self.journal = SubmissionJournal(self.paths.journal, self.injector)
        self.policy = AdmissionPolicy(max_budget=max_budget,
                                      tenant_quota=tenant_quota,
                                      queue_limit=queue_limit,
                                      allow_chaos=enable_chaos)
        self.records: Dict[str, CampaignRecord] = {}
        self.lock = threading.RLock()
        self._seq = 0
        self._draining = False
        self._server = None
        self._server_thread: Optional[threading.Thread] = None
        self.recovered = 0  #: campaigns re-queued/resumed at startup
        self.spawn_faults = 0  #: serve-spawn faults absorbed

    # ------------------------------------------------------------------
    # Introspection (used by the API layer; all under self.lock)
    # ------------------------------------------------------------------
    @property
    def accepting(self) -> bool:
        return not self._draining

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[serve] {message}", file=sys.stderr)

    # ------------------------------------------------------------------
    # Admission (called from the HTTP thread)
    # ------------------------------------------------------------------
    def submit(self, body: object) -> CampaignRecord:
        """Validate, quota-check, journal, and queue one submission.

        Raises :class:`AdmissionError` (carrying the HTTP status) on
        rejection, or :class:`~repro.errors.HarnessFaultError` when an
        injected ``serve-accept``/``serve-journal`` fault fires — the
        API maps the latter to a retryable 503; nothing was accepted.
        """
        with self.lock:
            if self._draining:
                raise AdmissionError(
                    "daemon is draining; not accepting submissions",
                    http_status=503, retryable=True)
            if self.injector is not None:
                self.injector.check_host("serve-accept")
            submission = self.policy.validate(body)
            self.policy.check_quota(submission, self.records)
            # The sequence number is committed only once the append
            # succeeds, so a faulted/rejected submission never burns an
            # id — N accepted submissions always get ids 1..N no matter
            # how many injected accept faults interleave.
            seq = self._seq + 1
            cid = campaign_id(submission.tenant, seq)
            request = submission.as_dict()
            # Acceptance *is* this append: a fault or crash before it
            # returns means the client was never acknowledged and may
            # safely retry; a crash after it is recovered by replay.
            intent_path = self.journal.append(cid, request)
            self._seq = seq
            record = CampaignRecord(cid=cid, tenant=submission.tenant,
                                    request=request,
                                    intent_path=intent_path)
            self.records[cid] = record
            self._write_request_copy(record)
            self._log(f"accepted {cid} ({submission.workload}/"
                      f"{submission.config}, budget "
                      f"{submission.budget} vsec)")
            return record

    def _write_request_copy(self, record: CampaignRecord) -> None:
        """Informational request.json beside the campaign's artifacts
        (the journal record is authoritative; this is for humans)."""
        import json

        from repro._util import atomic_write_bytes

        os.makedirs(self.paths.campaign_dir(record.cid), exist_ok=True)
        atomic_write_bytes(
            self.paths.request_file(record.cid),
            json.dumps(record.request, sort_keys=True).encode("utf-8"),
            fsync=False)

    def campaign_view(self, cid: str) -> Optional[dict]:
        """REST detail view: record + live status + terminal summary."""
        from repro.observe.monitor import read_status

        with self.lock:
            record = self.records.get(cid)
            if record is None:
                return None
            view = record.public_view()
        view["status"] = read_status(self.paths.status_file(cid))
        if record.state == DONE:
            stats = self.paths.load_stats(cid)
            if stats is not None:
                view["result"] = {
                    "stop_reason": stats.stop_reason,
                    "executions": stats.executions,
                    "pm_paths": stats.final_pm_paths,
                    "branch_edges": stats.final_branch_edges,
                    "crash_images": stats.crash_images_generated,
                    "harness_faults": stats.harness_faults,
                }
        return view

    def list_view(self) -> List[dict]:
        with self.lock:
            return [self.records[cid].public_view()
                    for cid in sorted(self.records)]

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def recover(self) -> None:
        """Rebuild the campaign table from journal + artifacts.

        Idempotent and crash-safe at every point: re-running recovery
        (or being killed during it) converges on the same table,
        because every resolution step is an atomic file operation the
        artifacts already reflect.
        """
        with self.lock:
            self._seq = self.paths.max_seq()
            for path, cid, request in self.journal.recover_pending():
                parsed = parse_campaign_id(cid)
                if parsed:
                    self._seq = max(self._seq, parsed[1])
                record = CampaignRecord(
                    cid=cid, tenant=parsed[0] if parsed else "unknown",
                    request=request, intent_path=path)
                self._fence_orphan(cid)
                terminal = self.paths.terminal_state(cid)
                if terminal is not None:
                    # Reached its terminal state before the crash; only
                    # the intent commit was lost.
                    record.state = terminal
                    self.journal.commit(path)
                    self.records[cid] = record
                    continue
                try:
                    self.policy.validate(dict(request))
                except AdmissionError as exc:
                    # A journaled request this daemon can no longer run
                    # (e.g. chaos hooks without --enable-chaos, or a
                    # ceiling lowered below its budget): retire it
                    # rather than crash-loop on it forever.
                    self._log(f"retiring unrunnable journaled campaign "
                              f"{cid}: {exc}")
                    self._retire(record, why=str(exc))
                    self.records[cid] = record
                    continue
                record.state = QUEUED
                self.records[cid] = record
                self.recovered += 1
                resumed = os.path.exists(self.paths.checkpoint(cid))
                self._log(f"recovered {cid} "
                          f"({'resuming from checkpoint' if resumed else 'queued, never started'})")
            if self.journal.dropped_damaged:
                self._log(f"dropped {self.journal.dropped_damaged} damaged "
                          "journal records (checksum failure)")

    def _fence_orphan(self, cid: str) -> None:
        """Kill a previous incarnation's still-running runner.

        A SIGKILLed daemon orphans its runner children; they keep
        fuzzing.  Before this daemon touches the campaign, any runner
        whose heartbeat lease is still live is fenced off — two runners
        must never share one campaign directory.  The unexpired-lease
        guard is what makes the kill safe against pid reuse: an active
        runner renews its lease every slice, while a record stale
        enough for its pid to have been recycled is long expired.
        """
        beat = read_heartbeat(self.paths.heartbeat(cid))
        if beat is None or beat.pid == os.getpid() or beat.is_stale():
            return
        try:
            os.kill(beat.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            return
        self._log(f"fenced orphaned runner pid {beat.pid} for {cid}")
        # Not our child, so no waitpid: poll until the pid is gone (its
        # parent — init, after the daemon died — reaps it promptly).
        for _ in range(200):
            try:
                os.kill(beat.pid, 0)
            except ProcessLookupError:
                return
            time.sleep(0.01)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, install_signals: bool = True) -> int:
        """Serve until drained (or idle, in ``exit_when_idle`` mode)."""
        from repro.serve.api import make_server

        self.recover()
        self._server = make_server(self, self.host, self.port)
        actual_host, actual_port = self._server.server_address[:2]
        self.paths.publish_endpoint(actual_host, actual_port)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05}, daemon=True)
        self._server_thread.start()
        self._log(f"listening on http://{actual_host}:{actual_port} "
                  f"(serve dir {self.paths.root})")
        stop = GracefulStop(self.request_drain, label="serve") \
            if install_signals else None
        if stop is not None:
            stop.install()
        try:
            while True:
                self.tick()
                with self.lock:
                    active = [r for r in self.records.values()
                              if not r.terminal]
                    running = [r for r in active if r.pid is not None]
                    if self._draining and not running:
                        break
                    # "Idle" means every *known* campaign is terminal —
                    # a freshly started daemon with an empty table is
                    # waiting for work, not idle, or it would exit
                    # before the first submission could arrive.
                    if self.exit_when_idle and self.records and not active:
                        break
                time.sleep(self.poll_interval)
        finally:
            if stop is not None:
                stop.uninstall()
            self._server.shutdown()
            self._server_thread.join(timeout=5.0)
            self._server.server_close()
        with self.lock:
            pending = sum(1 for r in self.records.values()
                          if not r.terminal)
            done = sum(1 for r in self.records.values()
                       if r.state == DONE)
        self._log(f"exiting: {done} campaigns done, {pending} checkpointed "
                  "for the next start" if self._draining else
                  f"exiting idle: {done} campaigns done")
        return 0

    def request_drain(self) -> None:
        """First SIGTERM/SIGINT: stop accepting, checkpoint everything."""
        self._draining = True
        with self.lock:
            for record in self.records.values():
                if record.pid is not None:
                    self._signal(record.pid, signal.SIGTERM)
        self._log("draining: acceptance stopped, campaigns checkpointing")

    # ------------------------------------------------------------------
    # Supervision tick
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One supervision round: reap, watchdog, restart, spawn."""
        now = time.monotonic()
        with self.lock:
            for record in list(self.records.values()):
                if record.terminal:
                    continue
                if record.pid is not None:
                    self._reap(record, now)
                if record.pid is not None:
                    self._check_stale(record, now)
            if not self._draining:
                self._spawn_queued(now)

    def _spawn_queued(self, now: float) -> None:
        running = sum(1 for r in self.records.values()
                      if r.pid is not None)
        candidates = sorted(
            (r for r in self.records.values()
             if r.state == QUEUED and r.pid is None
             and now >= r.restart_at),
            key=lambda r: r.cid)
        for record in candidates:
            if running >= self.max_running:
                return
            if self._spawn(record):
                running += 1

    def _spawn(self, record: CampaignRecord) -> bool:
        if self.injector is not None:
            try:
                self.injector.check_host("serve-spawn")
            except HarnessFaultError as exc:
                # A failed spawn is a death with backoff, not a crash:
                # the campaign stays journaled and queued.
                self.spawn_faults += 1
                record.last_exit = f"spawn fault: {exc}"
                self._record_death(record, time.monotonic())
                return False
        os.makedirs(self.paths.campaign_dir(record.cid), exist_ok=True)
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:
            # Child: become the runner; never return into the daemon's
            # stack (no HTTP server, no atexit, no finally-blocks).
            status = 1
            try:
                status = runner_main(record.request, record.cid,
                                     self.paths.root,
                                     lease_s=self.lease_s,
                                     checkpoint_every=self.checkpoint_every)
            finally:
                os._exit(status)
        record.pid = pid
        record.spawned_at = time.monotonic()
        record.term_sent_at = 0.0
        record.state = RUNNING
        return True

    def _reap(self, record: CampaignRecord, now: float) -> None:
        try:
            pid, status = os.waitpid(record.pid, os.WNOHANG)
        except ChildProcessError:
            pid, status = record.pid, 1 << 8  # lost child = death
        if pid == 0:
            return
        record.pid = None
        if os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0:
            if self.paths.load_stats(record.cid) is not None:
                record.state = DONE
                self.journal.commit(record.intent_path)
                self._log(f"{record.cid} done")
                return
            # Exit 0 without loadable stats: treat as a death so the
            # campaign resumes rather than silently losing its result.
            record.last_exit = "exit 0 without readable stats.bin"
            self._record_death(record, now)
            return
        if os.WIFEXITED(status) and os.WEXITSTATUS(status) == DRAIN_EXIT:
            # Checkpointed and stepped aside; stays journaled for the
            # next daemon start (or a later slot if drain is aborted).
            record.drained = True
            record.state = QUEUED
            self._log(f"{record.cid} checkpointed for drain "
                      f"(vtime preserved)")
            return
        from repro.isolation.pool import describe_wait_status
        record.last_exit = describe_wait_status(status)
        self._record_death(record, now)

    def _check_stale(self, record: CampaignRecord, now: float) -> None:
        """Watchdog: escalate a stale campaign stop → SIGKILL."""
        beat = read_heartbeat(self.paths.heartbeat(record.cid))
        if record.term_sent_at == 0.0:
            if beat is None:
                if now - record.spawned_at < self.spawn_grace:
                    return
            elif not beat.is_stale(now):
                return
            elif now - record.spawned_at < min(self.lease_s,
                                               self.spawn_grace):
                return  # stale file predates this (re)spawn
            # Stage 1: ask nicely — a live-but-slow runner checkpoints
            # and exits; a true wedge ignores this.
            self._signal(record.pid, signal.SIGTERM)
            record.term_sent_at = now
            self._log(f"{record.cid} stale heartbeat: sent SIGTERM "
                      f"(SIGKILL in {self.kill_grace:.1f}s)")
            return
        if now - record.term_sent_at < self.kill_grace:
            return
        # Stage 2: the grace expired; the watchdog takes over.
        self._signal(record.pid, signal.SIGKILL)
        self._reap_blocking(record)
        record.last_exit = record.last_exit or "watchdog SIGKILL"
        self._log(f"{record.cid} SIGKILLed by watchdog")
        self._record_death(record, time.monotonic())

    def _record_death(self, record: CampaignRecord, now: float) -> None:
        record.deaths.append(now)
        record.deaths = [t for t in record.deaths
                         if now - t <= self.death_window]
        if len(record.deaths) >= self.max_deaths:
            self._retire(record, why=record.last_exit or "repeated deaths")
            return
        record.backoff = (self.restart_backoff if record.backoff == 0
                          else record.backoff * 2)
        record.restart_at = now + record.backoff
        record.restarts += 1
        record.state = QUEUED
        self._log(f"{record.cid} died ({record.last_exit or 'unknown'}); "
                  f"restart in {record.backoff:.2f}s "
                  f"({len(record.deaths)}/{self.max_deaths} deaths)")

    def _retire(self, record: CampaignRecord, why: str = "") -> None:
        """Circuit breaker: a repeat offender reaches terminal state
        ``retired`` — marker first (fsynced), then the intent commit,
        so a crash between the two is recovered as already-terminal."""
        self.paths.write_retired(record.cid)
        self.journal.commit(record.intent_path)
        record.state = RETIRED
        self._log(f"{record.cid} retired after "
                  f"{len(record.deaths)} deaths "
                  f"({why or 'circuit breaker'})")

    # ------------------------------------------------------------------
    def _signal(self, pid: Optional[int], signum: int) -> None:
        if pid is None:
            return
        try:
            os.kill(pid, signum)
        except ProcessLookupError:
            pass

    def _reap_blocking(self, record: CampaignRecord) -> None:
        if record.pid is None:
            return
        from repro.isolation.pool import describe_wait_status
        try:
            _, status = os.waitpid(record.pid, 0)
            record.last_exit = describe_wait_status(status)
        except ChildProcessError:
            record.last_exit = "already reaped"
        record.pid = None
