"""Exception hierarchy shared across the PMFuzz reproduction.

The simulated PM stack signals program-visible failures (the analogue of a
SIGSEGV or an ``abort()`` in the original C workloads) through exceptions so
that the fuzzing executor can classify execution outcomes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class PMemError(ReproError):
    """Error in the persistent-memory hardware simulation layer."""


class InvalidImageError(PMemError):
    """A PM image failed header validation (bad magic, checksum, or layout).

    This is the analogue of ``pmemobj_open`` failing on a corrupt pool file:
    the program aborts before exploring any useful path (Figure 5a of the
    paper).
    """


class OutOfPMemError(PMemError):
    """The persistent heap has no free block large enough for a request."""


class SegmentationFault(ReproError):
    """Dereference of a NULL or out-of-bounds persistent pointer.

    The real-world bugs 1-5 in the paper manifest as segmentation faults
    when a recovered program dereferences a NULL root object; this exception
    is their simulated equivalent.
    """


class TransactionError(ReproError):
    """Misuse of the transactional API (e.g. TX_ADD outside a transaction)."""


class TransactionAborted(ReproError):
    """A transaction body raised; the undo log has been rolled back."""


class SimulatedCrash(ReproError):
    """Raised internally when execution reaches an injected failure point.

    The executor catches this to capture the crash image — the persistent
    state as it existed at the failure point (Section 3.2).  Failures are
    placed either *at* an ordering point (``kind="fence"``, the paper's
    primary strategy) or probabilistically at an arbitrary store
    (``kind="store"``, the paper's additional failure points — useful
    because between fences the set of possible persistent states is
    larger than the strict snapshot).
    """

    def __init__(self, point_index: int, kind: str = "fence",
                 message: str = "") -> None:
        super().__init__(
            message or f"simulated crash at {kind} #{point_index}")
        self.fence_index = point_index if kind == "fence" else -1
        self.point_index = point_index
        self.kind = kind


class CommandError(ReproError):
    """A workload command could not be parsed or applied."""


class FuzzerError(ReproError):
    """Configuration or invariant violation inside the fuzzing engine."""


class HarnessFaultError(ReproError):
    """The fuzzing *harness* failed — not the program under test.

    The real fuzzer's analogue is the fork server dying, the target
    binary being killed by the OOM killer, or the test-case drive
    returning ``EIO``: events AFL++ absorbs and keeps fuzzing through.
    :class:`repro.resilience.supervisor.SupervisedExecutor` catches this
    hierarchy, retries transient faults with backoff, and degrades the
    campaign gracefully instead of dying.

    Args:
        message: human-readable description.
        site: the named fault site that failed (see
            :data:`repro.resilience.faults.FAULT_SITES`).
        transient: whether an immediate retry can plausibly succeed.
    """

    def __init__(self, message: str = "", site: str = "",
                 transient: bool = True) -> None:
        super().__init__(message or f"harness fault at {site or 'unknown'}")
        self.site = site
        self.transient = transient
        #: Virtual-time cost accrued while handling the fault (set by the
        #: supervisor before re-raising a permanent failure).
        self.vcost = 0.0


class StorageFaultError(HarnessFaultError):
    """Storage I/O failed: read/write errors, truncated or corrupted
    image bytes, or a transient decompression failure (the SSD tier of
    Section 4.7 under pressure)."""


class CorpusCorruptionError(StorageFaultError):
    """A stored corpus entry is *genuinely* damaged — not a torn read.

    Raised when an image or shared-corpus entry fails checksum/length
    verification against its own stored bytes (a bit-flip or truncation
    that a retry cannot fix), as opposed to the transient read-path
    corruption :class:`StorageFaultError` models.  The entry is
    quarantined by the raiser, so the campaign loses one test case, not
    the resume: the supervisor treats this as a non-transient harness
    fault, charges the recovery cost, and moves on.

    Args:
        message: human-readable description.
        entry: identifier of the damaged entry (image id or file name).
    """

    def __init__(self, message: str = "", entry: str = "") -> None:
        super().__init__(message or f"corpus entry {entry!r} is corrupt",
                         site="storage-corrupt", transient=False)
        self.entry = entry


class WorkerCrashError(HarnessFaultError):
    """An isolation worker died abnormally (signal, OOM kill, hard exit).

    The fork-server analogue of AFL++ losing a forked child to SIGSEGV
    or the OOM killer: the worker process backing one execution vanished
    without reporting a result.  Treated as transient — the pool spawns
    a fresh worker and the supervisor retries; an input that *keeps*
    killing workers is quarantined through the normal strike path.

    Args:
        message: human-readable description.
        exit_detail: decoded ``waitpid`` status ("killed by signal 9",
            "exited with status 1", ...).
    """

    def __init__(self, message: str = "", exit_detail: str = "",
                 transient: bool = True) -> None:
        super().__init__(message or "isolation worker died abnormally",
                         site="exec-fault", transient=transient)
        self.exit_detail = exit_detail


class ExecTimeoutError(HarnessFaultError):
    """An execution exceeded its virtual-time budget (a hung target).

    Hangs are treated as non-transient: re-running a hanging test case
    would burn another full timeout budget, so the supervisor charges
    one budget and moves on (AFL++'s ``+hang`` behaviour).
    """

    def __init__(self, message: str = "", site: str = "exec-hang") -> None:
        super().__init__(message or "execution exceeded its virtual-time "
                                    "budget", site=site, transient=False)


class CheckpointError(ReproError):
    """A campaign checkpoint could not be written, read, or verified."""


class CorpusDBError(ReproError):
    """The cross-campaign corpus database is unusable.

    Raised by :mod:`repro.corpusdb` when the database cannot be opened
    (missing parent directory, foreign or future on-disk format, held
    maintenance lock) or an operation exhausted its bounded retries.
    The engine-side client converts this into graceful degradation — a
    ``degraded`` trace event and a standalone campaign — never a failed
    run.
    """

    def __init__(self, message: str, reason: str = "unavailable") -> None:
        super().__init__(message)
        #: machine-readable cause: "missing" / "locked" / "format" /
        #: "faulting" / "unavailable"
        self.reason = reason


import struct as _struct  # noqa: E402  (kept local to the tuple below)

#: Exceptions that model memory corruption in a C program: a corrupted
#: persistent value (from a crash image or an injected bug) leads to wild
#: indexing, unbounded recursion, or impossible encodings — the analogues
#: of a segmentation fault.  Execution harnesses map these to the
#: SEGFAULT outcome instead of crashing the fuzzer.
CORRUPTION_ERRORS = (
    SegmentationFault,
    IndexError,
    RecursionError,
    OverflowError,
    ZeroDivisionError,  # modulo/divide by a corrupted size field (SIGFPE)
    _struct.error,
)
