"""``python -m repro bench`` — the repo's deterministic perf suite.

Benchmarks, micro to macro:

``pmem_ops``
    Persistence-domain operation throughput (mixed-size store/flush/
    fence mix, no observers): the vectorized core and the scalar
    reference against a frozen *legacy-behavior* domain that still
    constructs a TraceEvent per op and scans the full line map per
    fence.  This is the hot-path number: every execution in a campaign
    is made of these operations.

``ranges``
    ``inconsistent_ranges`` throughput: vectorized (numpy flatnonzero)
    and chunked-slice scalar against the byte-at-a-time reference.

``executor``
    Whole-execution throughput (execs/s): parse + open + run + close on
    the btree workload, plus fork-server dispatch throughput single vs.
    batched (the shared-memory ring transport amortized over
    ``batch_execs`` jobs per round-trip).

``crashgen``
    The macro win this suite exists to defend: crash images per second
    in single-pass snapshot mode vs. legacy per-point re-execution on
    the same test case.  Measured on a crashgen-heavy shape (8 sampled
    ordering points over a ~27-command input) because the win is O(K)
    in harvested images per test case.

``campaign``
    End-to-end wall time of a fixed-virtual-budget PMFuzz campaign —
    the number an operator actually feels.

Each benchmark runs ``repeats`` times and reports the **median**, which
is what lands in ``BENCH_<name>.json``; the workload inside every
repeat is fixed and seeded, so run-to-run variance comes only from the
host.  ``--quick`` shrinks the iteration counts for CI smoke use.
When a committed baseline directory is given (default
``benchmarks/baseline``), the runner prints a delta column against it.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from typing import Callable, Dict, List, Optional

from repro.execcore import HAVE_NUMPY, active_core
from repro.pmem.persistence import (CACHE_LINE, LineState, PersistenceDomain,
                                    TraceEvent, TraceEventKind)

#: Benchmark registry: name -> callable(quick) -> {metric: value}.
BENCHMARKS: Dict[str, Callable[[bool], Dict[str, float]]] = {}

#: Repeats per benchmark (median reported).
DEFAULT_REPEATS = 5
QUICK_REPEATS = 3


def _bench(name: str):
    def register(fn: Callable[[bool], Dict[str, float]]):
        BENCHMARKS[name] = fn
        return fn
    return register


# ----------------------------------------------------------------------
# A frozen copy of the pre-optimization domain behavior, kept as the
# measurement baseline: TraceEvent per op even with no observers, line
# iteration through a generator, and a full line-map scan per fence.
# ----------------------------------------------------------------------
class _LegacyDomain(PersistenceDomain):

    def emit(self, kind, addr=0, size=0, site=""):
        event = TraceEvent(kind=kind, addr=addr, size=size, seq=self._seq,
                           site=site)
        self._seq += 1
        for observer in self._observers:
            observer(event)
        return event

    def store(self, addr, data, site=""):
        self._check_range(addr, len(data))
        self._volatile[addr:addr + len(data)] = data
        for line in self._lines_of(addr, len(data)):
            self._lines[line] = LineState.DIRTY
        self._store_count += 1
        self.emit(TraceEventKind.STORE, addr, len(data), site)

    def flush(self, addr, size, site=""):
        self._check_range(addr, size)
        redundant = True
        for line in self._lines_of(addr, size):
            if self._lines.get(line, LineState.CLEAN) is LineState.DIRTY:
                self._lines[line] = LineState.FLUSHED
                redundant = False
        self.emit(TraceEventKind.FLUSH, addr, size, site)
        if redundant:
            self.emit(TraceEventKind.FLUSH_REDUNDANT, addr, size, site)

    def drain(self, site: Optional[str] = None) -> None:
        for line, state in list(self._lines.items()):
            if state is LineState.FLUSHED:
                start = line * CACHE_LINE
                end = min(start + CACHE_LINE, self.size)
                self._media[start:end] = self._volatile[start:end]
                del self._lines[line]
        self._fence_count += 1
        self.emit(TraceEventKind.FENCE, 0, 0, site or "")


#: Mixed store sizes, 32 B to 4 KiB (one line to 64+ lines): campaign
#: workloads persist both field-sized and object-sized ranges, and the
#: multi-line stores are where bulk line-state transitions pay off.
_WORKOUT_SIZES = (32, 256, 1024, 4096)


def _domain_workout(domain: PersistenceDomain, ops: int) -> int:
    """A representative store/flush/fence mix; returns ops performed."""
    size = domain.size
    payloads = [b"\xA5" * n for n in _WORKOUT_SIZES]
    performed = 0
    for i in range(ops):
        payload = payloads[i & 3]
        addr = (i * 4173) % (size - len(payload))
        domain.store(addr, payload)
        domain.flush(addr, len(payload))
        performed += 2
        if i % 8 == 7:
            domain.drain()
            performed += 1
    return performed


def _vector_domain(size: int):
    from repro.pmem.vector import VectorPersistenceDomain

    return VectorPersistenceDomain(size)


@_bench("pmem_ops")
def _bench_pmem_ops(quick: bool) -> Dict[str, float]:
    ops = 2_000 if quick else 20_000
    size = 256 * 1024
    t0 = time.perf_counter()
    performed = _domain_workout(PersistenceDomain(size), ops)
    scalar_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    _domain_workout(_LegacyDomain(size), ops)
    legacy_s = time.perf_counter() - t0
    vector_s = None
    if HAVE_NUMPY:
        t0 = time.perf_counter()
        _domain_workout(_vector_domain(size), ops)
        vector_s = time.perf_counter() - t0
    current_s = vector_s if (vector_s is not None
                             and active_core() == "vector") else scalar_s
    metrics = {
        "ops_per_s": performed / current_s,
        "scalar_ops_per_s": performed / scalar_s,
        "legacy_ops_per_s": performed / legacy_s,
        "speedup": legacy_s / current_s,
    }
    if vector_s is not None:
        metrics["vector_ops_per_s"] = performed / vector_s
        metrics["vector_vs_scalar"] = scalar_s / vector_s
    return metrics


@_bench("ranges")
def _bench_ranges(quick: bool) -> Dict[str, float]:
    size = 64 * 1024 if quick else 256 * 1024
    calls = 20 if quick else 50
    domain = PersistenceDomain(size)
    # A sparse dirty pattern: a few modified cache lines scattered over
    # an otherwise persisted pool, the common between-fences shape.
    for addr in range(0, size, size // 4):
        domain.store(addr, b"\xFF" * 48)
    t0 = time.perf_counter()
    for _ in range(calls):
        chunked = domain.inconsistent_ranges()
    current_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(calls):
        naive = domain._inconsistent_ranges_naive()
    naive_s = time.perf_counter() - t0
    assert chunked == naive
    metrics = {
        "calls_per_s": calls / current_s,
        "naive_calls_per_s": calls / naive_s,
        "speedup": naive_s / current_s,
    }
    if HAVE_NUMPY:
        vdomain = _vector_domain(size)
        for addr in range(0, size, size // 4):
            vdomain.store(addr, b"\xFF" * 48)
        t0 = time.perf_counter()
        for _ in range(calls):
            vectored = vdomain.inconsistent_ranges()
        vector_s = time.perf_counter() - t0
        assert vectored == chunked
        metrics["vector_calls_per_s"] = calls / vector_s
        metrics["vector_vs_scalar"] = current_s / vector_s
    return metrics


def _make_executor():
    from repro.fuzz.executor import Executor
    from repro.workloads.registry import get_workload

    return Executor(lambda: get_workload("btree"))


def _seed_case(executor):
    """One deterministic (image, data) test case with real PM activity."""
    from repro.workloads.registry import get_workload

    workload = get_workload("btree")
    image = workload.create_image()
    data = b"i 10 1\ni 20 2\ni 30 3\nr 20\ni 40 4\n"
    result = executor.run(image, data)
    return image, data, result


@_bench("executor")
def _bench_executor(quick: bool) -> Dict[str, float]:
    execs = 30 if quick else 150
    executor = _make_executor()
    image, data, _ = _seed_case(executor)
    t0 = time.perf_counter()
    for _ in range(execs):
        executor.run(image, data)
    elapsed = time.perf_counter() - t0
    metrics = {"execs_per_s": execs / elapsed}
    if hasattr(os, "fork"):
        from repro.isolation.pool import ForkWorkerPool

        # Dispatch-cost microbenchmark: an invalid raw image is the
        # cheapest real execution (the direct-image-fuzzing fast path,
        # outcome INVALID_IMAGE), so the worker round-trip dominates and
        # the single-vs-batched ratio measures exactly the per-dispatch
        # overhead that batching over the ring transport amortizes.
        jobs = 240 if quick else 960
        job = ("raw", b"not-an-image", b"g 1\n", {})
        pool = ForkWorkerPool(executor, wall_timeout=60.0,
                              max_execs_per_worker=1_000_000)
        try:
            pool.submit(*job)  # fork + first round-trip outside the clock
            t0 = time.perf_counter()
            for _ in range(jobs):
                pool.submit(*job)
            single_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            for _ in range(jobs // 8):
                pool.submit_batch([job] * 8)
            batch_s = time.perf_counter() - t0
        finally:
            pool.close()
        metrics["fork_dispatch_per_s"] = jobs / single_s
        metrics["fork_batch_dispatch_per_s"] = jobs / batch_s
        metrics["dispatch_speedup"] = single_s / batch_s
    return metrics


@_bench("coverage")
def _bench_coverage(quick: bool) -> Dict[str, float]:
    """The per-exec fast path: coverage backends × warm-open cache.

    Whole-execution throughput on the btree seed case under each
    available coverage backend, cold-open vs. warm-open.  The tracer is
    the single largest per-exec cost (every instrumented line pays it),
    so ``monitoring_vs_settrace`` is the headline tracer ratio and
    ``warm_vs_cold`` the prefix-memoization ratio, both host-independent
    in-sample.
    """
    from repro.fuzz.executor import Executor
    from repro.instrument.covcore import (HAVE_MONITORING, active_backend,
                                          set_backend)
    from repro.workloads.registry import get_workload

    execs = 30 if quick else 150
    current = active_backend()

    def rate(backend: str, warm_open: bool) -> float:
        set_backend(backend)
        executor = Executor(lambda: get_workload("btree"),
                            warm_open=warm_open)
        image, data, _ = _seed_case(executor)
        executor.run(image, data)  # populate the warm cache off-clock
        t0 = time.perf_counter()
        for _ in range(execs):
            executor.run(image, data)
        return execs / (time.perf_counter() - t0)

    try:
        metrics = {
            "settrace_cold_execs_per_s": rate("settrace", False),
            "settrace_warm_execs_per_s": rate("settrace", True),
        }
        metrics["warm_vs_cold"] = (metrics["settrace_warm_execs_per_s"]
                                   / metrics["settrace_cold_execs_per_s"])
        if HAVE_MONITORING:
            metrics["monitoring_cold_execs_per_s"] = rate("monitoring", False)
            metrics["monitoring_warm_execs_per_s"] = rate("monitoring", True)
            metrics["monitoring_vs_settrace"] = (
                metrics["monitoring_cold_execs_per_s"]
                / metrics["settrace_cold_execs_per_s"])
            fast = metrics["monitoring_warm_execs_per_s"]
        else:
            fast = metrics["settrace_warm_execs_per_s"]
        metrics["execs_per_s"] = fast
    finally:
        set_backend(current)
    return metrics


@_bench("crashgen")
def _bench_crashgen(quick: bool) -> Dict[str, float]:
    from repro.core.crashgen import CrashImageGenerator
    from repro.fuzz.rng import DeterministicRandom
    from repro.workloads.registry import get_workload

    rounds = 10 if quick else 40
    executor = _make_executor()
    # A crashgen-heavy test case: ~27 commands / ~73 fences with 8
    # sampled ordering points (~10 images per generate).  The win is
    # O(K) in the number of harvested images — the paper's pipeline
    # harvests dozens per interesting test case — so the macro number
    # is measured on a shape where crash-image generation actually
    # dominates, not on a minimal seed input.
    workload = get_workload("btree")
    image = workload.create_image()
    data = ("".join(f"i {k} {k}\n" for k in range(1, 25))
            + "r 5\nr 12\ng 7\n").encode()
    parent = executor.run(image, data)
    results = {}
    for mode in ("singlepass", "reexec"):
        gen = CrashImageGenerator(executor, DeterministicRandom(7),
                                  max_ordering_points=8, extra_rate=0.25,
                                  mode=mode)
        t0 = time.perf_counter()
        images = 0
        for _ in range(rounds):
            images += len(gen.generate(image, data, parent.fence_count,
                                       parent.store_count))
        results[mode] = (time.perf_counter() - t0, images)
    single_s, images = results["singlepass"]
    reexec_s, reexec_images = results["reexec"]
    assert images == reexec_images
    return {
        "images_per_s": images / single_s,
        "reexec_images_per_s": reexec_images / reexec_s,
        "speedup": reexec_s / single_s,
    }


@_bench("corpusdb")
def _bench_corpusdb(quick: bool) -> Dict[str, float]:
    """Corpus-database throughput: publish, lookup, warm-start scan.

    Synthetic but realistically-shaped entries (a few dozen bytes of
    input, a few KiB of serialized image, sparse coverage lists) —
    the same payload schema the engine client publishes.
    """
    import shutil
    import tempfile

    from repro.corpusdb.db import CorpusDatabase, entry_key

    n = 64 if quick else 256
    root = tempfile.mkdtemp(prefix="bench-corpusdb-")
    try:
        db = CorpusDatabase.open(os.path.join(root, "db"))
        payloads = []
        for i in range(n):
            data = (f"i {i} {i * 7}\ng {i}\n" * 3).encode()
            image = bytes((i + j) % 251 for j in range(4096))
            payloads.append({
                "key": entry_key(data, image),
                "data": data,
                "image_id": f"img{i:04d}",
                "image": image,
                "branch": [(i * 13 + j, 1) for j in range(24)],
                "pm": [(i * 7 + j, 1) for j in range(12)],
            })

        t0 = time.perf_counter()
        for payload in payloads:
            db.publish(payload)
        publish_s = time.perf_counter() - t0

        keys = db.keys()
        t0 = time.perf_counter()
        for key in keys:
            db.get(key)
        lookup_s = time.perf_counter() - t0

        # Warm-start shape: full scan + verify + unpickle of every
        # entry, half of them already compacted to the cold tier.
        db.compact(hot_limit=n // 2)
        t0 = time.perf_counter()
        loaded = sum(1 for key in db.keys() if db.get(key))
        warm_s = time.perf_counter() - t0
        assert loaded == n
        return {
            "entries": float(n),
            "publish_per_s": n / publish_s,
            "lookup_per_s": n / lookup_s,
            "warm_start_per_s": n / warm_s,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


@_bench("campaign")
def _bench_campaign(quick: bool) -> Dict[str, float]:
    from repro.core.pmfuzz import run_campaign

    budget = 1.0 if quick else 4.0

    def one(core: str, run_budget: Optional[float] = None):
        t0 = time.perf_counter()
        stats = run_campaign("btree", "pmfuzz", run_budget or budget,
                             exec_core=core)
        return stats, time.perf_counter() - t0

    # Pin the engine to the suite's active core: the engine resolves
    # exec_core=None to the *default* core, which would silently undo a
    # ``--exec-core scalar`` suite run.
    current = active_core()
    # The process's first campaign pays one-time costs (page cache,
    # allocator arenas) that would be charged to whichever core runs
    # first; a short throwaway run absorbs them.
    one(current, run_budget=0.25)
    stats, wall = one(current)
    metrics = {
        "wall_s": wall,
        "execs": float(stats.executions),
        "execs_per_s": stats.executions / wall,
        "crash_images": float(stats.crash_images_generated),
    }
    if HAVE_NUMPY:
        # Run the other core back-to-back so each sample carries a
        # host-independent scalar-vs-vector campaign ratio: absolute
        # execs/s swing with machine load, the in-sample ratio does not.
        other = "scalar" if current == "vector" else "vector"
        o_stats, o_wall = one(other)
        rates = {current: stats.executions / wall,
                 other: o_stats.executions / o_wall}
        metrics["scalar_execs_per_s"] = rates["scalar"]
        metrics["vector_execs_per_s"] = rates["vector"]
        metrics["vector_vs_scalar"] = rates["vector"] / rates["scalar"]
        from repro.execcore import set_core
        set_core(current)
    return metrics


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def run_benchmark(name: str, quick: bool = False,
                  repeats: Optional[int] = None) -> dict:
    """Run one benchmark ``repeats`` times; return its JSON document."""
    fn = BENCHMARKS[name]
    n = repeats or (QUICK_REPEATS if quick else DEFAULT_REPEATS)
    samples: List[Dict[str, float]] = [fn(quick) for _ in range(n)]
    metrics = {key: statistics.median(s[key] for s in samples)
               for key in samples[0]}
    return {
        "name": name,
        "quick": quick,
        "repeats": n,
        "metrics": metrics,
        "samples": samples,
    }


def load_baseline(baseline_dir: str, name: str) -> Optional[dict]:
    path = os.path.join(baseline_dir, f"BENCH_{name}.json")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.2f}"


def baseline_deltas(metrics: Dict[str, float],
                    baseline: Optional[dict]) -> Dict[str, Optional[float]]:
    """Percent delta per metric against a baseline document.

    Every metric gets a key; the value is ``None`` where the baseline
    has no comparable number (missing file, new metric, zero baseline),
    so the result-document schema is identical with and without a
    baseline — the bench regression test keys on that.
    """
    base_metrics = (baseline or {}).get("metrics", {})
    deltas: Dict[str, Optional[float]] = {}
    for key, value in metrics.items():
        base = base_metrics.get(key)
        deltas[key] = ((value - base) / base * 100.0) if base else None
    return deltas


def run_suite(names: Optional[List[str]] = None, quick: bool = False,
              repeats: Optional[int] = None, out_dir: str = ".",
              baseline_dir: Optional[str] = "benchmarks/baseline",
              exec_core: Optional[str] = None,
              cov_backend: Optional[str] = None,
              print_fn: Callable[[str], None] = print) -> List[dict]:
    """Run the suite, write ``BENCH_<name>.json`` files, print a table.

    Wall-clock medians are host-dependent; the committed baselines exist
    for the *ratios* (speedup metrics) and for order-of-magnitude drift
    detection, not for exact cross-host comparison.  Each result
    document embeds its ``baseline_delta`` (computed against the
    baseline as it was *before* this run wrote anything, so regenerating
    the baseline in place still records the old-vs-new delta) and the
    execution core it ran on.
    """
    import platform

    from repro.execcore import set_core
    from repro.instrument.covcore import set_backend

    core = set_core(exec_core)
    backend = set_backend(cov_backend)
    selected = names or list(BENCHMARKS)
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise KeyError(
            f"unknown benchmark(s) {', '.join(unknown)}; "
            f"known: {', '.join(BENCHMARKS)}")
    os.makedirs(out_dir, exist_ok=True)
    docs = []
    for name in selected:
        # Load the baseline before writing: out_dir may BE baseline_dir.
        baseline = load_baseline(baseline_dir, name) if baseline_dir else None
        doc = run_benchmark(name, quick=quick, repeats=repeats)
        doc["exec_core"] = core
        doc["cov_backend"] = backend
        doc["python"] = platform.python_version()
        doc["baseline_delta"] = baseline_deltas(doc["metrics"], baseline)
        docs.append(doc)
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print_fn(f"{name}  ({doc['repeats']} repeats, median, "
                 f"{core} core)")
        for key, value in doc["metrics"].items():
            line = f"  {key:24s} {_fmt(value):>14s}"
            delta = doc["baseline_delta"].get(key)
            if delta is not None:
                line += f"   {delta:+7.1f}% vs baseline"
            print_fn(line)
    return docs
