"""``python -m repro bench`` — the repo's deterministic perf suite.

Four benchmarks, micro to macro:

``pmem_ops``
    Persistence-domain operation throughput (store/flush/fence mix, no
    observers) against a frozen *legacy-behavior* domain that still
    constructs a TraceEvent per op and scans the full line map per
    fence.  This is the hot-path number: every execution in a campaign
    is made of these operations.

``ranges``
    ``inconsistent_ranges`` throughput (chunked slice comparison)
    against the byte-at-a-time reference implementation.

``executor``
    Whole-execution throughput (execs/s): parse + open + run + close on
    the btree workload.

``crashgen``
    The macro win this suite exists to defend: crash images per second
    in single-pass snapshot mode vs. legacy per-point re-execution on
    the same test case.  Measured on a crashgen-heavy shape (8 sampled
    ordering points over a ~27-command input) because the win is O(K)
    in harvested images per test case.

``campaign``
    End-to-end wall time of a fixed-virtual-budget PMFuzz campaign —
    the number an operator actually feels.

Each benchmark runs ``repeats`` times and reports the **median**, which
is what lands in ``BENCH_<name>.json``; the workload inside every
repeat is fixed and seeded, so run-to-run variance comes only from the
host.  ``--quick`` shrinks the iteration counts for CI smoke use.
When a committed baseline directory is given (default
``benchmarks/baseline``), the runner prints a delta column against it.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from typing import Callable, Dict, List, Optional

from repro.pmem.persistence import (CACHE_LINE, LineState, PersistenceDomain,
                                    TraceEvent, TraceEventKind)

#: Benchmark registry: name -> callable(quick) -> {metric: value}.
BENCHMARKS: Dict[str, Callable[[bool], Dict[str, float]]] = {}

#: Repeats per benchmark (median reported).
DEFAULT_REPEATS = 5
QUICK_REPEATS = 3


def _bench(name: str):
    def register(fn: Callable[[bool], Dict[str, float]]):
        BENCHMARKS[name] = fn
        return fn
    return register


# ----------------------------------------------------------------------
# A frozen copy of the pre-optimization domain behavior, kept as the
# measurement baseline: TraceEvent per op even with no observers, line
# iteration through a generator, and a full line-map scan per fence.
# ----------------------------------------------------------------------
class _LegacyDomain(PersistenceDomain):

    def emit(self, kind, addr=0, size=0, site=""):
        event = TraceEvent(kind=kind, addr=addr, size=size, seq=self._seq,
                           site=site)
        self._seq += 1
        for observer in self._observers:
            observer(event)
        return event

    def store(self, addr, data, site=""):
        self._check_range(addr, len(data))
        self._volatile[addr:addr + len(data)] = data
        for line in self._lines_of(addr, len(data)):
            self._lines[line] = LineState.DIRTY
        self._store_count += 1
        self.emit(TraceEventKind.STORE, addr, len(data), site)

    def flush(self, addr, size, site=""):
        self._check_range(addr, size)
        redundant = True
        for line in self._lines_of(addr, size):
            if self._lines.get(line, LineState.CLEAN) is LineState.DIRTY:
                self._lines[line] = LineState.FLUSHED
                redundant = False
        self.emit(TraceEventKind.FLUSH, addr, size, site)
        if redundant:
            self.emit(TraceEventKind.FLUSH_REDUNDANT, addr, size, site)

    def drain(self, site=""):
        for line, state in list(self._lines.items()):
            if state is LineState.FLUSHED:
                start = line * CACHE_LINE
                end = min(start + CACHE_LINE, self.size)
                self._media[start:end] = self._volatile[start:end]
                del self._lines[line]
        self._fence_count += 1
        self.emit(TraceEventKind.FENCE, 0, 0, site)


def _domain_workout(domain: PersistenceDomain, ops: int) -> int:
    """A representative store/flush/fence mix; returns ops performed."""
    size = domain.size
    payload = b"\xA5" * 32
    addr = 0
    performed = 0
    for i in range(ops):
        addr = (addr + 96) % (size - 64)
        domain.store(addr, payload)
        domain.flush(addr, 32)
        performed += 2
        if i % 8 == 7:
            domain.drain()
            performed += 1
    return performed


@_bench("pmem_ops")
def _bench_pmem_ops(quick: bool) -> Dict[str, float]:
    ops = 4_000 if quick else 40_000
    size = 256 * 1024
    t0 = time.perf_counter()
    performed = _domain_workout(PersistenceDomain(size), ops)
    current_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    _domain_workout(_LegacyDomain(size), ops)
    legacy_s = time.perf_counter() - t0
    return {
        "ops_per_s": performed / current_s,
        "legacy_ops_per_s": performed / legacy_s,
        "speedup": legacy_s / current_s,
    }


@_bench("ranges")
def _bench_ranges(quick: bool) -> Dict[str, float]:
    size = 64 * 1024 if quick else 256 * 1024
    calls = 20 if quick else 50
    domain = PersistenceDomain(size)
    # A sparse dirty pattern: a few modified cache lines scattered over
    # an otherwise persisted pool, the common between-fences shape.
    for addr in range(0, size, size // 4):
        domain.store(addr, b"\xFF" * 48)
    t0 = time.perf_counter()
    for _ in range(calls):
        chunked = domain.inconsistent_ranges()
    current_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(calls):
        naive = domain._inconsistent_ranges_naive()
    naive_s = time.perf_counter() - t0
    assert chunked == naive
    return {
        "calls_per_s": calls / current_s,
        "naive_calls_per_s": calls / naive_s,
        "speedup": naive_s / current_s,
    }


def _make_executor():
    from repro.fuzz.executor import Executor
    from repro.workloads.registry import get_workload

    return Executor(lambda: get_workload("btree"))


def _seed_case(executor):
    """One deterministic (image, data) test case with real PM activity."""
    from repro.workloads.registry import get_workload

    workload = get_workload("btree")
    image = workload.create_image()
    data = b"i 10 1\ni 20 2\ni 30 3\nr 20\ni 40 4\n"
    result = executor.run(image, data)
    return image, data, result


@_bench("executor")
def _bench_executor(quick: bool) -> Dict[str, float]:
    execs = 30 if quick else 150
    executor = _make_executor()
    image, data, _ = _seed_case(executor)
    t0 = time.perf_counter()
    for _ in range(execs):
        executor.run(image, data)
    elapsed = time.perf_counter() - t0
    return {"execs_per_s": execs / elapsed}


@_bench("crashgen")
def _bench_crashgen(quick: bool) -> Dict[str, float]:
    from repro.core.crashgen import CrashImageGenerator
    from repro.fuzz.rng import DeterministicRandom
    from repro.workloads.registry import get_workload

    rounds = 10 if quick else 40
    executor = _make_executor()
    # A crashgen-heavy test case: ~27 commands / ~73 fences with 8
    # sampled ordering points (~10 images per generate).  The win is
    # O(K) in the number of harvested images — the paper's pipeline
    # harvests dozens per interesting test case — so the macro number
    # is measured on a shape where crash-image generation actually
    # dominates, not on a minimal seed input.
    workload = get_workload("btree")
    image = workload.create_image()
    data = ("".join(f"i {k} {k}\n" for k in range(1, 25))
            + "r 5\nr 12\ng 7\n").encode()
    parent = executor.run(image, data)
    results = {}
    for mode in ("singlepass", "reexec"):
        gen = CrashImageGenerator(executor, DeterministicRandom(7),
                                  max_ordering_points=8, extra_rate=0.25,
                                  mode=mode)
        t0 = time.perf_counter()
        images = 0
        for _ in range(rounds):
            images += len(gen.generate(image, data, parent.fence_count,
                                       parent.store_count))
        results[mode] = (time.perf_counter() - t0, images)
    single_s, images = results["singlepass"]
    reexec_s, reexec_images = results["reexec"]
    assert images == reexec_images
    return {
        "images_per_s": images / single_s,
        "reexec_images_per_s": reexec_images / reexec_s,
        "speedup": reexec_s / single_s,
    }


@_bench("corpusdb")
def _bench_corpusdb(quick: bool) -> Dict[str, float]:
    """Corpus-database throughput: publish, lookup, warm-start scan.

    Synthetic but realistically-shaped entries (a few dozen bytes of
    input, a few KiB of serialized image, sparse coverage lists) —
    the same payload schema the engine client publishes.
    """
    import shutil
    import tempfile

    from repro.corpusdb.db import CorpusDatabase, entry_key

    n = 64 if quick else 256
    root = tempfile.mkdtemp(prefix="bench-corpusdb-")
    try:
        db = CorpusDatabase.open(os.path.join(root, "db"))
        payloads = []
        for i in range(n):
            data = (f"i {i} {i * 7}\ng {i}\n" * 3).encode()
            image = bytes((i + j) % 251 for j in range(4096))
            payloads.append({
                "key": entry_key(data, image),
                "data": data,
                "image_id": f"img{i:04d}",
                "image": image,
                "branch": [(i * 13 + j, 1) for j in range(24)],
                "pm": [(i * 7 + j, 1) for j in range(12)],
            })

        t0 = time.perf_counter()
        for payload in payloads:
            db.publish(payload)
        publish_s = time.perf_counter() - t0

        keys = db.keys()
        t0 = time.perf_counter()
        for key in keys:
            db.get(key)
        lookup_s = time.perf_counter() - t0

        # Warm-start shape: full scan + verify + unpickle of every
        # entry, half of them already compacted to the cold tier.
        db.compact(hot_limit=n // 2)
        t0 = time.perf_counter()
        loaded = sum(1 for key in db.keys() if db.get(key))
        warm_s = time.perf_counter() - t0
        assert loaded == n
        return {
            "entries": float(n),
            "publish_per_s": n / publish_s,
            "lookup_per_s": n / lookup_s,
            "warm_start_per_s": n / warm_s,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


@_bench("campaign")
def _bench_campaign(quick: bool) -> Dict[str, float]:
    from repro.core.pmfuzz import run_campaign

    budget = 1.0 if quick else 4.0
    t0 = time.perf_counter()
    stats = run_campaign("btree", "pmfuzz", budget)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "execs": float(stats.executions),
        "execs_per_s": stats.executions / wall,
        "crash_images": float(stats.crash_images_generated),
    }


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def run_benchmark(name: str, quick: bool = False,
                  repeats: Optional[int] = None) -> dict:
    """Run one benchmark ``repeats`` times; return its JSON document."""
    fn = BENCHMARKS[name]
    n = repeats or (QUICK_REPEATS if quick else DEFAULT_REPEATS)
    samples: List[Dict[str, float]] = [fn(quick) for _ in range(n)]
    metrics = {key: statistics.median(s[key] for s in samples)
               for key in samples[0]}
    return {
        "name": name,
        "quick": quick,
        "repeats": n,
        "metrics": metrics,
        "samples": samples,
    }


def load_baseline(baseline_dir: str, name: str) -> Optional[dict]:
    path = os.path.join(baseline_dir, f"BENCH_{name}.json")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.2f}"


def run_suite(names: Optional[List[str]] = None, quick: bool = False,
              repeats: Optional[int] = None, out_dir: str = ".",
              baseline_dir: Optional[str] = "benchmarks/baseline",
              print_fn: Callable[[str], None] = print) -> List[dict]:
    """Run the suite, write ``BENCH_<name>.json`` files, print a table.

    Wall-clock medians are host-dependent; the committed baselines exist
    for the *ratios* (speedup metrics) and for order-of-magnitude drift
    detection, not for exact cross-host comparison.
    """
    selected = names or list(BENCHMARKS)
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise KeyError(
            f"unknown benchmark(s) {', '.join(unknown)}; "
            f"known: {', '.join(BENCHMARKS)}")
    os.makedirs(out_dir, exist_ok=True)
    docs = []
    for name in selected:
        doc = run_benchmark(name, quick=quick, repeats=repeats)
        docs.append(doc)
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        baseline = load_baseline(baseline_dir, name) if baseline_dir else None
        print_fn(f"{name}  ({doc['repeats']} repeats, median)")
        for key, value in doc["metrics"].items():
            line = f"  {key:24s} {_fmt(value):>14s}"
            if baseline and key in baseline.get("metrics", {}):
                base = baseline["metrics"][key]
                if base:
                    delta = (value - base) / base * 100.0
                    line += f"   {delta:+7.1f}% vs baseline"
            print_fn(line)
    return docs
