"""Command-line interface: ``python -m repro <command>``.

The reproduction's equivalent of the artifact's driver scripts
(``run-workloads.sh``, ``test-real-bugs.sh``, ``pmfuzz-fuzz.py``):

``fuzz``
    Run one fuzzing campaign (workload × Table-2 configuration) and
    print the coverage summary, e.g.::

        python -m repro fuzz --workload btree --config pmfuzz --budget 3

``compare``
    Run all five comparison points on one workload and render the
    Figure-13 panel.

``real-bugs``
    Reproduce the paper's real-world bugs (``test-real-bugs.sh [1..12]``):
    fuzz the buggy variant and report detection, optionally for a single
    bug number.

``workloads``
    List the available PM programs and their bug flags.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.figures import render_coverage_figure
from repro.core.config import CONFIGS, config_by_name
from repro.core.pipeline import FuzzAndDetectPipeline
from repro.core.pmfuzz import run_campaign
from repro.workloads import workload_names
from repro.workloads.realbugs import ALL_REAL_BUGS, bug_by_number, \
    buggy_flags_for


def _cmd_fuzz(args: argparse.Namespace) -> int:
    stats = run_campaign(args.workload, args.config, args.budget,
                         seed=args.seed)
    print(f"configuration     : {stats.config_name}")
    print(f"workload          : {stats.workload_name}")
    print(f"executions        : {stats.executions}")
    print(f"PM paths covered  : {stats.final_pm_paths}")
    print(f"branch edges      : {stats.final_branch_edges}")
    print(f"normal images     : {stats.normal_images_generated}")
    print(f"crash images      : {stats.crash_images_generated}")
    print(f"deduplicated      : {stats.images_deduplicated}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    curves = {}
    for config in CONFIGS:
        print(f"running {config.name} …", file=sys.stderr)
        curves[config.name] = run_campaign(args.workload, config.name,
                                           args.budget, seed=args.seed)
    print(render_coverage_figure(
        curves, args.budget,
        title=f"PM path coverage — {args.workload}"))
    return 0


def _cmd_real_bugs(args: argparse.Namespace) -> int:
    if args.bug is not None:
        targets = [bug_by_number(args.bug)]
    else:
        targets = list(ALL_REAL_BUGS)
    failures = 0
    for workload in sorted({b.workload for b in targets}):
        wanted = {b.number for b in targets if b.workload == workload}
        pipe = FuzzAndDetectPipeline(workload, "pmfuzz",
                                     bugs=buggy_flags_for(workload),
                                     max_checked=48, seed=args.seed)
        result = pipe.run(budget_vseconds=args.budget)
        for r in result.real_bugs:
            if r.bug.number in wanted:
                status = "detected" if r.detected else "MISSED"
                vtime = (f" at vt={r.first_detection_vtime:.4f}s"
                         if r.detected else "")
                print(f"bug {r.bug.number:>2d} ({r.bug.kind}, "
                      f"{workload}): {status}{vtime}")
                failures += not r.detected
    return 1 if failures else 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name in workload_names():
        flags = sorted(b.flag for b in ALL_REAL_BUGS if b.workload == name)
        shown = ", ".join(flags) if flags else "-"
        print(f"{name:16s} real-bug flags: {shown}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PMFuzz reproduction driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run one fuzzing campaign")
    fuzz.add_argument("--workload", required=True, choices=workload_names())
    fuzz.add_argument("--config", default="pmfuzz")
    fuzz.add_argument("--budget", type=float, default=2.0,
                      help="virtual seconds (campaign length)")
    fuzz.add_argument("--seed", type=int, default=0x504D465A)
    fuzz.set_defaults(func=_cmd_fuzz)

    compare = sub.add_parser("compare",
                             help="all five configs on one workload")
    compare.add_argument("--workload", required=True,
                         choices=workload_names())
    compare.add_argument("--budget", type=float, default=2.0)
    compare.add_argument("--seed", type=int, default=0x504D465A)
    compare.set_defaults(func=_cmd_compare)

    bugs = sub.add_parser("real-bugs",
                          help="reproduce the paper's 12 bugs")
    bugs.add_argument("--bug", type=int, choices=range(1, 13),
                      help="a single bug number (default: all)")
    bugs.add_argument("--budget", type=float, default=3.0)
    bugs.add_argument("--seed", type=int, default=0x504D465A)
    bugs.set_defaults(func=_cmd_real_bugs)

    wl = sub.add_parser("workloads", help="list PM programs")
    wl.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "config", None) is not None:
        try:
            config_by_name(args.config)  # fail fast on unknown names
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
