"""Command-line interface: ``python -m repro <command>``.

The reproduction's equivalent of the artifact's driver scripts
(``run-workloads.sh``, ``test-real-bugs.sh``, ``pmfuzz-fuzz.py``):

``fuzz``
    Run one fuzzing campaign (workload × Table-2 configuration) and
    print the coverage summary, e.g.::

        python -m repro fuzz --workload btree --config pmfuzz --budget 3

``compare``
    Run all five comparison points on one workload and render the
    Figure-13 panel.

``real-bugs``
    Reproduce the paper's real-world bugs (``test-real-bugs.sh [1..12]``):
    fuzz the buggy variant and report detection, optionally for a single
    bug number.

``triage``
    List the crash-triage bundles a fork-isolation campaign wrote, or
    replay one (``--replay <bundle-dir>``) to reproduce the execution
    that killed or hung a worker.

``bench``
    Run the deterministic perf benchmark suite and write
    ``BENCH_<name>.json`` result files (see :mod:`repro.bench`).

``corpusdb``
    Inspect (``info``), heal (``scrub [--verify]``), or compact a
    durable cross-campaign corpus database (see :mod:`repro.corpusdb`).

``serve``
    Run the campaign-as-a-service daemon: accept submissions over a
    localhost REST API, execute them in a supervised pool, and survive
    daemon crashes without losing accepted work (see
    :mod:`repro.serve`).

``workloads``
    List the available PM programs and their bug flags.

Exit codes follow one convention across every subcommand (the table in
README.md is the contract): 0 success, 1 domain failure (a missed bug,
residual damage, a reproduced crash, no data yet), 2 usage or
configuration error — always with a one-line ``error:`` on stderr,
never a traceback — and 130 on interrupt.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis.figures import render_coverage_figure
from repro.core.config import CONFIGS, config_by_name
from repro.errors import FuzzerError, ReproError
from repro.core.pipeline import FuzzAndDetectPipeline
from repro.core.pmfuzz import run_campaign
from repro.workloads import workload_names
from repro.workloads.realbugs import ALL_REAL_BUGS, bug_by_number, \
    buggy_flags_for


def _slug(name: str) -> str:
    """Filesystem-safe short form of a configuration display name."""
    return "".join(c if c.isalnum() else "-" for c in name.lower()).strip("-")


def _checkpoint_kwargs(args: argparse.Namespace, config_name: str) -> dict:
    """Checkpoint engine kwargs from the CLI flags (empty if disabled)."""
    if args.checkpoint_every is None:
        return {}
    path = getattr(args, "checkpoint_path", None) or \
        f"{args.workload}-{_slug(config_name)}.ckpt"
    return {"checkpoint_every": args.checkpoint_every,
            "checkpoint_path": path}


def _isolation_kwargs(args: argparse.Namespace) -> dict:
    """Execution-backend engine kwargs from the CLI flags."""
    if getattr(args, "isolation", "none") == "none":
        return {}
    rss = getattr(args, "worker_rss_limit", None)
    return {
        "isolation": args.isolation,
        "isolation_workers": args.workers,
        "exec_wall_timeout": args.exec_wall_timeout,
        "worker_rss_limit": rss * 1024 * 1024 if rss else None,
        "triage_dir": args.triage_dir,
    }


def _execcore_kwargs(args: argparse.Namespace) -> dict:
    """Execution-core engine kwargs (empty at the defaults, so checkpoint
    metadata stays identical to pre-flag campaigns)."""
    kwargs: dict = {}
    if getattr(args, "exec_core", None):
        kwargs["exec_core"] = args.exec_core
    batch = getattr(args, "batch_execs", None)
    if batch is not None:
        if batch < 1:
            raise FuzzerError(f"--batch-execs must be >= 1, got {batch}")
        if batch != 8:
            kwargs["batch_execs"] = batch
    transport = getattr(args, "transport", None)
    if transport not in (None, "auto"):
        kwargs["transport"] = transport
    return kwargs


def _fastpath_kwargs(args: argparse.Namespace) -> dict:
    """Per-exec fast-path engine kwargs (empty at the defaults, so
    checkpoint metadata stays identical to pre-flag campaigns)."""
    kwargs: dict = {}
    if getattr(args, "cov_backend", None):
        kwargs["cov_backend"] = args.cov_backend
    if getattr(args, "warm_open", "on") == "off":
        kwargs["warm_open"] = False
    return kwargs


def _corpusdb_kwargs(args: argparse.Namespace) -> dict:
    """Corpus-database engine kwargs (empty when --corpus-db is off, so
    checkpoint metadata stays identical to pre-flag campaigns)."""
    if not getattr(args, "corpus_db", None):
        return {}
    if args.corpus_db_every <= 0:
        raise FuzzerError(
            f"--corpus-db-every must be > 0, got {args.corpus_db_every}")
    return {"corpus_db": args.corpus_db,
            "corpus_db_every": args.corpus_db_every}


def _crashgen_kwargs(args: argparse.Namespace) -> dict:
    """Crash-generation engine kwargs (empty at the default setting, so
    checkpoint metadata stays identical to pre-flag campaigns)."""
    if getattr(args, "crashgen", "singlepass") == "singlepass":
        return {}
    return {"crashgen": args.crashgen}


def _observe_kwargs(args: argparse.Namespace) -> dict:
    """Observability engine kwargs from the CLI flags (empty when off)."""
    kwargs: dict = {}
    if getattr(args, "trace_dir", None):
        if args.trace_sample < 1:
            raise FuzzerError(
                f"--trace-sample must be >= 1, got {args.trace_sample}")
        if args.status_every <= 0:
            raise FuzzerError(
                f"--status-every must be > 0, got {args.status_every}")
        kwargs["trace_dir"] = args.trace_dir
        kwargs["trace_sample"] = args.trace_sample
        kwargs["status_every"] = args.status_every
        if getattr(args, "trace_rotate_mib", None):
            if args.trace_rotate_mib < 0:
                raise FuzzerError(
                    "--trace-rotate-mib must be >= 0, got "
                    f"{args.trace_rotate_mib}")
            kwargs["trace_rotate_bytes"] = \
                args.trace_rotate_mib * 1024 * 1024
    if getattr(args, "profile", False):
        kwargs["profile"] = True
    return kwargs


def _print_profile(stats) -> None:
    """The ``--profile`` flame-style breakdown, from the final stats."""
    from repro.observe.profiler import render_profile

    print(render_profile(stats.metrics, stats.metrics_host,
                         title="per-stage breakdown (--profile)"))


def _summary_line(stats) -> str:
    """The one-line end-of-campaign summary: why it stopped, and every
    fault/timeout/quarantine counter an operator would otherwise have to
    dig out of the checkpoint."""
    parts = [f"stopped={stats.stop_reason or 'running'}",
             f"execs={stats.executions}",
             f"faults={stats.harness_faults}",
             f"retries={stats.retries}",
             f"timeouts={stats.timeouts}",
             f"quarantined={stats.quarantined}"]
    if stats.isolation_backend == "fork":
        parts += ["backend=fork",
                  f"watchdog-kills={stats.watchdog_kills}",
                  f"worker-crashes={stats.worker_crashes}",
                  f"triage-bundles={stats.triage_bundles}"]
    elif stats.isolation_fallback:
        parts.append("backend=none(fallback)")
    if stats.fleet_size:
        parts += [f"fleet={stats.fleet_size}",
                  f"restarts={stats.member_restarts}",
                  f"sync={stats.sync_published}p/{stats.sync_imported}i/"
                  f"{stats.sync_import_rejected}r",
                  f"corpus-quarantined={stats.corpus_quarantined}"]
        if stats.members_retired:
            parts.append(
                "retired=" + ",".join(str(i) for i in stats.members_retired))
    if stats.corpusdb_degraded:
        parts.append("corpusdb=degraded")
    elif (stats.corpusdb_published or stats.corpusdb_imported
          or stats.corpusdb_warm_start):
        parts.append(f"corpusdb={stats.corpusdb_published}p/"
                     f"{stats.corpusdb_imported}i/"
                     f"{stats.corpusdb_warm_start}w")
    if stats.disk_full_faults:
        parts.append(f"disk-full={stats.disk_full_faults}")
    return " ".join(parts)


def _parse_kill_plan(specs) -> dict:
    """``M:E`` chaos specs → {member index: epoch to SIGKILL it after}."""
    plan = {}
    for spec in specs or ():
        member, sep, epoch = spec.partition(":")
        try:
            if not sep:
                raise ValueError
            plan[int(member)] = int(epoch)
        except ValueError:
            raise FuzzerError(
                f"bad --fleet-kill spec {spec!r} (expected MEMBER:EPOCH)")
    return plan


def _cmd_fleet(args: argparse.Namespace) -> int:
    """The ``fuzz --fleet N`` branch: run a supervised member fleet."""
    from repro.orchestrate import run_fleet

    fleet_dir = args.fleet_dir or \
        f"fleet-{args.workload}-{_slug(args.config)}"
    stats = run_fleet(
        args.workload, args.config, args.budget,
        fleet=args.fleet, fleet_dir=fleet_dir,
        seed=args.seed, sync_every=args.sync_every,
        heartbeat_lease=args.member_lease,
        fault_plan=args.fault_plan,
        engine_kwargs={**_isolation_kwargs(args), **_observe_kwargs(args),
                       **_crashgen_kwargs(args), **_corpusdb_kwargs(args),
                       **_execcore_kwargs(args), **_fastpath_kwargs(args)},
        kill_plan=_parse_kill_plan(args.fleet_kill),
    )
    print(f"configuration     : {stats.config_name}")
    print(f"workload          : {stats.workload_name}")
    print(f"fleet             : {stats.fleet_size} members "
          f"({stats.member_restarts} restarts, "
          f"{len(stats.members_retired)} retired)")
    print(f"executions        : {stats.executions}")
    print(f"stopped           : {stats.stop_reason}")
    print(f"PM paths covered  : {stats.final_pm_paths}")
    print(f"branch edges      : {stats.final_branch_edges}")
    print(f"corpus sync       : {stats.sync_published} published, "
          f"{stats.sync_imported} imported, "
          f"{stats.sync_import_rejected} rejected")
    if stats.corpus_quarantined:
        print(f"quarantined       : {stats.corpus_quarantined} corrupt "
              "corpus entries")
    if stats.members_retired:
        print(f"members retired   : "
              f"{', '.join(str(i) for i in stats.members_retired)} "
              "(fleet degraded)")
    print(f"summary           : {_summary_line(stats)}")
    if getattr(args, "profile", False):
        _print_profile(stats)
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if not args.resume and not args.workload:
        print("error: fuzz: --workload is required (unless resuming with "
              "--resume)", file=sys.stderr)
        return 2
    if args.fleet > 1:
        if args.resume:
            print("error: fuzz: --resume is for solo campaigns; a fleet "
                  "resumes by re-running with the same --fleet-dir",
                  file=sys.stderr)
            return 2
        return _cmd_fleet(args)
    # Solo campaign: first SIGINT/SIGTERM stops cleanly (final
    # checkpoint + summary with stop_reason=signal), the second
    # hard-exits.
    from repro.orchestrate.signals import install_graceful_stop
    hook = lambda engine: install_graceful_stop(engine)  # noqa: E731
    if args.resume:
        stats = run_campaign(args.workload, args.config, args.budget,
                             resume_from=args.resume, engine_hook=hook)
    else:
        stats = run_campaign(args.workload, args.config, args.budget,
                             seed=args.seed, fault_plan=args.fault_plan,
                             engine_hook=hook,
                             **_checkpoint_kwargs(args, args.config),
                             **_isolation_kwargs(args),
                             **_observe_kwargs(args),
                             **_crashgen_kwargs(args),
                             **_corpusdb_kwargs(args),
                             **_execcore_kwargs(args),
                             **_fastpath_kwargs(args))
    if stats.isolation_fallback:
        print(f"warning: fork isolation unavailable "
              f"({stats.isolation_fallback}); ran in-process",
              file=sys.stderr)
    print(f"configuration     : {stats.config_name}")
    print(f"workload          : {stats.workload_name}")
    print(f"executions        : {stats.executions}")
    print(f"stopped           : {stats.stop_reason}")
    print(f"PM paths covered  : {stats.final_pm_paths}")
    print(f"branch edges      : {stats.final_branch_edges}")
    print(f"normal images     : {stats.normal_images_generated}")
    print(f"crash images      : {stats.crash_images_generated}")
    print(f"deduplicated      : {stats.images_deduplicated}")
    if stats.harness_faults or stats.retries or stats.quarantined:
        print(f"harness faults    : {stats.harness_faults} "
              f"({stats.retries} retries, {stats.timeouts} timeouts, "
              f"{stats.quarantined} quarantined)")
    if getattr(args, "corpus_db", None):
        if stats.corpusdb_degraded:
            print(f"corpus database   : degraded "
                  f"({stats.corpusdb_published} published before); "
                  "campaign finished standalone")
        else:
            print(f"corpus database   : {stats.corpusdb_published} "
                  f"published, {stats.corpusdb_imported} imported "
                  f"({stats.corpusdb_warm_start} at warm-start), "
                  f"{stats.corpusdb_import_rejected} rejected")
    print(f"summary           : {_summary_line(stats)}")
    if getattr(args, "profile", False):
        _print_profile(stats)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    curves = {}
    for config in CONFIGS:
        print(f"running {config.name} …", file=sys.stderr)
        curves[config.name] = run_campaign(
            args.workload, config.name, args.budget, seed=args.seed,
            fault_plan=args.fault_plan,
            **_checkpoint_kwargs(args, config.name))
    print(render_coverage_figure(
        curves, args.budget,
        title=f"PM path coverage — {args.workload}"))
    faulted = {name: s for name, s in curves.items() if s.harness_faults}
    for name, s in faulted.items():
        print(f"{name}: {s.harness_faults} harness faults absorbed "
              f"({s.retries} retries, {s.quarantined} quarantined)")
    return 0


def _cmd_real_bugs(args: argparse.Namespace) -> int:
    if args.bug is not None:
        targets = [bug_by_number(args.bug)]
    else:
        targets = list(ALL_REAL_BUGS)
    failures = 0
    for workload in sorted({b.workload for b in targets}):
        wanted = {b.number for b in targets if b.workload == workload}
        pipe = FuzzAndDetectPipeline(workload, "pmfuzz",
                                     bugs=buggy_flags_for(workload),
                                     max_checked=48, seed=args.seed)
        result = pipe.run(budget_vseconds=args.budget)
        for r in result.real_bugs:
            if r.bug.number in wanted:
                status = "detected" if r.detected else "MISSED"
                vtime = (f" at vt={r.first_detection_vtime:.4f}s"
                         if r.detected else "")
                print(f"bug {r.bug.number:>2d} ({r.bug.kind}, "
                      f"{workload}): {status}{vtime}")
                failures += not r.detected
    return 1 if failures else 0


def _cmd_triage(args: argparse.Namespace) -> int:
    from repro.core.storage import TriageStore

    store = TriageStore(args.dir)
    if not args.replay:
        bundles = store.list_bundles()
        if not bundles:
            print(f"no triage bundles under {args.dir!r}")
            return 0
        for path in bundles:
            meta = TriageStore.load_bundle(path).meta
            print(f"{path}: {meta.get('reason', '?')} "
                  f"[{meta.get('workload') or 'unknown workload'}] "
                  f"{meta.get('exit_detail', '')}".rstrip())
        return 0

    from repro.errors import ExecTimeoutError, HarnessFaultError
    from repro.fuzz.executor import Executor
    from repro.isolation.backend import create_backend
    from repro.workloads.registry import get_workload

    try:
        bundle = TriageStore.load_bundle(args.replay)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load bundle {args.replay!r}: {exc}",
              file=sys.stderr)
        return 2
    workload = bundle.meta.get("workload")
    if not workload:
        print("error: bundle carries no workload name (hand-built "
              "campaign?); cannot rebuild the target", file=sys.stderr)
        return 2
    bugs = frozenset(bundle.meta.get("bugs") or ())
    executor = Executor(lambda: get_workload(workload, bugs=bugs))
    backend, fallback = create_backend(
        args.isolation, executor, wall_timeout=args.exec_wall_timeout)
    if fallback:
        print(f"warning: replaying in-process ({fallback}); a true hang "
              "will wedge this command", file=sys.stderr)
    print(f"replaying {bundle.path} "
          f"(reason: {bundle.meta.get('reason', '?')}, "
          f"workload: {workload})")
    try:
        result = backend.run_raw_image(bundle.image_bytes, bundle.data)
    except ExecTimeoutError as exc:
        print(f"reproduced: hang ({exc})")
        return 1
    except HarnessFaultError as exc:
        print(f"reproduced: worker death ({exc})")
        return 1
    finally:
        backend.close()
    print(f"outcome           : {result.outcome.value}")
    print(f"commands run      : {result.commands_run}")
    print(f"sites hit         : {len(result.sites_hit)}")
    if result.error:
        print(f"error             : {result.error.strip().splitlines()[-1]}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.observe.monitor import monitor_loop

    return monitor_loop(args.dir, interval=args.interval, once=args.once,
                        wait=args.wait)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.observe.monitor import wait_for_campaign
    from repro.observe.report import render_html_report, render_report

    if not wait_for_campaign(args.dir, args.wait, what="trace data") \
            and args.wait > 0:
        return 1
    print(render_report(args.dir))
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html_report(args.dir))
        print(f"HTML report written to {args.html}")
    return 0


def _cmd_corpusdb(args: argparse.Namespace) -> int:
    """Manage a cross-campaign corpus database (info / scrub / compact)."""
    from repro.corpusdb.db import CorpusDatabase
    from repro.corpusdb.scrub import scrub_database
    from repro.errors import CorpusDBError

    try:
        if args.action == "info":
            db = CorpusDatabase.open(args.path, create=False)
            info = db.info()
            print(f"corpus database   : {info['root']}")
            print(f"entries           : {info['entries']} "
                  f"({info['hot']} hot, {info['cold']} cold, "
                  f"{info['bytes']} bytes)")
            print(f"journal pending   : {info['journal_pending']}")
            print(f"quarantined       : {info['quarantined']}")
            return 0
        if args.action == "compact":
            db = CorpusDatabase.open(args.path, create=False)
            replay = db.replay_journal()
            moved = db.compact(hot_limit=args.hot_limit,
                               max_moves=args.max_moves)
            print(f"journal replay    : {replay.completed} completed, "
                  f"{replay.rolled_back} rolled back")
            print(f"compacted         : {moved} entries moved cold")
            return 0
        # scrub [--verify]
        report, _ = scrub_database(args.path, verify=args.verify,
                                   tmp_grace=args.tmp_grace)
        for name, label in sorted(report.typed_reasons.items()):
            print(f"quarantined       : {name} ({label})")
        print(f"scrub             : {report.summary()}")
        if args.verify and not report.ok:
            for name, label in sorted(report.residual.items()):
                print(f"RESIDUAL DAMAGE   : {name} ({label})",
                      file=sys.stderr)
            return 1
        return 0
    except CorpusDBError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_suite

    try:
        run_suite(names=args.only or None, quick=args.quick,
                  repeats=args.repeats, out_dir=args.out_dir,
                  baseline_dir=args.baseline_dir or None,
                  exec_core=args.exec_core,
                  cov_backend=getattr(args, "cov_backend", None))
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeDaemon

    daemon = ServeDaemon(
        args.dir,
        host=args.host, port=args.port,
        max_running=args.max_running,
        tenant_quota=args.tenant_quota,
        queue_limit=args.queue_limit,
        max_budget=args.max_budget,
        lease_s=args.lease,
        kill_grace=args.kill_grace,
        max_deaths=args.max_deaths,
        checkpoint_every=args.checkpoint_every,
        fault_plan=args.fault_plan,
        enable_chaos=args.enable_chaos,
        exit_when_idle=args.exit_when_idle,
        quiet=args.quiet,
    )
    return daemon.run()


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.audit import DurabilityAuditor
    from repro.audit.protocols import COMPONENTS

    components = list(COMPONENTS) if args.component == "all" \
        else [args.component]
    bus = None
    if args.trace_dir:
        from repro.observe.bus import TraceBus
        from repro.observe.sink import JsonlTraceSink, shard_name
        bus = TraceBus(sink=JsonlTraceSink(
            os.path.join(args.trace_dir, shard_name(-1))), flush_every=1)
    auditor = DurabilityAuditor(args.out, budget=args.budget, bus=bus)
    report = auditor.audit(components)
    if bus is not None:
        bus.close()
    print(report.render())
    return 0 if report.ok else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.resilience.faults import (FAULT_SITE_DESCRIPTIONS,
                                         FAULT_SITES, HOST_FAULT_SITES,
                                         SITE_GROUPS)

    # `faults list`: the injectable surface, host/campaign stream
    # membership, and the spec-string group aliases.
    print("fault sites (site:rate[:burst] in --fault-plan):")
    for site in FAULT_SITES:
        stream = "host" if site in HOST_FAULT_SITES else "campaign"
        print(f"  {site:<18} [{stream:<8}] "
              f"{FAULT_SITE_DESCRIPTIONS.get(site, '')}")
    print("group aliases:")
    for alias, members in SITE_GROUPS.items():
        print(f"  {alias:<18} -> {', '.join(members)}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name in workload_names():
        flags = sorted(b.flag for b in ALL_REAL_BUGS if b.workload == name)
        shown = ", ".join(flags) if flags else "-"
        print(f"{name:16s} real-bug flags: {shown}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PMFuzz reproduction driver",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run one fuzzing campaign")
    fuzz.add_argument("--workload", choices=workload_names(),
                      help="required unless --resume is given")
    fuzz.add_argument("--config", default="pmfuzz")
    fuzz.add_argument("--budget", type=float, default=2.0,
                      help="virtual seconds (campaign length)")
    fuzz.add_argument("--seed", type=int, default=0x504D465A)
    fuzz.add_argument("--fault-plan", default=None, metavar="SPEC",
                      help="environment-fault plan, e.g. 'all:0.01' or "
                           "'storage-load:0.05:3,exec-fault:0.01'")
    fuzz.add_argument("--checkpoint-every", type=float, default=None,
                      metavar="VSECONDS",
                      help="snapshot campaign state every N virtual seconds")
    fuzz.add_argument("--checkpoint-path", default=None,
                      help="checkpoint file (default: "
                           "<workload>-<config>.ckpt)")
    fuzz.add_argument("--resume", default=None, metavar="CHECKPOINT",
                      help="resume a killed campaign from its checkpoint "
                           "and fuzz to --budget")
    fuzz.add_argument("--isolation", choices=["fork", "none"],
                      default="none",
                      help="execution backend: 'fork' sandboxes every "
                           "test case in a worker subprocess with a "
                           "wall-clock watchdog and RSS ceiling "
                           "(degrades to 'none' where fork is "
                           "unavailable)")
    fuzz.add_argument("--exec-core", choices=["scalar", "vector"],
                      default=None,
                      help="execution core: 'vector' uses the batched "
                           "numpy persistence-domain/coverage kernels, "
                           "'scalar' the pure-python reference (default: "
                           "vector when numpy is available; both produce "
                           "identical campaigns)")
    fuzz.add_argument("--cov-backend", choices=["settrace", "monitoring"],
                      default=None,
                      help="branch-coverage backend: 'monitoring' uses "
                           "the low-overhead sys.monitoring line events "
                           "(PEP 669, python >= 3.12), 'settrace' the "
                           "portable reference tracer (default: "
                           "monitoring where available; both produce "
                           "identical edge maps)")
    fuzz.add_argument("--warm-open", choices=["on", "off"], default="on",
                      help="content-addressed warm-open pool cache: "
                           "memoizes the post-open recovery/creation "
                           "prefix per input image (default: on; "
                           "observably identical either way)")
    fuzz.add_argument("--batch-execs", type=int, default=8, metavar="N",
                      help="executions shipped per fork-worker dispatch "
                           "(fork only; 1 disables batching)")
    fuzz.add_argument("--transport", choices=["auto", "ring", "pipe"],
                      default="auto",
                      help="fork-worker frame transport: shared-memory "
                           "ring or classic pickled pipe (default: ring "
                           "where shared mmap is available)")
    fuzz.add_argument("--workers", type=int, default=1,
                      help="fork-server worker pool size")
    fuzz.add_argument("--exec-wall-timeout", type=float, default=10.0,
                      metavar="SECONDS",
                      help="real-time deadline per execution before the "
                           "watchdog SIGKILLs the worker (fork only)")
    fuzz.add_argument("--worker-rss-limit", type=int, default=None,
                      metavar="MIB",
                      help="address-space ceiling per worker in MiB "
                           "(fork only)")
    fuzz.add_argument("--triage-dir", default="triage",
                      help="directory for on-death crash-triage bundles "
                           "(fork only; default: ./triage)")
    fuzz.add_argument("--fleet", type=int, default=1, metavar="N",
                      help="shard the campaign across N supervised "
                           "fuzzer processes sharing one corpus "
                           "(heartbeats, automatic restarts, merged "
                           "report); 1 = solo")
    fuzz.add_argument("--fleet-dir", default=None,
                      help="shared fleet directory (default: "
                           "fleet-<workload>-<config>); re-running with "
                           "the same directory resumes the fleet from "
                           "its member checkpoints")
    fuzz.add_argument("--sync-every", type=float, default=0.5,
                      metavar="VSECONDS",
                      help="corpus sync epoch length in virtual seconds "
                           "(fleet only)")
    fuzz.add_argument("--member-lease", type=float, default=5.0,
                      metavar="SECONDS",
                      help="heartbeat lease; a member silent this long "
                           "is SIGKILLed and restarted (fleet only)")
    fuzz.add_argument("--fleet-kill", action="append", default=None,
                      metavar="MEMBER:EPOCH",
                      help="chaos testing: SIGKILL the given member once "
                           "it publishes the given epoch (repeatable); "
                           "the fleet must self-heal around it")
    fuzz.add_argument("--trace-dir", default=None, metavar="DIR",
                      help="write structured trace shards (JSONL) and "
                           "live status.json files here; read them back "
                           "with 'monitor' and 'report'")
    fuzz.add_argument("--trace-sample", type=int, default=1, metavar="N",
                      help="keep 1-in-N high-rate exec events "
                           "(other event kinds are never sampled)")
    fuzz.add_argument("--trace-rotate-mib", type=int, default=None,
                      metavar="MIB",
                      help="rotate a trace shard once it exceeds this "
                           "size (default: never)")
    fuzz.add_argument("--status-every", type=float, default=0.5,
                      metavar="VSECONDS",
                      help="status.json publish cadence in virtual "
                           "seconds (needs --trace-dir)")
    fuzz.add_argument("--profile", action="store_true",
                      help="collect wall-clock per-stage timers and "
                           "print the flame-style breakdown at the end "
                           "(virtual-time attribution is always on)")
    fuzz.add_argument("--corpus-db", default=None, metavar="DIR",
                      help="durable cross-campaign corpus database: "
                           "warm-start the queue from it at boot, "
                           "publish discoveries into it, and import "
                           "other campaigns' entries mid-flight; an "
                           "unusable database degrades gracefully "
                           "(the campaign runs standalone)")
    fuzz.add_argument("--corpus-db-every", type=float, default=0.5,
                      metavar="VSECONDS",
                      help="corpus-database sync cadence in virtual "
                           "seconds (needs --corpus-db)")
    fuzz.add_argument("--crashgen", choices=["singlepass", "reexec"],
                      default="singlepass",
                      help="crash-image generation strategy: harvest "
                           "all crash images from one snapshot-planned "
                           "execution (default) or re-execute once per "
                           "failure point as the paper does; both are "
                           "byte- and stats-identical")
    fuzz.set_defaults(func=_cmd_fuzz)

    compare = sub.add_parser("compare",
                             help="all five configs on one workload")
    compare.add_argument("--workload", required=True,
                         choices=workload_names())
    compare.add_argument("--budget", type=float, default=2.0)
    compare.add_argument("--seed", type=int, default=0x504D465A)
    compare.add_argument("--fault-plan", default=None, metavar="SPEC",
                         help="environment-fault plan applied to every "
                              "configuration")
    compare.add_argument("--checkpoint-every", type=float, default=None,
                         metavar="VSECONDS",
                         help="checkpoint each campaign to "
                              "<workload>-<config>.ckpt")
    compare.set_defaults(func=_cmd_compare)

    bugs = sub.add_parser("real-bugs",
                          help="reproduce the paper's 12 bugs")
    bugs.add_argument("--bug", type=int, choices=range(1, 13),
                      help="a single bug number (default: all)")
    bugs.add_argument("--budget", type=float, default=3.0)
    bugs.add_argument("--seed", type=int, default=0x504D465A)
    bugs.set_defaults(func=_cmd_real_bugs)

    tri = sub.add_parser("triage",
                         help="list or replay crash-triage bundles")
    tri.add_argument("dir", nargs="?", default="triage",
                     help="triage directory (default: ./triage)")
    tri.add_argument("--replay", default=None, metavar="BUNDLE",
                     help="replay one bundle directory; exit 0 if it "
                          "runs to completion, 1 if the kill reproduces")
    tri.add_argument("--isolation", choices=["fork", "none"],
                     default="fork",
                     help="replay backend (default fork, so a "
                          "reproduced hang is reaped, not wedged)")
    tri.add_argument("--exec-wall-timeout", type=float, default=10.0,
                     metavar="SECONDS")
    tri.set_defaults(func=_cmd_triage)

    mon = sub.add_parser("monitor",
                         help="tail the live status of a traced campaign")
    mon.add_argument("dir", help="the campaign's --trace-dir")
    mon.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS", help="refresh cadence")
    mon.add_argument("--once", action="store_true",
                     help="render a single frame and exit (exit status "
                          "1 when no status files exist yet)")
    mon.add_argument("--wait", type=float, default=0.0, metavar="SECONDS",
                     help="tolerate a campaign that has not started: "
                          "retry with backoff for up to this many "
                          "seconds before the first frame")
    mon.set_defaults(func=_cmd_monitor)

    rep = sub.add_parser("report",
                         help="render a campaign report from trace shards")
    rep.add_argument("dir", help="the campaign's --trace-dir")
    rep.add_argument("--html", default=None, metavar="FILE",
                     help="also write a self-contained HTML report")
    rep.add_argument("--wait", type=float, default=0.0, metavar="SECONDS",
                     help="retry with backoff for up to this many "
                          "seconds until trace data exists (exit 1 on "
                          "timeout)")
    rep.set_defaults(func=_cmd_report)

    cdb = sub.add_parser(
        "corpusdb",
        help="manage a cross-campaign corpus database")
    cdb.add_argument("action", choices=["info", "scrub", "compact"],
                     help="info: counts and sizes; scrub: journal "
                          "replay + typed quarantine of damaged "
                          "entries (--verify re-checks the whole "
                          "store); compact: move excess hot entries "
                          "to the cold tier")
    cdb.add_argument("path", help="database root directory")
    cdb.add_argument("--verify", action="store_true",
                     help="after repair, deep-verify every entry "
                          "(checksum + content address); exit 1 if "
                          "any damage remains")
    cdb.add_argument("--tmp-grace", type=float, default=60.0,
                     metavar="SECONDS",
                     help="age before an orphaned .tmp file is "
                          "presumed dead and removed")
    cdb.add_argument("--hot-limit", type=int, default=256, metavar="N",
                     help="entries to keep in the hot tier when "
                          "compacting")
    cdb.add_argument("--max-moves", type=int, default=None, metavar="N",
                     help="bound on moves per compact invocation")
    cdb.set_defaults(func=_cmd_corpusdb)

    bench = sub.add_parser(
        "bench", help="run the deterministic perf benchmark suite")
    bench.add_argument("--only", action="append", default=None,
                       metavar="NAME",
                       help="run a single benchmark (repeatable); "
                            "default: all")
    bench.add_argument("--quick", action="store_true",
                       help="smaller iteration counts for CI smoke runs")
    bench.add_argument("--repeats", type=int, default=None, metavar="N",
                       help="repeats per benchmark (median reported)")
    bench.add_argument("--out-dir", default=".", metavar="DIR",
                       help="where BENCH_<name>.json files are written "
                            "(default: current directory)")
    bench.add_argument("--exec-core", choices=["scalar", "vector"],
                       default=None,
                       help="execution core the campaign benchmarks run "
                            "on (default: vector when numpy is available)")
    bench.add_argument("--cov-backend", choices=["settrace", "monitoring"],
                       default=None,
                       help="coverage backend the benchmarks run under "
                            "(default: monitoring where available)")
    bench.add_argument("--baseline-dir", default="benchmarks/baseline",
                       metavar="DIR",
                       help="committed baseline to print deltas against "
                            "('' disables; default: benchmarks/baseline)")
    bench.set_defaults(func=_cmd_bench)

    srv = sub.add_parser(
        "serve",
        help="run the campaign-as-a-service daemon")
    srv.add_argument("dir",
                     help="serve directory (submission journal, "
                          "per-tenant campaign state); created on "
                          "first use, replayed on every start")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: localhost only)")
    srv.add_argument("--port", type=int, default=8765,
                     help="TCP port (0 = kernel-assigned; the live "
                          "address is published to <dir>/endpoint.json)")
    srv.add_argument("--max-running", type=int, default=2, metavar="N",
                     help="campaign runner processes in flight at once")
    srv.add_argument("--tenant-quota", type=int, default=2, metavar="N",
                     help="active (queued+running) campaigns allowed "
                          "per tenant; beyond it submissions get 429")
    srv.add_argument("--queue-limit", type=int, default=32, metavar="N",
                     help="total active campaigns before the daemon "
                          "applies 429 backpressure")
    srv.add_argument("--max-budget", type=float, default=120.0,
                     metavar="VSECONDS",
                     help="largest virtual budget one submission may ask "
                          "for")
    srv.add_argument("--lease", type=float, default=5.0, metavar="SECONDS",
                     help="heartbeat lease; a campaign silent this long "
                          "is escalated SIGTERM then SIGKILL")
    srv.add_argument("--kill-grace", type=float, default=2.0,
                     metavar="SECONDS",
                     help="wall seconds between the watchdog's SIGTERM "
                          "and its SIGKILL")
    srv.add_argument("--max-deaths", type=int, default=3, metavar="N",
                     help="circuit breaker: deaths within the window "
                          "before a campaign is retired")
    srv.add_argument("--checkpoint-every", type=float, default=0.25,
                     metavar="VSECONDS",
                     help="checkpoint cadence for hosted campaigns "
                          "(the granularity of crash recovery)")
    srv.add_argument("--fault-plan", default=None, metavar="SPEC",
                     help="seeded fault plan for the daemon's own "
                          "failure paths, e.g. 'serve:0.05' or "
                          "'serve-journal:0.1:2'")
    srv.add_argument("--enable-chaos", action="store_true",
                     help="accept submissions carrying chaos hooks "
                          "(wedge-once, fail) — soak testing only")
    srv.add_argument("--exit-when-idle", action="store_true",
                     help="exit 0 once every known campaign is "
                          "terminal (scripting/CI; default is to serve "
                          "until signalled)")
    srv.add_argument("--quiet", action="store_true",
                     help="suppress per-request and lifecycle logging")
    srv.set_defaults(func=_cmd_serve)

    audit = sub.add_parser(
        "audit",
        help="crash-test every durable store by systematic enumeration")
    audit.add_argument("--component", default="all",
                       choices=["all", "checkpoint", "corpus", "corpusdb",
                                "serve", "storage", "sink"],
                       help="which durable protocol to audit "
                            "(default: all)")
    audit.add_argument("--budget", type=int, default=0, metavar="N",
                       help="max crash states checked per component, "
                            "sampled deterministically and evenly "
                            "(0 = exhaustive, the default)")
    audit.add_argument("--out", default="audit-out", metavar="DIR",
                       help="output directory; violating crash states "
                            "are preserved there as replayable bundles "
                            "(default: ./audit-out)")
    audit.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="also emit per-component audit events to a "
                            "JSONL trace shard under DIR")
    audit.set_defaults(func=_cmd_audit)

    faults = sub.add_parser(
        "faults", help="inspect the fault-injection surface")
    faults.add_argument("action", choices=["list"],
                        help="list: every fault site, its stream "
                             "(host vs campaign), and group aliases")
    faults.set_defaults(func=_cmd_faults)

    wl = sub.add_parser("workloads", help="list PM programs")
    wl.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "config", None) is not None:
        try:
            config_by_name(args.config)  # fail fast on unknown names
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    try:
        return args.func(args)
    except ReproError as exc:
        # Bad fault plans, damaged/missing checkpoints, unusable corpus
        # databases, rejected submissions: user input or environment
        # errors get one clean line and the documented status, never a
        # traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
