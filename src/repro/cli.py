"""Command-line interface: ``python -m repro <command>``.

The reproduction's equivalent of the artifact's driver scripts
(``run-workloads.sh``, ``test-real-bugs.sh``, ``pmfuzz-fuzz.py``):

``fuzz``
    Run one fuzzing campaign (workload × Table-2 configuration) and
    print the coverage summary, e.g.::

        python -m repro fuzz --workload btree --config pmfuzz --budget 3

``compare``
    Run all five comparison points on one workload and render the
    Figure-13 panel.

``real-bugs``
    Reproduce the paper's real-world bugs (``test-real-bugs.sh [1..12]``):
    fuzz the buggy variant and report detection, optionally for a single
    bug number.

``workloads``
    List the available PM programs and their bug flags.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.figures import render_coverage_figure
from repro.core.config import CONFIGS, config_by_name
from repro.errors import CheckpointError, FuzzerError
from repro.core.pipeline import FuzzAndDetectPipeline
from repro.core.pmfuzz import run_campaign
from repro.workloads import workload_names
from repro.workloads.realbugs import ALL_REAL_BUGS, bug_by_number, \
    buggy_flags_for


def _slug(name: str) -> str:
    """Filesystem-safe short form of a configuration display name."""
    return "".join(c if c.isalnum() else "-" for c in name.lower()).strip("-")


def _checkpoint_kwargs(args: argparse.Namespace, config_name: str) -> dict:
    """Checkpoint engine kwargs from the CLI flags (empty if disabled)."""
    if args.checkpoint_every is None:
        return {}
    path = getattr(args, "checkpoint_path", None) or \
        f"{args.workload}-{_slug(config_name)}.ckpt"
    return {"checkpoint_every": args.checkpoint_every,
            "checkpoint_path": path}


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if not args.resume and not args.workload:
        print("fuzz: --workload is required (unless resuming with "
              "--resume)", file=sys.stderr)
        return 2
    if args.resume:
        stats = run_campaign(args.workload, args.config, args.budget,
                             resume_from=args.resume)
    else:
        stats = run_campaign(args.workload, args.config, args.budget,
                             seed=args.seed, fault_plan=args.fault_plan,
                             **_checkpoint_kwargs(args, args.config))
    print(f"configuration     : {stats.config_name}")
    print(f"workload          : {stats.workload_name}")
    print(f"executions        : {stats.executions}")
    print(f"stopped           : {stats.stop_reason}")
    print(f"PM paths covered  : {stats.final_pm_paths}")
    print(f"branch edges      : {stats.final_branch_edges}")
    print(f"normal images     : {stats.normal_images_generated}")
    print(f"crash images      : {stats.crash_images_generated}")
    print(f"deduplicated      : {stats.images_deduplicated}")
    if stats.harness_faults or stats.retries or stats.quarantined:
        print(f"harness faults    : {stats.harness_faults} "
              f"({stats.retries} retries, {stats.timeouts} timeouts, "
              f"{stats.quarantined} quarantined)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    curves = {}
    for config in CONFIGS:
        print(f"running {config.name} …", file=sys.stderr)
        curves[config.name] = run_campaign(
            args.workload, config.name, args.budget, seed=args.seed,
            fault_plan=args.fault_plan,
            **_checkpoint_kwargs(args, config.name))
    print(render_coverage_figure(
        curves, args.budget,
        title=f"PM path coverage — {args.workload}"))
    faulted = {name: s for name, s in curves.items() if s.harness_faults}
    for name, s in faulted.items():
        print(f"{name}: {s.harness_faults} harness faults absorbed "
              f"({s.retries} retries, {s.quarantined} quarantined)")
    return 0


def _cmd_real_bugs(args: argparse.Namespace) -> int:
    if args.bug is not None:
        targets = [bug_by_number(args.bug)]
    else:
        targets = list(ALL_REAL_BUGS)
    failures = 0
    for workload in sorted({b.workload for b in targets}):
        wanted = {b.number for b in targets if b.workload == workload}
        pipe = FuzzAndDetectPipeline(workload, "pmfuzz",
                                     bugs=buggy_flags_for(workload),
                                     max_checked=48, seed=args.seed)
        result = pipe.run(budget_vseconds=args.budget)
        for r in result.real_bugs:
            if r.bug.number in wanted:
                status = "detected" if r.detected else "MISSED"
                vtime = (f" at vt={r.first_detection_vtime:.4f}s"
                         if r.detected else "")
                print(f"bug {r.bug.number:>2d} ({r.bug.kind}, "
                      f"{workload}): {status}{vtime}")
                failures += not r.detected
    return 1 if failures else 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    for name in workload_names():
        flags = sorted(b.flag for b in ALL_REAL_BUGS if b.workload == name)
        shown = ", ".join(flags) if flags else "-"
        print(f"{name:16s} real-bug flags: {shown}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PMFuzz reproduction driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run one fuzzing campaign")
    fuzz.add_argument("--workload", choices=workload_names(),
                      help="required unless --resume is given")
    fuzz.add_argument("--config", default="pmfuzz")
    fuzz.add_argument("--budget", type=float, default=2.0,
                      help="virtual seconds (campaign length)")
    fuzz.add_argument("--seed", type=int, default=0x504D465A)
    fuzz.add_argument("--fault-plan", default=None, metavar="SPEC",
                      help="environment-fault plan, e.g. 'all:0.01' or "
                           "'storage-load:0.05:3,exec-fault:0.01'")
    fuzz.add_argument("--checkpoint-every", type=float, default=None,
                      metavar="VSECONDS",
                      help="snapshot campaign state every N virtual seconds")
    fuzz.add_argument("--checkpoint-path", default=None,
                      help="checkpoint file (default: "
                           "<workload>-<config>.ckpt)")
    fuzz.add_argument("--resume", default=None, metavar="CHECKPOINT",
                      help="resume a killed campaign from its checkpoint "
                           "and fuzz to --budget")
    fuzz.set_defaults(func=_cmd_fuzz)

    compare = sub.add_parser("compare",
                             help="all five configs on one workload")
    compare.add_argument("--workload", required=True,
                         choices=workload_names())
    compare.add_argument("--budget", type=float, default=2.0)
    compare.add_argument("--seed", type=int, default=0x504D465A)
    compare.add_argument("--fault-plan", default=None, metavar="SPEC",
                         help="environment-fault plan applied to every "
                              "configuration")
    compare.add_argument("--checkpoint-every", type=float, default=None,
                         metavar="VSECONDS",
                         help="checkpoint each campaign to "
                              "<workload>-<config>.ckpt")
    compare.set_defaults(func=_cmd_compare)

    bugs = sub.add_parser("real-bugs",
                          help="reproduce the paper's 12 bugs")
    bugs.add_argument("--bug", type=int, choices=range(1, 13),
                      help="a single bug number (default: all)")
    bugs.add_argument("--budget", type=float, default=3.0)
    bugs.add_argument("--seed", type=int, default=0x504D465A)
    bugs.set_defaults(func=_cmd_real_bugs)

    wl = sub.add_parser("workloads", help="list PM programs")
    wl.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "config", None) is not None:
        try:
            config_by_name(args.config)  # fail fast on unknown names
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
    try:
        return args.func(args)
    except (CheckpointError, FuzzerError) as exc:
        # Bad fault plans and damaged/missing checkpoints are user
        # input errors: one clean line, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
