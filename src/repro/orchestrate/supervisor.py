"""Self-healing fleet supervision: spawn, watch, restart, retire, merge.

The supervisor shards one campaign across ``fleet`` member processes
(:mod:`repro.orchestrate.member`), each forked with a deterministic
per-member seed, and then runs a watch loop with four duties:

* **Reap** — collect exit statuses; status 0 is completion, anything
  else is a death.
* **Staleness** — a member whose heartbeat lease has expired is wedged;
  it is SIGKILLed and the kill counts as a death.
* **Restart** — a dead member is relaunched from its last epoch
  checkpoint after an exponentially growing backoff; the resumed
  member replays its interrupted epoch bit-for-bit.
* **Circuit breaker** — ``max_deaths`` deaths inside ``death_window``
  wall seconds retire the member: a ``retired`` marker releases the
  peers' barriers and the fleet degrades gracefully (the merged report
  says ``stop_reason="degraded"`` and lists who was lost).

Shutdown is drain-then-merge: the first SIGINT/SIGTERM forwards a
graceful stop to every member (each takes a final checkpoint and
publishes its stats), and the merged report is produced from whatever
completed — deterministically, independent of completion order.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.storage import CorpusScrubber, ScrubReport
from repro.errors import FuzzerError
from repro.fuzz.stats import FuzzStats
from repro.isolation.pool import describe_wait_status
from repro.observe.bus import TraceBus
from repro.observe.sink import JsonlTraceSink
from repro.orchestrate.heartbeat import read_heartbeat
from repro.orchestrate.member import member_main, read_member_stats
from repro.orchestrate.merge import merge_fleet_stats
from repro.orchestrate.signals import GracefulStop
from repro.orchestrate.sync import FleetPaths

#: Trace member label for the supervisor's own shard (members use their
#: index; -1 is a solo campaign).
SUPERVISOR_MEMBER = -2


@dataclass
class FleetSpec:
    """Everything one fleet campaign needs, in one picklable record."""

    workload: str
    config_name: str
    budget: float
    fleet: int
    fleet_dir: str
    seed: int = 0x504D465A
    sync_every: float = 0.5  #: virtual seconds per epoch
    bugs: Tuple[str, ...] = ()
    fault_plan: Optional[object] = None
    engine_kwargs: dict = field(default_factory=dict)
    heartbeat_lease: float = 5.0
    poll_interval: float = 0.02
    restart_backoff: float = 0.25  #: first-restart delay; doubles per death
    max_deaths: int = 3  #: circuit breaker: deaths in window before retiring
    death_window: float = 30.0  #: wall seconds the breaker looks back over
    barrier_timeout: float = 120.0
    spawn_grace: float = 10.0  #: wall seconds before a silent member is stale
    #: Chaos hooks, used by the test-suite's self-healing scenarios.
    kill_plan: Dict[int, int] = field(default_factory=dict)  # member → epoch
    fail_plan: Tuple[int, ...] = ()  # members that exit(3) after epoch 0
    wedge_plan: Tuple[int, ...] = ()  # members that hang once at startup

    def __post_init__(self) -> None:
        if self.fleet < 1:
            raise FuzzerError(f"fleet size must be >= 1, got {self.fleet}")
        if self.sync_every <= 0:
            raise FuzzerError("sync_every must be positive")


class _Member:
    """Supervisor-side lifecycle state for one fleet member."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.pid: Optional[int] = None
        self.completed = False
        self.retired = False
        self.restarts = 0
        self.deaths: deque = deque()  # monotonic death instants
        self.backoff = 0.0
        self.restart_at = 0.0  # monotonic instant of the pending restart
        self.spawned_at = 0.0
        self.kill_fired = False
        self.last_exit = ""

    @property
    def running(self) -> bool:
        return self.pid is not None

    @property
    def finished(self) -> bool:
        return self.completed or self.retired


class FleetSupervisor:
    """Drive one :class:`FleetSpec` to a merged campaign report."""

    def __init__(self, spec: FleetSpec) -> None:
        self.spec = spec
        self.paths = FleetPaths(spec.fleet_dir)
        self.members = [_Member(i) for i in range(spec.fleet)]
        self.scrub_report: Optional[ScrubReport] = None
        self._drain = False
        # The supervisor writes its own trace shard (kills, retirements,
        # restarts) next to the members' when the campaign traces; the
        # members inherit trace_dir through spec.engine_kwargs.
        trace_dir = (spec.engine_kwargs or {}).get("trace_dir")
        if trace_dir:
            self.trace = TraceBus(
                sink=JsonlTraceSink(
                    os.path.join(trace_dir, "trace-supervisor.jsonl")),
                member=SUPERVISOR_MEMBER, flush_every=1)
        else:
            self.trace = TraceBus()

    def _member_vtime(self, member: "_Member") -> float:
        """Approximate a member's virtual time from its last heartbeat
        (epoch * sync_every) — good enough to place supervisor events on
        the campaign timeline."""
        beat = read_heartbeat(self.paths.heartbeat(member.index))
        return beat.epoch * self.spec.sync_every if beat else 0.0

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run(self) -> FuzzStats:
        """Run the fleet to completion and return the merged stats."""
        self.paths.make_dirs()
        # Startup scrub: quarantine anything damaged in the shared
        # corpus (a previous fleet may have died mid-write) before any
        # member can import it.
        self.scrub_report = CorpusScrubber(self.paths.corpus,
                                           self.paths.quarantine).scrub()
        stop = GracefulStop(self._request_drain, label="fleet")
        stop.install()
        try:
            for member in self.members:
                # A pre-existing member checkpoint means this fleet dir
                # hosted an interrupted campaign: resume it.
                self._spawn(member, resume=os.path.exists(
                    self.paths.checkpoint(member.index)))
            while not all(m.finished for m in self.members):
                self._tick()
                time.sleep(self.spec.poll_interval)
        finally:
            stop.uninstall()
            self._kill_all()
            self.trace.close()
        return self._merge()

    # ------------------------------------------------------------------
    # Member lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, member: _Member, resume: bool) -> None:
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:
            # Child: become the member and never return into the
            # supervisor's stack (no atexit, no finally-blocks).
            status = 1
            try:
                status = member_main(self.spec, member.index, resume)
            finally:
                os._exit(status)
        member.pid = pid
        member.spawned_at = time.monotonic()

    def _tick(self) -> None:
        now = time.monotonic()
        for member in self.members:
            if member.finished:
                continue
            if member.running:
                self._fire_kill_plan(member)
                self._reap(member, now)
                if member.finished:
                    continue
            if member.running:
                self._check_stale(member, now)
            elif self._drain:
                # Draining: a member that is dead right now is not
                # restarted; it is recorded as lost.
                member.retired = True
                self._write_retired_marker(member)
            elif now >= member.restart_at:
                member.restarts += 1
                self.trace.emit("worker_kill", self._member_vtime(member),
                                reason="restart", target=member.index,
                                restarts=member.restarts)
                self._spawn(member, resume=True)

    def _fire_kill_plan(self, member: _Member) -> None:
        """Chaos hook: SIGKILL the member once its planned epoch lands."""
        epoch = self.spec.kill_plan.get(member.index)
        if epoch is None or member.kill_fired:
            return
        if os.path.exists(self.paths.epoch_marker(member.index, epoch)):
            member.kill_fired = True
            self._kill(member)

    def _reap(self, member: _Member, now: float) -> None:
        try:
            pid, status = os.waitpid(member.pid, os.WNOHANG)
        except ChildProcessError:
            pid, status = member.pid, 1 << 8  # lost child counts as a death
        if pid == 0:
            return
        member.pid = None
        if os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0:
            member.completed = True
            return
        member.last_exit = describe_wait_status(status)
        self.trace.emit("worker_kill", self._member_vtime(member),
                        reason="death", target=member.index,
                        exit_detail=member.last_exit)
        self._record_death(member, now)

    def _check_stale(self, member: _Member, now: float) -> None:
        """SIGKILL a member whose heartbeat lease has expired."""
        beat = read_heartbeat(self.paths.heartbeat(member.index))
        if beat is None:
            # No readable heartbeat yet: allow the spawn grace, then
            # treat the silence itself as a wedge.
            if now - member.spawned_at < self.spec.spawn_grace:
                return
        elif not beat.is_stale(now):
            return
        elif now - member.spawned_at < min(self.spec.heartbeat_lease,
                                           self.spec.spawn_grace):
            return  # stale file predates this (re)spawn
        self._kill(member)
        self._reap_blocking(member)
        self.trace.emit("worker_kill", self._member_vtime(member),
                        reason="stale-heartbeat", target=member.index,
                        exit_detail=member.last_exit)
        self._record_death(member, time.monotonic())

    def _record_death(self, member: _Member, now: float) -> None:
        member.deaths.append(now)
        window = self.spec.death_window
        while member.deaths and now - member.deaths[0] > window:
            member.deaths.popleft()
        if len(member.deaths) >= self.spec.max_deaths:
            self._retire(member)
            return
        member.backoff = (self.spec.restart_backoff if member.backoff == 0
                          else member.backoff * 2)
        member.restart_at = now + member.backoff
        if self._drain:
            # No restarts during drain; an already-dead member simply
            # contributes nothing further.
            member.retired = True
            self._write_retired_marker(member)

    def _retire(self, member: _Member) -> None:
        """Circuit breaker: give up on a repeatedly dying member.

        The ``retired`` marker is what lets the surviving peers' epoch
        barriers proceed without it — the fleet degrades instead of
        deadlocking.
        """
        member.retired = True
        self._write_retired_marker(member)
        self.trace.emit("worker_kill", self._member_vtime(member),
                        reason="retired", target=member.index,
                        deaths=len(member.deaths))
        print(f"[fleet] member {member.index} retired after "
              f"{len(member.deaths)} deaths "
              f"(last: {member.last_exit or 'unknown'}); "
              "fleet continues degraded", file=sys.stderr)

    def _write_retired_marker(self, member: _Member) -> None:
        from repro._util import atomic_write_bytes
        # The member may have died before ever creating its directory.
        os.makedirs(self.paths.member_dir(member.index), exist_ok=True)
        atomic_write_bytes(self.paths.retired_marker(member.index),
                           b"", fsync=False)

    # ------------------------------------------------------------------
    # Kill / drain plumbing
    # ------------------------------------------------------------------
    def _kill(self, member: _Member) -> None:
        if member.pid is None:
            return
        try:
            os.kill(member.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass

    def _reap_blocking(self, member: _Member) -> None:
        if member.pid is None:
            return
        try:
            _, status = os.waitpid(member.pid, 0)
            member.last_exit = describe_wait_status(status)
        except ChildProcessError:
            member.last_exit = "already reaped"
        member.pid = None

    def _kill_all(self) -> None:
        for member in self.members:
            self._kill(member)
            self._reap_blocking(member)

    def _request_drain(self) -> None:
        """First supervisor signal: forward a graceful stop to everyone."""
        self._drain = True
        for member in self.members:
            if member.pid is not None:
                try:
                    os.kill(member.pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def _merge(self) -> FuzzStats:
        collected: List[FuzzStats] = []
        for member in self.members:
            stats = read_member_stats(self.paths.stats_file(member.index))
            if stats is not None:
                collected.append(stats)
            elif not member.retired:
                # Completed without a stats file (or torn mid-drain):
                # count it as lost rather than crash the merge.
                member.retired = True
        if not collected:
            raise FuzzerError(
                "every fleet member was retired; no campaign stats to merge")
        return merge_fleet_stats(
            collected,
            fleet_size=self.spec.fleet,
            retired=[m.index for m in self.members if m.retired],
            restarts=sum(m.restarts for m in self.members),
            scrub_quarantined=(self.scrub_report.quarantined
                               if self.scrub_report else 0),
        )


def run_fleet(workload: str, config_name: str, budget: float, fleet: int,
              fleet_dir: str, **spec_kwargs) -> FuzzStats:
    """Convenience wrapper: build the spec, run the fleet, merge."""
    spec = FleetSpec(workload=workload, config_name=config_name,
                     budget=budget, fleet=fleet, fleet_dir=fleet_dir,
                     **spec_kwargs)
    return FleetSupervisor(spec).run()
