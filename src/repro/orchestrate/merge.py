"""Deterministic fleet-report merge.

The supervisor collects each member's final :class:`FuzzStats` and folds
them into one campaign report.  The merge is a pure function of the
member stats (sorted by member index) plus the retired-member list —
never of wall-clock completion order — so a fleet run that suffered
kills and restarts merges to the same report as an undisturbed run,
field for field on everything :meth:`FuzzStats.comparable` covers.

Merge rules:

* **Counters** sum (executions, images, faults, sync traffic, ...).
* **Coverage** takes exact set unions of the members' covered-slot sets
  (``pm_covered_slots`` / ``branch_covered_slots``), not sums of counts
  — members overlap, and the union is the fleet's true coverage.
* **Site witnesses** merge lowest-member-index-wins, so the winning
  witness never depends on who finished first.
* **Samples** collapse to one synthesized end-of-campaign sample (the
  per-member curves remain available in ``member_summaries``).
* **stop_reason** is ``"degraded"`` if any member was retired by the
  circuit breaker, else ``"signal"`` if any member was signal-stopped,
  else the members' common reason (or ``"mixed"``).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import FuzzerError
from repro.fuzz.stats import CoverageSample, FuzzStats
from repro.observe.metrics import merge_metric_snapshots

#: Counter fields that simply sum across members.
_SUMMED_FIELDS = (
    "executions", "invalid_image_runs", "segfault_runs",
    "crash_images_generated", "normal_images_generated",
    "images_deduplicated", "raw_image_bytes", "compressed_image_bytes",
    "harness_faults", "retries", "timeouts", "quarantined",
    "watchdog_kills", "worker_crashes", "worker_recycles", "triage_bundles",
    "sync_published", "sync_imported", "sync_import_rejected",
    "sync_barrier_timeouts", "corpus_quarantined",
    "corpusdb_published", "corpusdb_imported", "corpusdb_import_rejected",
    "corpusdb_warm_start", "corpusdb_quarantined", "corpusdb_degraded",
    "corpusdb_retries", "disk_full_faults",
)


def merge_fleet_stats(member_stats: Iterable[FuzzStats],
                      fleet_size: int,
                      retired: Iterable[int] = (),
                      restarts: int = 0,
                      scrub_quarantined: int = 0) -> FuzzStats:
    """Fold member reports into one deterministic campaign report."""
    members: List[FuzzStats] = sorted(member_stats,
                                      key=lambda s: s.member_index)
    if not members:
        raise FuzzerError("cannot merge an empty fleet")

    merged = FuzzStats(config_name=members[0].config_name,
                       workload_name=members[0].workload_name)
    merged.fleet_size = fleet_size
    merged.member_index = -1
    merged.isolation_backend = members[0].isolation_backend
    merged.isolation_fallback = members[0].isolation_fallback
    merged.members_retired = sorted(set(retired))
    merged.member_restarts = restarts

    for name in _SUMMED_FIELDS:
        setattr(merged, name,
                sum(getattr(m, name) for m in members))
    merged.corpus_quarantined += scrub_quarantined

    for m in members:
        merged.sites_hit |= set(m.sites_hit)
        merged.pm_covered_slots |= set(m.pm_covered_slots)
        merged.branch_covered_slots |= set(m.branch_covered_slots)
        # Lowest member index wins a contested site (members are sorted,
        # setdefault keeps the first claim).
        for site, witnesses in m.site_witness.items():
            merged.site_witness.setdefault(site, witnesses)

    reasons = sorted({m.stop_reason for m in members})
    if merged.members_retired:
        merged.stop_reason = "degraded"
    elif "signal" in reasons:
        merged.stop_reason = "signal"
    elif len(reasons) == 1:
        merged.stop_reason = reasons[0]
    else:
        merged.stop_reason = "mixed"

    final = [m.samples[-1] for m in members if m.samples]
    merged.record(CoverageSample(
        vtime=max((s.vtime for s in final), default=0.0),
        executions=merged.executions,
        pm_paths=len(merged.pm_covered_slots),
        branch_edges=len(merged.branch_covered_slots),
        queue_size=sum(s.queue_size for s in final),
        images=sum(s.images for s in final),
        harness_faults=merged.harness_faults,
    ))
    # Metrics fold member-by-member in index order (counters/gauges sum,
    # histograms sum element-wise) — deterministic because the member
    # list is sorted above, never by completion order.
    merged.metrics = merge_metric_snapshots([m.metrics for m in members])
    merged.metrics_host = merge_metric_snapshots(
        [m.metrics_host for m in members])
    merged.member_summaries = [
        {
            "member": m.member_index,
            "stop_reason": m.stop_reason,
            "executions": m.executions,
            "pm_paths": m.final_pm_paths,
            "branch_edges": m.final_branch_edges,
            "sync_published": m.sync_published,
            "sync_imported": m.sync_imported,
        }
        for m in members
    ]
    return merged
