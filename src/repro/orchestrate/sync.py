"""Shared-corpus synchronization (the AFL ``-M``/``-S`` sync analogue).

Fleet members fuzz independently and meet at *epoch barriers*: after
every ``sync_every`` virtual seconds a member (1) publishes the
coverage-interesting test cases it saved during the epoch to the shared
corpus directory, (2) waits until every non-retired peer has published
the same epoch, then (3) imports the peers' entries, gated by its *own*
coverage map — only an entry whose recorded coverage is novel to this
member enters its queue.

The barrier is what makes the fleet deterministic: the set of entries
visible at epoch *k* is exactly the fleet's publications from epochs
``<= k``, regardless of wall-clock interleaving, member kills, or
restarts.  Combined with each member's bit-identical checkpoint/resume,
a SIGKILLed-and-restarted member republishes byte-identical entries
(publication is idempotent — existing files are skipped), so the merged
fleet report is independent of who died when.

Durability uses the same two disciplines as checkpoints: every entry is
a checksummed container (magic + SHA-256 + payload) published via
write-tmp+fsync+rename, and damaged entries are *quarantined by rename*
(see :class:`~repro.core.storage.CorpusScrubber`), never re-served.
"""

from __future__ import annotations

import os
import pickle
import re
import time
from typing import Dict, List, Optional

from repro._util import atomic_write_bytes, pack_checksummed, \
    unpack_checksummed
from repro.core.storage import (CORPUS_ENTRY_MAGIC, CORPUS_ENTRY_SUFFIX,
                                CorpusScrubber)
from repro.errors import HarnessFaultError
from repro.pmem.image import PMImage

_ENTRY_RE = re.compile(r"^m(\d+)-e(\d+)-s(\d+)\.entry$")
_MARKER_RE = re.compile(r"^m(\d+)-e(\d+)\.done$")


class FleetPaths:
    """The on-disk layout one fleet campaign lives in."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.corpus = os.path.join(root, "corpus")
        self.quarantine = os.path.join(root, "quarantine")
        self.heartbeats = os.path.join(root, "heartbeats")
        self.members = os.path.join(root, "members")

    def make_dirs(self) -> None:
        for path in (self.corpus, self.quarantine, self.heartbeats,
                     self.members):
            os.makedirs(path, exist_ok=True)

    def member_dir(self, index: int) -> str:
        return os.path.join(self.members, str(index))

    def heartbeat(self, index: int) -> str:
        return os.path.join(self.heartbeats, f"member-{index}.json")

    def checkpoint(self, index: int) -> str:
        return os.path.join(self.member_dir(index), "campaign.ckpt")

    def stats_file(self, index: int) -> str:
        return os.path.join(self.member_dir(index), "stats.bin")

    def retired_marker(self, index: int) -> str:
        return os.path.join(self.member_dir(index), "retired")

    def entry_file(self, member: int, epoch: int, seq: int) -> str:
        return os.path.join(self.corpus,
                            f"m{member:02d}-e{epoch:04d}-s{seq:04d}"
                            f"{CORPUS_ENTRY_SUFFIX}")

    def epoch_marker(self, member: int, epoch: int) -> str:
        return os.path.join(self.corpus, f"m{member:02d}-e{epoch:04d}.done")


class CorpusSyncer:
    """One member's view of the shared corpus.

    Attach to a :class:`~repro.fuzz.engine.FuzzEngine` with
    :meth:`attach`; the engine then feeds every coverage-interesting
    save through :meth:`record_saved`, and the fleet member drives
    :meth:`end_epoch` at each slice boundary.  All progress state
    (next epoch, imported entries, pending publications) is
    checkpointable, so a restarted member resumes sync exactly where its
    engine resumes fuzzing.
    """

    def __init__(self, member: int, fleet: int, paths: FleetPaths,
                 barrier_timeout: float = 120.0, poll_interval: float = 0.02,
                 heartbeat=None) -> None:
        self.member = member
        self.fleet = fleet
        self.paths = paths
        self.barrier_timeout = barrier_timeout
        self.poll_interval = poll_interval
        self.heartbeat = heartbeat
        self.engine = None
        self.next_epoch = 0
        self._pending: List[dict] = []
        self._imported: set = set()  #: entry file names already consumed
        self._scrubber = CorpusScrubber(paths.corpus, paths.quarantine)

    # ------------------------------------------------------------------
    def attach(self, engine) -> "CorpusSyncer":
        """Bind to an engine (consuming any checkpoint-restored state)."""
        self.engine = engine
        engine.fleet_sync = self
        saved = getattr(engine, "_fleet_sync_state", None)
        if saved is not None:
            self.setstate(saved)
            engine._fleet_sync_state = None
        return self

    # ------------------------------------------------------------------
    # Engine-side hook
    # ------------------------------------------------------------------
    def record_saved(self, entry, result) -> None:
        """Queue one coverage-interesting save for the next publish.

        The input image bytes are resolved *now*, from the member's own
        in-memory store (no environment-fault sites, no RNG draws), so
        a later publish — or a replay after a kill — serializes exactly
        the same entry.
        """
        image_id = entry.image_id or self.engine._seed_image_id
        image_bytes = self.engine.storage.store.raw_serialized(image_id)
        self._pending.append({
            "data": bytes(entry.data),
            "image_id": image_id,
            "image": image_bytes,
            "branch": list(result.branch_sparse),
            "pm": list(result.pm_sparse),
        })

    # ------------------------------------------------------------------
    # Epoch boundary
    # ------------------------------------------------------------------
    def end_epoch(self, epoch: int, final: bool = False) -> None:
        """Publish this epoch, meet the barrier, import the peers'.

        On the final epoch the publish still happens (peers may be
        behind and owed the entries) but the barrier and import are
        skipped — there is no further fuzzing to feed.
        """
        published = len(self._pending)
        imported_before = self.engine.stats.sync_imported
        with self.engine.profiler.stage("sync"):
            self._publish(epoch)
            self._write_marker(epoch)
            self.next_epoch = epoch + 1
            if not final and self.fleet > 1 and self._barrier(epoch):
                self._import(epoch)
        self.engine.trace.emit(
            "sync_epoch", self.engine.vclock, epoch=epoch,
            published=published,
            imported=self.engine.stats.sync_imported - imported_before)
        # Cross-campaign corpus database, if attached: the epoch
        # boundary doubles as a forced DB sync round, so a fleet member
        # both publishes its epoch discoveries beyond the fleet and
        # pulls in what strangers found since the last barrier.
        if getattr(self.engine, "corpus_db", None) is not None:
            self.engine.corpus_db.maybe_sync(self.engine, force=True)

    def _publish(self, epoch: int) -> None:
        stats = self.engine.stats
        for seq, record in enumerate(self._pending):
            path = self.paths.entry_file(self.member, epoch, seq)
            if os.path.exists(path):
                continue  # idempotent republish after a kill+resume
            payload = dict(record, member=self.member, epoch=epoch, seq=seq)
            blob = pack_checksummed(CORPUS_ENTRY_MAGIC,
                                    pickle.dumps(payload, protocol=4))
            atomic_write_bytes(path, blob)
        stats.sync_published += len(self._pending)
        self._pending = []

    def _write_marker(self, epoch: int) -> None:
        atomic_write_bytes(self.paths.epoch_marker(self.member, epoch),
                           b"{}\n", fsync=False)

    def _barrier(self, epoch: int) -> bool:
        """Wait for every live peer's epoch marker; False on abandon.

        A peer is excused when its *retired* marker exists (the circuit
        breaker gave up on it — degraded-fleet semantics).  The wait is
        also abandoned on a stop request or after ``barrier_timeout``
        wall seconds (supervisor gone), so a member can always finish.
        """
        deadline = time.monotonic() + self.barrier_timeout
        for other in range(self.fleet):
            if other == self.member:
                continue
            marker = self.paths.epoch_marker(other, epoch)
            retired = self.paths.retired_marker(other)
            while not (os.path.exists(marker) or os.path.exists(retired)):
                if self.engine.stop_requested:
                    return False
                if time.monotonic() > deadline:
                    self.engine.stats.sync_barrier_timeouts += 1
                    return False
                if self.heartbeat is not None:
                    self.heartbeat.maybe_beat(self.next_epoch)
                time.sleep(self.poll_interval)
        return True

    def _import(self, upto_epoch: int) -> None:
        """Consume every not-yet-imported peer entry up to this epoch."""
        engine = self.engine
        stats = engine.stats
        try:
            names = sorted(os.listdir(self.paths.corpus))
        except OSError:
            return
        for name in names:
            match = _ENTRY_RE.match(name)
            if match is None:
                continue
            member, epoch = int(match.group(1)), int(match.group(2))
            if member == self.member or epoch > upto_epoch:
                continue
            if name in self._imported:
                continue
            self._imported.add(name)
            self._import_one(name, stats)

    def _import_one(self, name: str, stats) -> None:
        path = os.path.join(self.paths.corpus, name)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
            payload = pickle.loads(
                unpack_checksummed(CORPUS_ENTRY_MAGIC, data, what=name))
        except (OSError, ValueError, pickle.UnpicklingError, EOFError) as exc:
            # Self-healing import: a damaged entry is quarantined (claim
            # by rename), counted, and never retried — not fatal.
            if self._scrubber.quarantine(path, f"import failed: {exc}"):
                stats.corpus_quarantined += 1
            return
        engine = self.engine
        branch = payload.get("branch") or []
        pm = payload.get("pm") or []
        b_new_slot, b_new_bucket, _ = engine.branch_cov.classify(branch)
        p_new_slot, p_new_bucket, _ = engine.pm_cov.classify(pm)
        if not (b_new_slot or b_new_bucket or p_new_slot or p_new_bucket):
            stats.sync_import_rejected += 1
            return
        image_id = payload.get("image_id") or ""
        image_bytes = payload.get("image")
        if image_bytes:
            try:
                engine.storage.store.put(PMImage.from_bytes(image_bytes))
            except HarnessFaultError:
                # An injected storage fault on the import path costs the
                # campaign this one entry; the fault stream stays
                # deterministic because the draw happened.
                stats.sync_import_rejected += 1
                return
            except Exception as exc:
                if self._scrubber.quarantine(path, f"bad image: {exc}"):
                    stats.corpus_quarantined += 1
                self._imported.discard(name)
                return
        # Trust the publisher's recorded coverage (derandomization makes
        # it exact) instead of re-executing: merge it into this member's
        # maps and queue the test case for mutation.
        engine.branch_cov.update(branch)
        engine.pm_cov.update(pm)
        engine.queue.add(payload["data"], image_id=image_id, favored=1,
                         created_at=engine.vclock)
        stats.sync_imported += 1

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def getstate(self):
        return (self.next_epoch, set(self._imported),
                [dict(r) for r in self._pending])

    def setstate(self, state) -> None:
        next_epoch, imported, pending = state
        self.next_epoch = next_epoch
        self._imported = set(imported)
        self._pending = [dict(r) for r in pending]
