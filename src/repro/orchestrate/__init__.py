"""Parallel campaign orchestration: the self-healing fuzzer fleet.

One campaign, ``N`` fuzzer processes: each fleet member is a complete
engine with a deterministic per-member seed, synchronizing through a
crash-safe shared corpus at epoch barriers (:mod:`.sync`), publishing
heartbeat leases (:mod:`.heartbeat`) under a supervisor that restarts
the dead, SIGKILLs the wedged, retires the hopeless (:mod:`.supervisor`)
and merges whatever survives into one deterministic report
(:mod:`.merge`).
"""

from repro.orchestrate.heartbeat import (Heartbeat, HeartbeatWriter,
                                         read_heartbeat)
from repro.orchestrate.member import member_main, read_member_stats
from repro.orchestrate.merge import merge_fleet_stats
from repro.orchestrate.signals import GracefulStop, install_graceful_stop
from repro.orchestrate.supervisor import (FleetSpec, FleetSupervisor,
                                          run_fleet)
from repro.orchestrate.sync import CorpusSyncer, FleetPaths

__all__ = [
    "CorpusSyncer",
    "FleetPaths",
    "FleetSpec",
    "FleetSupervisor",
    "GracefulStop",
    "Heartbeat",
    "HeartbeatWriter",
    "install_graceful_stop",
    "member_main",
    "merge_fleet_stats",
    "read_heartbeat",
    "read_member_stats",
    "run_fleet",
]
