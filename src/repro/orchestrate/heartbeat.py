"""Heartbeat files with monotonic lease expiry.

Each fleet member periodically publishes a tiny JSON heartbeat file —
atomically, via write-tmp+rename, so the supervisor never reads a torn
record.  The record carries a *lease*: an expiry instant on the shared
``time.monotonic()`` clock (system-wide on Linux, immune to wall-clock
steps).  A member whose lease has expired is *stale* — wedged, dead, or
livelocked — and the supervisor is entitled to SIGKILL and restart it
from its last checkpoint.  The wall-clock timestamp rides along purely
for humans reading the file.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Optional

from repro._util import atomic_write_bytes


@dataclass(frozen=True)
class Heartbeat:
    """One decoded heartbeat record."""

    pid: int
    epoch: int  #: the sync epoch the member is currently working on
    expires_at: float  #: lease expiry on the monotonic clock
    lease_s: float
    wall_time: float  #: time.time() at write, for humans only

    def is_stale(self, now: Optional[float] = None) -> bool:
        return (time.monotonic() if now is None else now) > self.expires_at


class HeartbeatWriter:
    """Member-side: publish leases, throttled to a fraction of the lease.

    ``beat`` is called from the engine's per-round hook, so a member that
    stops making fuzzing rounds (a true wedge) stops renewing its lease
    — exactly the failure the supervisor's staleness check exists for.
    """

    def __init__(self, path: str, lease_s: float = 5.0) -> None:
        self.path = path
        self.lease_s = lease_s
        self._min_interval = lease_s / 4.0
        self._last_beat = float("-inf")
        self.beats = 0

    def beat(self, epoch: int) -> None:
        """Unconditionally renew the lease."""
        now = time.monotonic()
        record = {
            "pid": os.getpid(),
            "epoch": epoch,
            "expires_at": now + self.lease_s,
            "lease_s": self.lease_s,
            "wall_time": time.time(),
        }
        blob = json.dumps(record, sort_keys=True).encode("utf-8")
        # No fsync: a lost heartbeat costs one early restart, not data.
        atomic_write_bytes(self.path, blob, fsync=False)
        self._last_beat = now
        self.beats += 1

    def maybe_beat(self, epoch: int) -> bool:
        """Renew only if at least a quarter-lease has elapsed."""
        if time.monotonic() - self._last_beat < self._min_interval:
            return False
        self.beat(epoch)
        return True


def read_heartbeat(path: str) -> Optional[Heartbeat]:
    """Supervisor-side: decode one heartbeat; None if absent/unreadable.

    A missing or undecodable file is reported as None — the supervisor
    applies its own spawn-grace policy rather than crashing on a record
    that a dying member may never have finished publishing.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
        return Heartbeat(
            pid=int(record["pid"]),
            epoch=int(record["epoch"]),
            expires_at=float(record["expires_at"]),
            lease_s=float(record["lease_s"]),
            wall_time=float(record["wall_time"]),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None
