"""Two-stage graceful shutdown for campaigns and fleet members.

The first SIGINT/SIGTERM requests a *clean* stop: the fuzzing loop
finishes its in-flight execution, takes a final checkpoint, and reports
``stop_reason="signal"`` — nothing from the campaign tail is lost.  The
second signal hard-exits immediately (the operator has decided the
process is beyond saving), mirroring the Ctrl-C convention of every
long-running Unix tool.
"""

from __future__ import annotations

import os
import signal
import sys
from typing import Callable, Iterable, Optional


class GracefulStop:
    """First signal → ``on_first()``; second signal → hard exit.

    ``on_first`` must be safe to run inside a signal handler — the
    engine's :meth:`~repro.fuzz.engine.FuzzEngine.request_stop` (a flag
    write) qualifies.  Handlers are installed with :meth:`install` and
    can be restored with :meth:`uninstall` (tests, nested scopes).
    """

    def __init__(self, on_first: Callable[[], None],
                 signals: Iterable[int] = (signal.SIGINT, signal.SIGTERM),
                 label: str = "campaign") -> None:
        self.on_first = on_first
        self.signals = tuple(signals)
        self.label = label
        self.count = 0
        self._previous: dict = {}

    # ------------------------------------------------------------------
    def install(self) -> "GracefulStop":
        for signum in self.signals:
            self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def uninstall(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, TypeError):
                pass  # not the main thread, or handler not restorable
        self._previous.clear()

    # ------------------------------------------------------------------
    def _handle(self, signum: int, frame) -> None:
        self.count += 1
        if self.count == 1:
            print(f"[{self.label}] caught {signal.Signals(signum).name}: "
                  "stopping cleanly (final checkpoint + summary); "
                  "signal again to hard-exit", file=sys.stderr)
            self.on_first()
        else:
            self._hard_exit(signum)

    @staticmethod
    def _hard_exit(signum: int) -> None:
        # os._exit, not sys.exit: the second signal means "now", with no
        # finally-blocks, atexit hooks, or buffered-IO flushing in the way.
        os._exit(128 + signum)


def install_graceful_stop(engine, label: str = "campaign",
                          also: Optional[Callable[[], None]] = None
                          ) -> GracefulStop:
    """Wire two-stage shutdown to ``engine.request_stop`` (+ ``also``)."""
    def on_first() -> None:
        engine.request_stop()
        if also is not None:
            also()
    return GracefulStop(on_first, label=label).install()
