"""One fleet member: a full campaign engine driven in epoch slices.

A member is an ordinary :class:`~repro.fuzz.engine.FuzzEngine` (or
:class:`~repro.core.pmfuzz.PMFuzzEngine`) whose RNG seed is forked
deterministically from the campaign seed by member index — the AFL
``-S`` secondary analogue.  It fuzzes the *whole* virtual budget, cut
into epochs of ``sync_every`` virtual seconds; at each boundary it
checkpoints, publishes to the shared corpus, and imports from peers
(see :mod:`repro.orchestrate.sync`).

Because the checkpoint lands at every epoch boundary and covers the
sync progress too, the member is kill-safe at any instant: the
supervisor restarts it with ``resume=True`` and it replays the
interrupted epoch bit-for-bit — same mutations, same publications
(idempotent), same imports — before advancing.
"""

from __future__ import annotations

import math
import os
import pickle
import signal
import sys
import time
import traceback

from repro._util import atomic_write_bytes, pack_checksummed, \
    unpack_checksummed
from repro.core.config import config_by_name
from repro.core.storage import CorpusScrubber
from repro.fuzz.engine import FuzzEngine
from repro.fuzz.rng import DeterministicRandom
from repro.orchestrate.heartbeat import HeartbeatWriter
from repro.orchestrate.signals import GracefulStop
from repro.orchestrate.sync import CorpusSyncer, FleetPaths

#: Container magic for a member's published final-stats file.
MEMBER_STATS_MAGIC = b"PMFZSTAT1\n"

#: Exit status of the fail_plan chaos hook (tests the circuit breaker).
CHAOS_EXIT_STATUS = 3


def member_seed_rng(seed: int, workload: str, config_name: str,
                    index: int) -> DeterministicRandom:
    """Each member's RNG: one deterministic fork per member index."""
    return DeterministicRandom(seed).fork(
        f"{workload}/{config_name}/member{index}")


def write_member_stats(path: str, stats) -> None:
    """Atomically publish a member's final FuzzStats (checksummed)."""
    blob = pickle.dumps(stats, protocol=4)
    atomic_write_bytes(path, pack_checksummed(MEMBER_STATS_MAGIC, blob))


def read_member_stats(path: str):
    """Load a member's published stats; None if absent or damaged."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
        return pickle.loads(
            unpack_checksummed(MEMBER_STATS_MAGIC, data, what=path))
    except (OSError, ValueError, pickle.UnpicklingError, EOFError):
        return None


def _build_member_engine(spec, index: int, resume: bool,
                         ckpt: str) -> FuzzEngine:
    if resume and os.path.exists(ckpt):
        return FuzzEngine.resume(ckpt)
    from repro.core.pmfuzz import build_engine

    config = config_by_name(spec.config_name)
    rng = member_seed_rng(spec.seed, spec.workload, spec.config_name, index)
    kwargs = dict(spec.engine_kwargs)
    kwargs["checkpoint_path"] = ckpt
    return build_engine(spec.workload, config, rng=rng,
                        bugs=frozenset(spec.bugs),
                        fault_plan=spec.fault_plan, **kwargs)


def member_main(spec, index: int, resume: bool) -> int:
    """Run one member to completion; returns the process exit status.

    Called in the forked child by the supervisor (and directly by
    tests).  Never raises: an unexpected error is printed and turned
    into a nonzero status for the supervisor's circuit breaker.
    """
    try:
        return _member_main(spec, index, resume)
    except Exception:
        traceback.print_exc()
        return 1


def _member_main(spec, index: int, resume: bool) -> int:
    paths = FleetPaths(spec.fleet_dir)
    member_dir = paths.member_dir(index)
    os.makedirs(member_dir, exist_ok=True)
    ckpt = paths.checkpoint(index)
    heartbeat = HeartbeatWriter(paths.heartbeat(index),
                                lease_s=spec.heartbeat_lease)
    heartbeat.beat(0)

    # Every resume re-scrubs the shared corpus before trusting it: the
    # member may be restarting precisely because the machine (or a
    # peer) died mid-write.  Claim-by-rename makes concurrent scrubs
    # from several members safe.
    scrub_quarantined = 0
    if resume:
        report = CorpusScrubber(paths.corpus, paths.quarantine).scrub()
        scrub_quarantined = report.quarantined

    engine = _build_member_engine(spec, index, resume, ckpt)
    engine.stats.member_index = index
    engine.stats.fleet_size = spec.fleet
    engine.stats.corpus_quarantined += scrub_quarantined

    stop = GracefulStop(engine.request_stop, label=f"member {index}")
    stop.install()

    syncer = CorpusSyncer(
        index, spec.fleet, paths,
        barrier_timeout=spec.barrier_timeout,
        poll_interval=spec.poll_interval,
        heartbeat=heartbeat,
    ).attach(engine)
    engine.round_hook = lambda eng: heartbeat.maybe_beat(syncer.next_epoch)

    # Chaos hook (tests only): a wedge-planned member stops making
    # progress once — heartbeat lease expires, supervisor SIGKILLs it,
    # and the restart (marker present) proceeds normally.
    if index in (spec.wedge_plan or ()):
        marker = os.path.join(member_dir, "wedged.once")
        if not os.path.exists(marker):
            atomic_write_bytes(marker, b"", fsync=False)
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            while True:
                time.sleep(3600.0)

    budget = float(spec.budget)
    sync_every = min(float(spec.sync_every), budget) or budget
    epochs = max(1, int(math.ceil(budget / sync_every)))

    try:
        for epoch in range(syncer.next_epoch, epochs):
            heartbeat.beat(epoch)
            until = min(budget, (epoch + 1) * sync_every)
            engine.run_slice(until)
            if engine.stop_requested:
                break
            # Chaos hook (tests only): die *between* the fuzzing slice
            # and the epoch's publish, the widest recovery window.  It
            # fires on every (re)start, so the supervisor's circuit
            # breaker is what ends the loop — by retiring the member.
            if index in (spec.fail_plan or ()):
                sys.stderr.flush()
                return CHAOS_EXIT_STATUS
            syncer.end_epoch(epoch, final=(epoch == epochs - 1))
            engine.checkpoint()
        stats = engine.finish()
    finally:
        stop.uninstall()
    write_member_stats(paths.stats_file(index), stats)
    heartbeat.beat(epochs)
    return 0
