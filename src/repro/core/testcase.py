"""The test-case dependency tree (Section 4.6, Figure 12).

Every PM image is a node; every edge records the input commands and the
failure location (if any) that transformed the parent image into the
child.  The tree serves the three purposes the paper lists:

* **reproducibility** — any test case replays by executing its edge's
  commands on the parent image;
* **incremental generation** — fuzzing continues from any node's image
  instead of replaying from the root;
* **minimal back-end testing** — the testing tool only needs each edge
  once, not the whole root-to-leaf prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class TestCaseNode:
    """One PM image in the tree."""

    __test__ = False  # not a pytest test class despite the name

    image_id: str  #: content hash ("" for the empty root image)
    parent_id: Optional[str] = None
    #: Edge from the parent: the input commands executed there ...
    input_data: bytes = b""
    #: ... and the failure location (fence index), None for normal images.
    failure_point: Optional[int] = None
    children: List[str] = field(default_factory=list)

    @property
    def is_crash_image(self) -> bool:
        return self.failure_point is not None


class TestCaseTree:
    """The Figure-12 tree over all images of one campaign."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, root_image_id: str) -> None:
        self.root_id = root_image_id
        self._nodes: Dict[str, TestCaseNode] = {
            root_image_id: TestCaseNode(image_id=root_image_id)
        }

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._nodes

    def add(self, image_id: str, parent_id: str, input_data: bytes,
            failure_point: Optional[int] = None) -> TestCaseNode:
        """Record a new image produced from ``parent_id``.

        Duplicate image IDs are ignored (the image was deduplicated); the
        first derivation wins, keeping edges canonical.
        """
        if image_id in self._nodes:
            return self._nodes[image_id]
        if parent_id not in self._nodes:
            raise KeyError(f"unknown parent image {parent_id[:12]}...")
        node = TestCaseNode(
            image_id=image_id,
            parent_id=parent_id,
            input_data=input_data,
            failure_point=failure_point,
        )
        self._nodes[image_id] = node
        self._nodes[parent_id].children.append(image_id)
        return node

    def get(self, image_id: str) -> TestCaseNode:
        return self._nodes[image_id]

    def lineage(self, image_id: str) -> List[TestCaseNode]:
        """Root-to-node path: the full recipe to reproduce an image."""
        path: List[TestCaseNode] = []
        cursor: Optional[str] = image_id
        while cursor is not None:
            node = self._nodes[cursor]
            path.append(node)
            cursor = node.parent_id
        path.reverse()
        return path

    def replay_steps(self, image_id: str) -> List[Tuple[bytes, Optional[int]]]:
        """The (input, failure point) edges to replay from the root."""
        return [(n.input_data, n.failure_point)
                for n in self.lineage(image_id)[1:]]

    def minimal_edge(self, image_id: str) -> Tuple[str, bytes, Optional[int]]:
        """What a back-end tool needs to test this image: its parent and
        one edge (the paper's "execute Input 4 on top of image B")."""
        node = self._nodes[image_id]
        if node.parent_id is None:
            return image_id, b"", None
        return node.parent_id, node.input_data, node.failure_point

    def nodes(self) -> Iterator[TestCaseNode]:
        return iter(self._nodes.values())

    def depth_of(self, image_id: str) -> int:
        return len(self.lineage(image_id)) - 1

    def crash_image_count(self) -> int:
        return sum(1 for n in self._nodes.values() if n.is_crash_image)
