"""Crash-image generation (Section 3.2).

A failure can happen at any point, so the space of crash images is
unbounded.  PMFuzz cuts it down with the control-flow-dependency
observation: the recovery path depends on a few key variables whose
updates are bracketed by *ordering points* (persist barriers), so
failures are placed:

1. **at ordering points** — after each fence, the guaranteed-persistent
   state is exactly what a failure there would leave behind; and
2. **probabilistically at additional points**, at a configurable rate —
   here, at arbitrary *stores between* ordering points, so that even a
   program with misplaced ordering points still yields failure images.

Each crash image is produced by re-executing the input commands on the
parent image with a failure injected — interrupting the execution of
the program itself, so every crash image is a valid persistent state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.fuzz.executor import Executor
from repro.fuzz.rng import DeterministicRandom
from repro.pmem.image import PMImage
from repro.workloads.base import RunOutcome


@dataclass
class CrashImage:
    """One generated crash image with its provenance."""

    image: PMImage
    fence_index: int  #: ordering point, or -1 for store-point failures
    probabilistic: bool  #: True when from an extra (store-point) failure
    cost: float  #: virtual-time cost of the generating re-execution


class CrashImageGenerator:
    """Generates crash images for one test case by re-execution.

    Args:
        executor: the campaign executor (carries the cost model) — a raw
            :class:`Executor` or a
            :class:`~repro.resilience.supervisor.SupervisedExecutor`;
            with the latter, environment faults during re-execution are
            retried/absorbed and surface as non-CRASHED outcomes that
            are simply skipped.
        max_ordering_points: cap on sampled ordering points per test
            case (the paper bounds per-test-case work to ~150 ms).
        extra_rate: probability of adding one probabilistic store-point
            failure per sampled ordering point.
    """

    def __init__(self, executor: Executor, rng: DeterministicRandom,
                 max_ordering_points: int = 4,
                 extra_rate: float = 0.25) -> None:
        self.executor = executor
        self.rng = rng
        self.max_ordering_points = max_ordering_points
        self.extra_rate = extra_rate

    def select_fences(self, fence_count: int) -> List[int]:
        """Choose the ordering points for a run with ``fence_count`` fences."""
        if fence_count <= 0:
            return []
        stride = max(1, fence_count // self.max_ordering_points)
        sampled = list(range(stride - 1, fence_count, stride))
        return sampled[: self.max_ordering_points]

    def select_stores(self, store_count: int) -> List[int]:
        """Probabilistic extra failure points at arbitrary stores."""
        if store_count <= 0:
            return []
        extras: List[int] = []
        for _ in range(self.max_ordering_points):
            if self.rng.chance(self.extra_rate):
                extras.append(self.rng.randrange(store_count))
        return sorted(set(extras))

    def generate(self, image: PMImage, data: bytes, fence_count: int,
                 store_count: int = 0) -> List[CrashImage]:
        """Re-execute the test case once per selected failure point."""
        crash_images: List[CrashImage] = []
        for fence in self.select_fences(fence_count):
            result = self.executor.run(image, data, crash_at_fence=fence)
            if (result.outcome is RunOutcome.CRASHED
                    and result.crash_image is not None):
                crash_images.append(CrashImage(
                    image=result.crash_image, fence_index=fence,
                    probabilistic=False, cost=result.cost,
                ))
        for store in self.select_stores(store_count):
            result = self.executor.run(image, data, crash_at_store=store)
            if (result.outcome is RunOutcome.CRASHED
                    and result.crash_image is not None):
                crash_images.append(CrashImage(
                    image=result.crash_image, fence_index=-1,
                    probabilistic=True, cost=result.cost,
                ))
        return crash_images
