"""Crash-image generation (Section 3.2).

A failure can happen at any point, so the space of crash images is
unbounded.  PMFuzz cuts it down with the control-flow-dependency
observation: the recovery path depends on a few key variables whose
updates are bracketed by *ordering points* (persist barriers), so
failures are placed:

1. **at ordering points** — after each fence, the guaranteed-persistent
   state is exactly what a failure there would leave behind; and
2. **probabilistically at additional points**, at a configurable rate —
   here, at arbitrary *stores between* ordering points, so that even a
   program with misplaced ordering points still yields failure images.

The paper produces each crash image by re-executing the input commands
on the parent image with a failure injected.  That is O(K) full
executions per interesting test case (K = sampled ordering points plus
probabilistic extras), and it dominated campaign wall time here exactly
as image I/O dominated the paper's un-optimized runs.

Because re-executions are deterministic replays of the same (image,
commands) pair, all K crash images can instead be harvested from **one**
instrumented execution: a :class:`~repro.pmem.crash.SnapshotPlan` arms
copy-on-write media captures at every selected fence/store index, and
each capture materializes to the byte-identical image the dedicated
re-execution would have produced.  The *virtual-time* cost model is
still charged per harvested image exactly as if the re-execution had
happened — the captured ``fences_done`` at each point reconstructs the
fence count that re-execution would have reported — so Figure-13
curves, ``FuzzStats.comparable()`` and fleet merges are bit-identical
between the two modes.  The legacy path stays available as
``mode="reexec"`` (CLI ``--crashgen=reexec``) and is the oracle for the
equivalence test grid; it is also the graceful-degradation path when
the single pass itself dies to an environment fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.fuzz.executor import Executor
from repro.fuzz.rng import DeterministicRandom
from repro.pmem.crash import SnapshotPlan
from repro.pmem.image import PMImage
from repro.workloads.base import RunOutcome
from repro.workloads.mapcli import parse_commands

#: Valid values for CrashImageGenerator(mode=...).
CRASHGEN_MODES = ("singlepass", "reexec")


@dataclass
class CrashImage:
    """One generated crash image with its provenance."""

    image: PMImage
    fence_index: int  #: ordering point, or -1 for store-point failures
    probabilistic: bool  #: True when from an extra (store-point) failure
    cost: float  #: virtual-time cost of the (modeled) generating re-execution


class CrashImageGenerator:
    """Generates crash images for one test case.

    Args:
        executor: the campaign executor (carries the cost model) — a raw
            :class:`Executor` or a
            :class:`~repro.resilience.supervisor.SupervisedExecutor`;
            with the latter, environment faults during generation are
            retried/absorbed and surface as non-CRASHED outcomes that
            are simply skipped.
        max_ordering_points: cap on sampled ordering points per test
            case (the paper bounds per-test-case work to ~150 ms).
        extra_rate: probability of adding one probabilistic store-point
            failure per sampled ordering point.
        mode: ``"singlepass"`` (default) harvests every crash image from
            one snapshot-planned execution; ``"reexec"`` is the paper's
            literal one-re-execution-per-point strategy.  Both produce
            byte-identical images and charge identical virtual time.
    """

    def __init__(self, executor: Executor, rng: DeterministicRandom,
                 max_ordering_points: int = 4,
                 extra_rate: float = 0.25,
                 mode: str = "singlepass") -> None:
        if mode not in CRASHGEN_MODES:
            raise ValueError(
                f"unknown crashgen mode {mode!r}; expected one of "
                f"{CRASHGEN_MODES}")
        self.executor = executor
        self.rng = rng
        self.max_ordering_points = max_ordering_points
        self.extra_rate = extra_rate
        self.mode = mode

    def select_fences(self, fence_count: int) -> List[int]:
        """Choose the ordering points for a run with ``fence_count`` fences."""
        if fence_count <= 0:
            return []
        stride = max(1, fence_count // self.max_ordering_points)
        sampled = list(range(stride - 1, fence_count, stride))
        return sampled[: self.max_ordering_points]

    def select_stores(self, store_count: int) -> List[int]:
        """Probabilistic extra failure points at arbitrary stores."""
        if store_count <= 0:
            return []
        extras: List[int] = []
        for _ in range(self.max_ordering_points):
            if self.rng.chance(self.extra_rate):
                extras.append(self.rng.randrange(store_count))
        return sorted(set(extras))

    def generate(self, image: PMImage, data: bytes, fence_count: int,
                 store_count: int = 0) -> List[CrashImage]:
        """Produce the crash images for one (image, commands) test case.

        Point selection — including the RNG draws for probabilistic
        store points — happens identically before the mode branch, so
        the two modes consume the same deterministic RNG stream.
        """
        fences = self.select_fences(fence_count)
        stores = self.select_stores(store_count)
        if self.mode == "reexec":
            return self._generate_reexec(image, data, fences, stores)
        return self._generate_singlepass(image, data, fences, stores)

    # ------------------------------------------------------------------
    def _generate_reexec(self, image: PMImage, data: bytes,
                         fences: List[int],
                         stores: List[int]) -> List[CrashImage]:
        """Re-execute the test case once per selected failure point."""
        crash_images: List[CrashImage] = []
        for fence in fences:
            result = self.executor.run(image, data, crash_at_fence=fence)
            if (result.outcome is RunOutcome.CRASHED
                    and result.crash_image is not None):
                crash_images.append(CrashImage(
                    image=result.crash_image, fence_index=fence,
                    probabilistic=False, cost=result.cost,
                ))
        for store in stores:
            result = self.executor.run(image, data, crash_at_store=store)
            if (result.outcome is RunOutcome.CRASHED
                    and result.crash_image is not None):
                crash_images.append(CrashImage(
                    image=result.crash_image, fence_index=-1,
                    probabilistic=True, cost=result.cost,
                ))
        return crash_images

    def _generate_singlepass(self, image: PMImage, data: bytes,
                             fences: List[int],
                             stores: List[int]) -> List[CrashImage]:
        """Harvest every selected crash image from one execution.

        The single pass replays the test case with a snapshot plan; the
        domain captures a copy-on-write media snapshot the instant each
        planned fence/store completes — the very bytes a dedicated
        re-execution crashing there would have left on media.

        Virtual time is charged per harvested image as
        ``cost_model.execution(n_commands, fences_done_at_point,
        image_bytes)``: exactly the cost the dedicated re-execution
        would have reported (a crash at fence *f* counts ``f + 1``
        fences because the fence takes effect before the failure; a
        crash at a store counts the fences completed before it).  The
        real cost of the one extra execution is *not* charged — that is
        the speedup, and it keeps the virtual-time ledger identical to
        ``reexec`` mode.

        If the single pass itself dies to an environment fault that the
        supervisor could not absorb (``HARNESS_FAULT``), generation
        degrades gracefully to the legacy per-point re-execution loop,
        which goes back through the supervised retry path one point at
        a time.
        """
        if not fences and not stores:
            return []
        plan = SnapshotPlan(fences=tuple(fences), stores=tuple(stores))
        result = self.executor.run(image, data, snapshot_plan=plan)
        if result.outcome is RunOutcome.HARNESS_FAULT:
            return self._generate_reexec(image, data, fences, stores)
        cost_model = self.executor.cost_model
        raw = getattr(self.executor, "executor", self.executor)
        n_commands = len(parse_commands(data, max_commands=raw.max_commands))
        image_bytes = len(image)
        by_point = {(s.kind, s.index): s for s in result.snapshots}
        crash_images: List[CrashImage] = []
        for fence in fences:
            snap = by_point.get(("fence", fence))
            if snap is None:
                continue  # execution ended before this ordering point
            crash_images.append(CrashImage(
                image=PMImage(layout=image.layout,
                              payload=bytearray(snap.image),
                              uuid=image.uuid),
                fence_index=fence, probabilistic=False,
                cost=cost_model.execution(
                    n_commands=n_commands, n_fences=snap.fences_done,
                    image_bytes=image_bytes),
            ))
        for store in stores:
            snap = by_point.get(("store", store))
            if snap is None:
                continue
            crash_images.append(CrashImage(
                image=PMImage(layout=image.layout,
                              payload=bytearray(snap.image),
                              uuid=image.uuid),
                fence_index=-1, probabilistic=True,
                cost=cost_model.execution(
                    n_commands=n_commands, n_fences=snap.fences_done,
                    image_bytes=image_bytes),
            ))
        return crash_images
