"""PM-path prioritization: Algorithm 2 of the paper.

Examines the PM counter-map of one execution against the campaign's
global PM coverage and assigns the test case a ``Favored`` value:

* 2 (high) — some populated slot is *unseen* globally;
* 1 (medium) — a known slot was hit with a significantly different
  counter value (a different AFL bucket);
* 0 (low) — identical or minor differences only.

Test cases keep the maximum over their slots, exactly as the
``Max(Favored, TestCase.Favored)`` step in the pseudocode.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.fuzz.coverage import GlobalCoverage


def pm_path_priority(pm_cov: GlobalCoverage,
                     pm_sparse: Iterable[Tuple[int, int]]) -> int:
    """Return the Algorithm-2 Favored value for one execution.

    Args:
        pm_cov: the campaign's global PM counter-map coverage (not
            modified — update it separately after prioritization).
        pm_sparse: the execution's (slot, count) pairs.
    """
    new_slot, new_bucket, _ = pm_cov.classify(pm_sparse)
    if new_slot:
        return 2
    if new_bucket:
        return 1
    return 0
