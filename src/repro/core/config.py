"""The comparison points of Table 2.

Five configurations, each a combination of four features:

=====================  =========  ===============  ===========  =======
Configuration          Input Fuzz Img Fuzz         PM Path Opt  Sys Opt
=====================  =========  ===============  ===========  =======
PMFuzz (All Feat.)     yes        yes (indirect)   yes          yes
PMFuzz w/o SysOpt      yes        yes (indirect)   yes          no
AFL++                  yes        no               no           no
AFL++ w/ SysOpt        yes        no               no           yes
AFL++ w/ ImgFuzz       no         yes (direct)     no           no
=====================  =========  ===============  ===========  =======

All configurations use the derandomization techniques and the same seed
(a list of basic commands plus an empty PM image), matching Section 5.1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List


class ImgFuzzMode(enum.Enum):
    """How (and whether) PM images are fuzzed."""

    NONE = "none"  #: the seed image is the only image ever used
    INDIRECT = "indirect"  #: reuse program-generated images (PMFuzz)
    DIRECT = "direct"  #: mutate raw image bytes (AFL++ w/ ImgFuzz)


@dataclass(frozen=True)
class FuzzConfig:
    """One Table-2 comparison point."""

    name: str
    input_fuzz: bool
    img_fuzz: ImgFuzzMode
    pm_path_opt: bool
    sys_opt: bool

    @property
    def is_pmfuzz(self) -> bool:
        """True for the two PMFuzz variants."""
        return self.pm_path_opt

    def feature_row(self) -> str:
        """Render the Table 2 row for this configuration."""
        img = {"none": "No", "indirect": "Yes (Indirect)",
               "direct": "Yes (Direct)"}[self.img_fuzz.value]
        return (f"{self.name:20s} {'Yes' if self.input_fuzz else 'No':>10s} "
                f"{img:>15s} {'Yes' if self.pm_path_opt else 'No':>12s} "
                f"{'Yes' if self.sys_opt else 'No':>8s}")


PMFUZZ = FuzzConfig("PMFuzz (All Feat.)", True, ImgFuzzMode.INDIRECT, True, True)
PMFUZZ_NO_SYSOPT = FuzzConfig("PMFuzz w/o SysOpt", True, ImgFuzzMode.INDIRECT,
                              True, False)
AFLPP = FuzzConfig("AFL++", True, ImgFuzzMode.NONE, False, False)
AFLPP_SYSOPT = FuzzConfig("AFL++ w/ SysOpt", True, ImgFuzzMode.NONE, False, True)
AFLPP_IMGFUZZ = FuzzConfig("AFL++ w/ ImgFuzz", False, ImgFuzzMode.DIRECT,
                           False, False)

#: All five comparison points, in Table 2 order.
CONFIGS: List[FuzzConfig] = [
    PMFUZZ, PMFUZZ_NO_SYSOPT, AFLPP, AFLPP_SYSOPT, AFLPP_IMGFUZZ,
]

_BY_NAME: Dict[str, FuzzConfig] = {c.name: c for c in CONFIGS}
_BY_NAME.update({
    "pmfuzz": PMFUZZ,
    "pmfuzz_no_sysopt": PMFUZZ_NO_SYSOPT,
    "aflpp": AFLPP,
    "aflpp_sysopt": AFLPP_SYSOPT,
    "aflpp_imgfuzz": AFLPP_IMGFUZZ,
})


def config_by_name(name: str) -> FuzzConfig:
    """Look up a configuration by display or short name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown config {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def render_table2() -> str:
    """Render the full Table 2."""
    header = (f"{'Configuration':20s} {'Input Fuzz':>10s} {'Img Fuzz':>15s} "
              f"{'PM Path Opt':>12s} {'Sys Opt':>8s}")
    rows = [header, "-" * len(header)]
    rows.extend(config.feature_row() for config in CONFIGS)
    return "\n".join(rows)
