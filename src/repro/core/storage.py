"""Test-case storage management (Section 4.7, "Test Case Storage").

A 4-hour PMFuzz campaign produced ~1.5 TB of test cases, dominated by PM
images; the PM device alone cannot hold them.  PMFuzz exploits the
periodic shape of fuzzing — generated images are not needed until the
next iteration — to move test cases off the PM device to an SSD,
compressed with LZ77, and to decompress an image back only when it is
selected as an input.

:class:`TestCaseStorage` models that tiering on top of the image store:
it tracks where each image currently "lives" (PM staging vs compressed
SSD), enforces a PM staging budget, and accounts the bytes each tier
holds — the numbers the Section 4.7 ablation bench reports.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._util import move_durable, sha256_hex, unpack_checksummed
from repro._vfs import current_vfs
from repro.core.dedup import ImageStore
from repro.pmem.image import PMImage

#: Container magic for shared-corpus sync entries (see
#: :mod:`repro.orchestrate.sync`); defined here so the scrubber can
#: verify entries without importing the orchestration layer.
CORPUS_ENTRY_MAGIC = b"PMFZSYNC1\n"

#: Shared-corpus entry file suffix.
CORPUS_ENTRY_SUFFIX = ".entry"

# Typed damage labels for checksummed containers (see classify_damage).
DAMAGE_WRONG_MAGIC = "wrong-magic"      #: leading magic bytes differ
DAMAGE_TRUNCATED = "truncated"          #: file cut before the header ended
DAMAGE_CHECKSUM = "checksum-mismatch"   #: payload hash differs (torn write
#: past the header, or bit-rot; callers with payload-format knowledge —
#: e.g. the corpusdb scrubber's pickle probe — can refine this further)
DAMAGE_UNREADABLE = "unreadable"        #: the file could not be read at all


def classify_damage(magic: bytes, data: Optional[bytes]) -> Optional[str]:
    """Typed verdict for one checksummed container's bytes.

    Returns ``None`` for a healthy container, else one of the
    ``DAMAGE_*`` labels.  A checksum alone cannot distinguish a payload
    truncated by a torn write from a bit-flipped one (the digest covers
    the *original* payload, which a truncated file no longer holds), so
    both fall under :data:`DAMAGE_CHECKSUM` here; format-aware callers
    refine that label by probing the payload.
    """
    if data is None:
        return DAMAGE_UNREADABLE
    n = len(magic)
    if len(data) < n:
        return DAMAGE_TRUNCATED if magic.startswith(data) \
            else DAMAGE_WRONG_MAGIC
    if data[:n] != magic:
        return DAMAGE_WRONG_MAGIC
    if len(data) < n + 65:  # magic + 64 hex digits + newline
        return DAMAGE_TRUNCATED
    digest = data[n:n + 64]
    if data[n + 64:n + 65] != b"\n":
        return DAMAGE_CHECKSUM
    try:
        expected = digest.decode("ascii")
    except UnicodeDecodeError:
        return DAMAGE_CHECKSUM
    if sha256_hex(data[n + 65:]) != expected:
        return DAMAGE_CHECKSUM
    return None


class TestCaseStorage:
    """Two-tier (PM staging / compressed SSD) test-case storage.

    Args:
        store: the content-addressed image store (the SSD tier).
        pm_budget_bytes: capacity of the PM staging area; images beyond
            it are evicted (they remain on the SSD tier, compressed).
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, store: Optional[ImageStore] = None,
                 pm_budget_bytes: int = 8 * 1024 * 1024) -> None:
        self.store = store if store is not None else ImageStore(compress=True)
        self.pm_budget_bytes = pm_budget_bytes
        #: image_id -> materialized image, LRU order (PM staging tier).
        self._staging: "OrderedDict[str, PMImage]" = OrderedDict()
        self._staged_bytes = 0
        self.decompressions = 0
        self.evictions = 0
        #: loads that failed in the SSD tier (environment faults); the
        #: decompression/eviction accounting only ever reflects loads
        #: that *completed*, so a failed load leaves it untouched.
        self.load_faults = 0

    # ------------------------------------------------------------------
    def save(self, image: PMImage) -> tuple:
        """Persist a generated image (SSD tier); returns (id, is_new)."""
        return self.store.put(image)

    def load(self, image_id: str) -> PMImage:
        """Fetch an image for use as a fuzzing input.

        A staging hit is free; a miss decompresses from the SSD tier and
        stages the result (evicting LRU images past the PM budget).  A
        load that fails mid-way (an injected storage fault) mutates no
        tier state: the image is neither counted as decompressed nor
        staged, so the Section 4.7 accounting stays consistent.
        """
        staged = self._staging.get(image_id)
        if staged is not None:
            self._staging.move_to_end(image_id)
            return staged
        try:
            image = self.store.get(image_id)
        except Exception:
            self.load_faults += 1
            raise
        self.decompressions += 1
        self._stage(image_id, image)
        return image

    def _stage(self, image_id: str, image: PMImage) -> None:
        self._staging[image_id] = image
        self._staged_bytes += len(image)
        while self._staged_bytes > self.pm_budget_bytes and len(self._staging) > 1:
            victim_id, victim = self._staging.popitem(last=False)
            self._staged_bytes -= len(victim)
            self.evictions += 1

    # ------------------------------------------------------------------
    @property
    def staged_bytes(self) -> int:
        """Bytes currently occupying the PM staging tier."""
        return self._staged_bytes

    @property
    def ssd_bytes(self) -> int:
        """Bytes on the (compressed) SSD tier."""
        return self.store.stored_bytes

    @property
    def raw_bytes(self) -> int:
        """Bytes all images would occupy uncompressed."""
        return self.store.raw_bytes

    @property
    def corrupt_quarantined(self) -> int:
        """Genuinely-damaged images retired by the store (see
        :meth:`~repro.core.dedup.ImageStore.get`)."""
        return self.store.corrupt_quarantined

    def summary(self) -> str:
        """One-line storage report for the benches."""
        return (f"{len(self.store)} images: raw {self.raw_bytes / 1e6:.1f} MB, "
                f"ssd {self.ssd_bytes / 1e6:.1f} MB "
                f"(x{self.store.compression_ratio:.1f} compression), "
                f"pm staging {self.staged_bytes / 1e6:.1f} MB, "
                f"{self.evictions} evictions")


# ----------------------------------------------------------------------
# Corpus scrubbing (self-healing shared storage)
# ----------------------------------------------------------------------
@dataclass
class ScrubReport:
    """What one scrub pass found and did."""

    scanned: int = 0  #: entry files examined
    healthy: int = 0  #: entries that passed verification
    quarantined: int = 0  #: corrupt/truncated entries moved aside
    claimed_elsewhere: int = 0  #: bad entries another scrubber moved first
    cleaned_tmp: int = 0  #: orphaned atomic-write temp files removed
    reasons: Dict[str, str] = field(default_factory=dict)  #: name -> why


class CorpusScrubber:
    """Self-healing pass over a shared corpus directory.

    Walks every ``*.entry`` file, verifies its checksummed container
    (magic, header, SHA-256 over the full payload — which covers both
    truncation and bit-flips), and *quarantines* damaged files instead
    of letting them kill an importer: a bad entry is claimed by a
    durable move (:func:`~repro._util.move_durable`) into the
    quarantine directory (claim-by-rename — when several fleet members
    scrub concurrently, exactly one wins the claim and counts the
    entry; the losers observe ``ENOENT`` and move on).  Orphaned ``*.tmp`` files older than ``tmp_grace`` seconds
    (leftovers of a member killed mid-``atomic_write_bytes``; younger
    ones may be in-flight writes) are deleted.

    Runs at fleet start-up and on every member resume, so corruption
    introduced while the campaign was down is swept before any importer
    touches it.
    """

    def __init__(self, corpus_dir: str, quarantine_dir: str,
                 magic: bytes = CORPUS_ENTRY_MAGIC,
                 suffix: str = CORPUS_ENTRY_SUFFIX,
                 tmp_grace: float = 60.0) -> None:
        self.corpus_dir = corpus_dir
        self.quarantine_dir = quarantine_dir
        self.magic = magic
        self.suffix = suffix
        self.tmp_grace = tmp_grace

    # ------------------------------------------------------------------
    def verify_file(self, path: str) -> Optional[str]:
        """None if the entry is healthy, else the damage reason."""
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            return f"unreadable: {exc}"
        try:
            unpack_checksummed(self.magic, data,
                               what=os.path.basename(path))
        except ValueError as exc:
            return str(exc)
        return None

    def quarantine(self, path: str, reason: str) -> bool:
        """Claim a damaged entry by durable move; False if claimed elsewhere.

        The collision suffix counts up deterministically (``.dup1``,
        ``.dup2``, ...) so re-running a scrub over the same crash state
        produces byte-identical quarantine trees — the property the
        durability auditor's idempotence check verifies.
        """
        vfs = current_vfs()
        vfs.mkdir(self.quarantine_dir)
        target = os.path.join(self.quarantine_dir, os.path.basename(path))
        n = 0
        while os.path.exists(target):  # same name quarantined before
            n += 1
            target = os.path.join(self.quarantine_dir,
                                  os.path.basename(path) + f".dup{n}")
        try:
            move_durable(path, target)
        except FileNotFoundError:
            return False
        try:
            vfs.write_bytes(target + ".reason",
                            (reason + "\n").encode("utf-8"))
        except OSError:
            pass  # the quarantined entry itself is what matters
        return True

    def maybe_clean_tmp(self, path: str, now: Optional[float] = None) -> bool:
        """Remove an orphaned ``*.tmp`` file past its grace period.

        Returns True only when the file was actually removed.  A young
        temp file is assumed to be a live publisher's in-flight
        ``atomic_write_bytes`` (write finished, rename pending) and is
        left alone — that age gate is what lets a scrub pass race a
        live publisher without eating its work.
        """
        if now is None:
            now = time.time()
        try:
            if now - os.path.getmtime(path) > self.tmp_grace:
                current_vfs().unlink(path)
                return True
        except OSError:
            pass  # in-flight write or already gone
        return False

    def scrub(self) -> ScrubReport:
        """One full pass; never raises on damaged files."""
        report = ScrubReport()
        try:
            names = sorted(os.listdir(self.corpus_dir))
        except OSError:
            return report
        now = time.time()
        for name in names:
            path = os.path.join(self.corpus_dir, name)
            if name.endswith(".tmp"):
                if self.maybe_clean_tmp(path, now):
                    report.cleaned_tmp += 1
                continue
            if not name.endswith(self.suffix):
                continue
            report.scanned += 1
            reason = self.verify_file(path)
            if reason is None:
                report.healthy += 1
                continue
            report.reasons[name] = reason
            if self.quarantine(path, reason):
                report.quarantined += 1
            else:
                report.claimed_elsewhere += 1
        return report


# ----------------------------------------------------------------------
# Crash-triage bundles (the fork server's crashes/ directory analogue)
# ----------------------------------------------------------------------
_TRIAGE_INPUT = "input.bin"
_TRIAGE_IMAGE = "image.pmimg"
_TRIAGE_META = "meta.json"


@dataclass
class TriageBundle:
    """One on-disk reproduction kit for a worker death.

    Everything needed to replay the execution that killed (or hung) an
    isolation worker: the raw input bytes, the serialized input PM
    image, and a JSON metadata record (reason, decoded exit status,
    campaign provenance, execution kwargs).
    """

    path: str
    data: bytes
    image_bytes: bytes
    meta: dict


class TriageStore:
    """Directory of crash-triage bundles written by the fork backend.

    Each bundle is one subdirectory ``NNNN-<reason>/`` holding the test
    case (``input.bin``), its input image (``image.pmimg``), and
    ``meta.json``.  Bundles are append-only and self-describing, so
    ``python -m repro triage --replay <bundle>`` can rebuild the
    workload and re-execute the kill without the original checkpoint.
    """

    def __init__(self, root: str) -> None:
        self.root = root

    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        best = -1
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            head = name.split("-", 1)[0]
            if head.isdigit():
                best = max(best, int(head))
        return best + 1

    def write_bundle(self, reason: str, data: bytes, image_bytes: bytes,
                     meta: Optional[dict] = None) -> str:
        """Persist one bundle; returns its directory path."""
        os.makedirs(self.root, exist_ok=True)
        slug = "".join(c if c.isalnum() else "-" for c in reason) or "unknown"
        path = os.path.join(self.root, f"{self._next_seq():04d}-{slug}")
        os.makedirs(path, exist_ok=True)
        record = dict(meta or {})
        record.setdefault("reason", reason)
        record.setdefault("written_at", time.time())
        with open(os.path.join(path, _TRIAGE_INPUT), "wb") as fh:
            fh.write(bytes(data))
        with open(os.path.join(path, _TRIAGE_IMAGE), "wb") as fh:
            fh.write(bytes(image_bytes))
        with open(os.path.join(path, _TRIAGE_META), "w",
                  encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        return path

    def list_bundles(self) -> List[str]:
        """Bundle directories, oldest first."""
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        return [os.path.join(self.root, n) for n in names
                if os.path.isfile(os.path.join(self.root, n, _TRIAGE_META))]

    @staticmethod
    def load_bundle(path: str) -> TriageBundle:
        """Read one bundle back for replay."""
        with open(os.path.join(path, _TRIAGE_META), encoding="utf-8") as fh:
            meta = json.load(fh)
        with open(os.path.join(path, _TRIAGE_INPUT), "rb") as fh:
            data = fh.read()
        with open(os.path.join(path, _TRIAGE_IMAGE), "rb") as fh:
            image_bytes = fh.read()
        return TriageBundle(path=path, data=data, image_bytes=image_bytes,
                            meta=meta)
