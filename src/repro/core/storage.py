"""Test-case storage management (Section 4.7, "Test Case Storage").

A 4-hour PMFuzz campaign produced ~1.5 TB of test cases, dominated by PM
images; the PM device alone cannot hold them.  PMFuzz exploits the
periodic shape of fuzzing — generated images are not needed until the
next iteration — to move test cases off the PM device to an SSD,
compressed with LZ77, and to decompress an image back only when it is
selected as an input.

:class:`TestCaseStorage` models that tiering on top of the image store:
it tracks where each image currently "lives" (PM staging vs compressed
SSD), enforces a PM staging budget, and accounts the bytes each tier
holds — the numbers the Section 4.7 ablation bench reports.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.dedup import ImageStore
from repro.pmem.image import PMImage


class TestCaseStorage:
    """Two-tier (PM staging / compressed SSD) test-case storage.

    Args:
        store: the content-addressed image store (the SSD tier).
        pm_budget_bytes: capacity of the PM staging area; images beyond
            it are evicted (they remain on the SSD tier, compressed).
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, store: Optional[ImageStore] = None,
                 pm_budget_bytes: int = 8 * 1024 * 1024) -> None:
        self.store = store if store is not None else ImageStore(compress=True)
        self.pm_budget_bytes = pm_budget_bytes
        #: image_id -> materialized image, LRU order (PM staging tier).
        self._staging: "OrderedDict[str, PMImage]" = OrderedDict()
        self._staged_bytes = 0
        self.decompressions = 0
        self.evictions = 0
        #: loads that failed in the SSD tier (environment faults); the
        #: decompression/eviction accounting only ever reflects loads
        #: that *completed*, so a failed load leaves it untouched.
        self.load_faults = 0

    # ------------------------------------------------------------------
    def save(self, image: PMImage) -> tuple:
        """Persist a generated image (SSD tier); returns (id, is_new)."""
        return self.store.put(image)

    def load(self, image_id: str) -> PMImage:
        """Fetch an image for use as a fuzzing input.

        A staging hit is free; a miss decompresses from the SSD tier and
        stages the result (evicting LRU images past the PM budget).  A
        load that fails mid-way (an injected storage fault) mutates no
        tier state: the image is neither counted as decompressed nor
        staged, so the Section 4.7 accounting stays consistent.
        """
        staged = self._staging.get(image_id)
        if staged is not None:
            self._staging.move_to_end(image_id)
            return staged
        try:
            image = self.store.get(image_id)
        except Exception:
            self.load_faults += 1
            raise
        self.decompressions += 1
        self._stage(image_id, image)
        return image

    def _stage(self, image_id: str, image: PMImage) -> None:
        self._staging[image_id] = image
        self._staged_bytes += len(image)
        while self._staged_bytes > self.pm_budget_bytes and len(self._staging) > 1:
            victim_id, victim = self._staging.popitem(last=False)
            self._staged_bytes -= len(victim)
            self.evictions += 1

    # ------------------------------------------------------------------
    @property
    def staged_bytes(self) -> int:
        """Bytes currently occupying the PM staging tier."""
        return self._staged_bytes

    @property
    def ssd_bytes(self) -> int:
        """Bytes on the (compressed) SSD tier."""
        return self.store.stored_bytes

    @property
    def raw_bytes(self) -> int:
        """Bytes all images would occupy uncompressed."""
        return self.store.raw_bytes

    def summary(self) -> str:
        """One-line storage report for the benches."""
        return (f"{len(self.store)} images: raw {self.raw_bytes / 1e6:.1f} MB, "
                f"ssd {self.ssd_bytes / 1e6:.1f} MB "
                f"(x{self.store.compression_ratio:.1f} compression), "
                f"pm staging {self.staged_bytes / 1e6:.1f} MB, "
                f"{self.evictions} evictions")
