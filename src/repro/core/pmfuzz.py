"""The PMFuzz engine: PM-path feedback + image generation (Figure 11).

:class:`PMFuzzEngine` extends the AFL++-style loop with the paper's
three ideas:

1. **PM-path prioritization** (Algorithm 2) — the ``priority_for`` hook
   assigns Favored 2/1/0 from the PM counter-map, so test cases that
   explore new PM paths drive future mutation.
2. **Normal image generation via program logic** (Section 3.1) — a test
   case that covered a new PM path contributes its *output* image back
   into the queue; future inputs execute on top of it, so the image is
   mutated indirectly, one valid state to the next.
3. **Crash image generation** (Section 3.2) — the same test case is
   re-executed with failures at its ordering points (plus probabilistic
   extras); the resulting crash images enter the queue too, so the
   *recovery* paths get fuzzed.

All generated images are SHA-256-deduplicated and recorded in the
Figure-12 test-case tree.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence

from repro.core.config import CONFIGS, FuzzConfig, ImgFuzzMode, config_by_name
from repro.core.crashgen import CrashImageGenerator
from repro.core.priority import pm_path_priority
from repro.errors import HarnessFaultError
from repro.fuzz.engine import DEFAULT_SEED_INPUTS, FuzzEngine
from repro.fuzz.executor import ExecResult
from repro.fuzz.queue import QueueEntry
from repro.fuzz.rng import DeterministicRandom
from repro.fuzz.stats import FuzzStats
from repro.resilience.faults import EnvFaultInjector, as_fault_plan
from repro.workloads.registry import get_workload


class PMFuzzEngine(FuzzEngine):
    """The full PMFuzz fuzzing procedure (Figure 11)."""

    def __init__(self, *args, max_ordering_points: int = 4,
                 crash_extra_rate: float = 0.25,
                 crashgen: str = "singlepass", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Crash generation runs through the supervisor too, so an
        # environment fault during it is retried or absorbed instead of
        # killing the campaign.  ``crashgen`` selects single-pass
        # snapshot harvesting (default) or the paper's literal per-point
        # re-execution ("reexec"); both charge identical virtual time.
        self.crashgen = CrashImageGenerator(
            self.supervisor, self.rng,
            max_ordering_points=max_ordering_points,
            extra_rate=crash_extra_rate,
            mode=crashgen,
        )

    # ------------------------------------------------------------------
    def priority_for(self, result: ExecResult) -> int:
        """Algorithm 2: unseen slot → 2, different counter → 1, else 0."""
        if not self.config.pm_path_opt:
            return 0
        return pm_path_priority(self.pm_cov, result.pm_sparse)

    def on_new_pm_path(self, parent: QueueEntry, data: bytes,
                       result: ExecResult, pm_novel: bool = True) -> None:
        """Steps ➌-➎ of Figure 11: generate and enqueue PM images."""
        if self.config.img_fuzz is not ImgFuzzMode.INDIRECT:
            return
        assert self.tree is not None
        parent_image_id = parent.image_id or self._seed_image_id
        # (1) The normal image: the run's output state, valid by
        # construction because the program logic produced it.  A
        # permanent storage fault forfeits this one contribution only.
        if result.outcome.value == "ok" and result.final_image is not None:
            saved = self._save_image(result.final_image)
            if saved is not None and saved[1]:
                image_id = saved[0]
                self.stats.normal_images_generated += 1
                self.tree.add(image_id, parent_image_id, data, None)
                # Pair the new image with the input that produced it:
                # mutating that input on top of its own output compounds
                # the state (more distinct keys each generation), which
                # is how deep thresholds like the hashmap rebuild are
                # eventually crossed.
                self.queue.add(
                    data,
                    image_id=image_id,
                    favored=2 if pm_novel else 1,
                    parent=parent.entry_id,
                    created_at=self.vclock,
                )
            elif saved is not None:
                self.stats.images_deduplicated += 1
        if not pm_novel:
            return
        # (2) Crash images: interrupt the same execution at its ordering
        # points; every (modeled) re-execution is charged to the virtual
        # clock and attributed to the "crashgen" profiling stage.
        # Reserved for PM-novel test cases (the expensive step).
        with self.profiler.stage("crashgen"):
            try:
                parent_image, fault_cost = self.supervisor.load_image(
                    self.storage, parent_image_id)
            except HarnessFaultError as exc:
                self.vclock += exc.vcost  # crash gen skipped this round
                self.profiler.add_vtime("crashgen", exc.vcost)
                return
            self.vclock += fault_cost
            self.profiler.add_vtime("crashgen", fault_cost)
            for crash in self.crashgen.generate(
                    parent_image, data,
                    result.fence_count, result.store_count):
                self.vclock += crash.cost
                self.profiler.add_vtime("crashgen", crash.cost)
                saved = self._save_image(crash.image)
                if saved is None:
                    continue
                image_id, is_new = saved
                if not is_new:
                    self.stats.images_deduplicated += 1
                    continue
                self.stats.crash_images_generated += 1
                self.tree.add(image_id, parent_image_id, data,
                              crash.fence_index)
                self.queue.add(
                    self.seed_inputs[0],
                    image_id=image_id,
                    favored=2,
                    parent=parent.entry_id,
                    from_crash_image=True,
                    created_at=self.vclock,
                )

    def on_result(self, parent: QueueEntry, data: bytes,
                  result: ExecResult) -> None:
        """Probabilistic image chaining for non-novel executions.

        The real fuzzer reuses output images across iterations regardless
        of coverage novelty (the mutation of the persistent state *is*
        the point of indirect image fuzzing); a quarter of the non-saved
        runs contribute their output image here, which is what lets the
        accumulated state cross deep thresholds (the hashmap rebuild,
        slab exhaustion, multi-level tree splits) after path-coverage
        novelty has dried up.
        """
        if self.config.img_fuzz is not ImgFuzzMode.INDIRECT:
            return
        if result.outcome.value != "ok" or result.final_image is None:
            return
        if not self.rng.chance(0.25):
            return
        assert self.tree is not None
        parent_image_id = parent.image_id or self._seed_image_id
        saved = self._save_image(result.final_image)
        if saved is None:
            return
        image_id, is_new = saved
        if not is_new:
            self.stats.images_deduplicated += 1
            return
        self.stats.normal_images_generated += 1
        self.tree.add(image_id, parent_image_id, data, None)
        self.queue.add(data, image_id=image_id, favored=1,
                       parent=parent.entry_id, created_at=self.vclock)


def build_engine(
    workload_name: str,
    config: FuzzConfig,
    rng: Optional[DeterministicRandom] = None,
    bugs: FrozenSet[str] = frozenset(),
    seed_inputs: Sequence[bytes] = DEFAULT_SEED_INPUTS,
    injector=None,
    fault_plan=None,
    **engine_kwargs,
) -> FuzzEngine:
    """Construct the right engine class for a Table-2 configuration.

    ``fault_plan`` (a :class:`~repro.resilience.faults.FaultPlan` or a
    ``site:rate[:burst]`` spec string) arms environment-fault injection
    across the harness.  The engine's ``campaign_meta`` records
    everything needed to rebuild it, which is what makes checkpoints
    self-describing (see :mod:`repro.resilience.checkpoint`).
    """
    rng = rng or DeterministicRandom().fork(f"{workload_name}/{config.name}")
    plan = as_fault_plan(fault_plan)
    env_faults = engine_kwargs.pop("env_faults", None)
    if plan is not None and env_faults is None:
        env_faults = EnvFaultInjector(plan)
    factory = lambda: get_workload(workload_name, bugs=bugs)  # noqa: E731
    cls = PMFuzzEngine if config.is_pmfuzz else FuzzEngine
    meta_kwargs = dict(engine_kwargs)
    if cls is FuzzEngine:
        # Crash-generation knobs only exist on the PMFuzz engine; a
        # non-PMFuzz configuration simply has no crash generation to
        # shape, so they are accepted-and-inert rather than a TypeError
        # (the CLI passes one flag set for every Table-2 config).
        for key in ("max_ordering_points", "crash_extra_rate", "crashgen"):
            engine_kwargs.pop(key, None)
    engine = cls(factory, config, rng=rng, seed_inputs=seed_inputs,
                 injector=injector, env_faults=env_faults, **engine_kwargs)
    engine.campaign_meta = {
        "workload": workload_name,
        "config": config.name,
        "bugs": sorted(bugs),
        "seed_inputs": [bytes(s) for s in seed_inputs],
        "fault_plan": env_faults.plan if env_faults is not None else None,
        "engine_kwargs": meta_kwargs,
    }
    return engine


def run_campaign(
    workload_name: str,
    config_name: str,
    budget_vseconds: float,
    bugs: FrozenSet[str] = frozenset(),
    seed: int = 0x504D465A,
    injector=None,
    fault_plan=None,
    resume_from: Optional[str] = None,
    engine_hook=None,
    **engine_kwargs,
) -> FuzzStats:
    """Run one complete campaign and return its statistics.

    This is the single entry point the benchmarks (and the quickstart
    example) use: workload × Table-2 configuration × virtual budget.

    With ``resume_from`` set, the campaign is restored from that
    checkpoint instead of starting fresh (the other campaign-shaping
    arguments are taken from the checkpoint) and fuzzes until the total
    ``budget_vseconds`` is exhausted.

    ``engine_hook(engine)`` runs after construction and before the
    campaign starts, on both the fresh and resume paths — the CLI uses
    it to wire graceful SIGINT/SIGTERM handling to the live engine.
    """
    if resume_from is not None:
        engine = FuzzEngine.resume(resume_from, injector=injector)
        if engine_hook is not None:
            engine_hook(engine)
        return engine.run(budget_vseconds)
    config = config_by_name(config_name)
    rng = DeterministicRandom(seed).fork(f"{workload_name}/{config.name}")
    engine = build_engine(workload_name, config, rng=rng, bugs=bugs,
                          injector=injector, fault_plan=fault_plan,
                          **engine_kwargs)
    if engine_hook is not None:
        engine_hook(engine)
    return engine.run(budget_vseconds)


def run_all_configs(workload_name: str, budget_vseconds: float,
                    seed: int = 0x504D465A):
    """Run all five Table-2 configurations on one workload."""
    return {
        config.name: run_campaign(workload_name, config.name,
                                  budget_vseconds, seed=seed)
        for config in CONFIGS
    }
