"""End-to-end pipeline: fuzz, then hand test cases to the testing tools.

This is the whole of Figure 9: annotate → fuzz → feed generated test
cases to the detection back-ends → bug report.  Two evaluation flows
build on it:

* **Real-bug detection** (Section 5.4 / Section 5.4.1): run a campaign
  against a buggy workload variant, replay the saved test cases through
  the :class:`~repro.detect.report.TestingTool`, and record — per paper
  bug — whether it was detected and the virtual time of the first test
  case that detects it.
* **Synthetic-bug detection** (Table 3): run a campaign against the
  fixed workload, intersect the covered PM-operation sites with each
  configuration's synthetic bug sites, and *confirm* every covered bug
  by replaying its witness test case with the injection active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.core.pmfuzz import build_engine
from repro.core.config import FuzzConfig, config_by_name
from repro.detect.pmemcheck import ViolationKind
from repro.detect.report import BugReport, TestingTool
from repro.fuzz.rng import DeterministicRandom
from repro.fuzz.stats import FuzzStats
from repro.workloads.base import RunOutcome
from repro.workloads.mapcli import parse_commands
from repro.workloads.realbugs import RealBug, real_bugs_for
from repro.workloads.registry import get_workload
from repro.workloads.synthetic import BugInjector, SyntheticBug

#: Designated detection signatures for the performance bugs: the
#: (violation kind, site) pair that identifies each paper bug.
PERF_BUG_SIGNATURES: Dict[int, tuple] = {
    7: (ViolationKind.REDUNDANT_FLUSH, "memcached:pslab:persist_all"),
    8: (ViolationKind.REDUNDANT_LOG, "hashmap_tx:create:txadd_again"),
    9: (ViolationKind.REDUNDANT_LOG, "rbtree:insert:txset_fresh"),
    10: (ViolationKind.REDUNDANT_LOG, "rbtree:create:log_first"),
    11: (ViolationKind.REDUNDANT_LOG, "rbtree:fixup:txset_parent"),
    12: (ViolationKind.REDUNDANT_LOG, "btree:insert_item:txadd"),
}


def report_detects_real_bug(report: BugReport, bug: RealBug) -> bool:
    """Decide whether one test case's battery output exposes ``bug``."""
    if bug.number in PERF_BUG_SIGNATURES:
        kind, site = PERF_BUG_SIGNATURES[bug.number]
        return any(v.kind is kind and v.site == site
                   for v in report.trace_violations)
    if bug.number <= 5:
        # Init-not-retried: the post-failure run dereferences NULL.
        if report.outcome is RunOutcome.SEGFAULT:
            return True
        return any(f.outcome is RunOutcome.SEGFAULT
                   for f in report.crash_findings)
    if bug.number == 6:
        # Recovery never called: the oracle sees the broken count/window.
        needles = ("count", "dirty")
        for finding in report.crash_findings:
            if any(n in v for v in finding.violations for n in needles):
                return True
        return any(any(n in v for n in needles)
                   for v in report.oracle_violations)
    raise ValueError(f"unknown real bug number {bug.number}")


@dataclass
class RealBugResult:
    """Detection outcome for one paper bug under one campaign."""

    bug: RealBug
    detected: bool = False
    first_detection_vtime: Optional[float] = None
    detecting_entry: Optional[int] = None


@dataclass
class PipelineResult:
    """Everything one fuzz-and-detect run produced."""

    stats: FuzzStats
    real_bugs: List[RealBugResult] = field(default_factory=list)
    test_cases_checked: int = 0

    def result_for(self, number: int) -> RealBugResult:
        for result in self.real_bugs:
            if result.bug.number == number:
                return result
        raise KeyError(f"bug {number} not part of this pipeline run")


class FuzzAndDetectPipeline:
    """Fuzz a (possibly buggy) workload, then run the detection battery.

    Args:
        workload_name: one of the eight evaluated programs.
        config_name: a Table-2 configuration name.
        bugs: real-bug flags compiled into the workload.
        max_checked: cap on replayed test cases (favored first), keeping
            the back-end testing cost bounded — the same reason the
            paper's test-case tree lets the tools skip redundant cases.
    """

    def __init__(
        self,
        workload_name: str,
        config_name: str = "pmfuzz",
        bugs: FrozenSet[str] = frozenset(),
        seed: int = 0x504D465A,
        max_checked: int = 64,
        **engine_kwargs,
    ) -> None:
        self.workload_name = workload_name
        self.config: FuzzConfig = config_by_name(config_name)
        self.bugs = frozenset(bugs)
        self.seed = seed
        self.max_checked = max_checked
        self.engine_kwargs = engine_kwargs

    # ------------------------------------------------------------------
    def run(self, budget_vseconds: float) -> PipelineResult:
        """Fuzz for the budget, then check saved test cases in order."""
        rng = DeterministicRandom(self.seed).fork(
            f"pipeline/{self.workload_name}/{self.config.name}"
        )
        engine = build_engine(self.workload_name, self.config, rng=rng,
                              bugs=self.bugs, **self.engine_kwargs)
        # Pipeline stages land on the campaign's own trace stream, so a
        # report over the trace directory shows where the fuzz stage
        # ended and the detection stage began.
        engine.trace.emit("stage_enter", engine.vclock, stage="fuzz")
        stats = engine.run(budget_vseconds)
        engine.trace.emit("stage_exit", engine.vclock, stage="fuzz",
                          executions=stats.executions)
        result = PipelineResult(stats=stats)
        targets = real_bugs_for(self.workload_name)
        target_results = {b.number: RealBugResult(bug=b) for b in targets
                          if b.flag in self.bugs}
        engine.trace.emit("stage_enter", engine.vclock, stage="detect",
                          targets=len(target_results))
        try:
            if not target_results:
                return result
            tool = TestingTool(
                lambda: get_workload(self.workload_name, bugs=self.bugs)
            )
            # Favored (PM-path) entries first, then creation order — the
            # testing tool receives the high-value test cases first.
            entries = sorted(engine.queue.entries,
                             key=lambda e: (-e.favored, e.created_at))
            for entry in entries[: self.max_checked]:
                if all(r.detected for r in target_results.values()):
                    break
                image = engine.storage.load(entry.image_id or
                                            engine._seed_image_id)
                report = tool.test(image, parse_commands(entry.data))
                result.test_cases_checked += 1
                for bug_result in target_results.values():
                    if bug_result.detected:
                        continue
                    if report_detects_real_bug(report, bug_result.bug):
                        bug_result.detected = True
                        bug_result.first_detection_vtime = entry.created_at
                        bug_result.detecting_entry = entry.entry_id
            result.real_bugs = list(target_results.values())
            return result
        finally:
            engine.trace.emit("stage_exit", engine.vclock, stage="detect",
                              checked=result.test_cases_checked)
            engine.trace.close()


# ----------------------------------------------------------------------
# Synthetic-bug evaluation (Table 3)
# ----------------------------------------------------------------------
@dataclass
class SyntheticDetection:
    """Outcome for one synthetic bug under one campaign."""

    bug: SyntheticBug
    site_covered: bool
    confirmed: bool


def confirm_synthetic_bug(
    workload_name: str,
    bug: SyntheticBug,
    witness_image,
    witness_data: bytes,
) -> bool:
    """Replay a witness test case with the injection active.

    The bug counts as detected when the injected run's crash-consistency
    findings strictly exceed the clean run's (the back-end tool reports
    something new), or when the injection visibly changes the program's
    output — corrupted values surface as wrong query results, the
    differential signal a test harness observes.
    """
    from repro.workloads.base import Command

    clean_tool = TestingTool(lambda: get_workload(workload_name))
    injector = BugInjector([bug])
    buggy_tool = TestingTool(lambda: get_workload(workload_name),
                             injector=injector)
    # Append read-back probes: persistent-value corruption surfaces as
    # wrong scan/count output even when no structural invariant breaks.
    commands = parse_commands(witness_data) + [
        Command("q"), Command("n"), Command("m"),
    ]
    clean = clean_tool.test(witness_image, commands)
    buggy = buggy_tool.test(witness_image, commands)
    if bug.bug_id not in injector.triggered:
        return False
    clean_cc = set(clean.crash_consistency_findings)
    buggy_cc = set(buggy.crash_consistency_findings)
    return bool(buggy_cc - clean_cc) or buggy.outputs != clean.outputs


def evaluate_synthetic_bugs(
    workload_name: str,
    stats: FuzzStats,
    storage,
    confirm: bool = True,
) -> List[SyntheticDetection]:
    """Score every Table-3 synthetic bug against a finished campaign.

    A bug is *covered* when some generated test case reached its site;
    when ``confirm`` is set, each covered bug is additionally replayed
    (via the site's witness test case) with the injection active.
    """
    workload = get_workload(workload_name)
    detections: List[SyntheticDetection] = []
    for bug in workload.synthetic_bugs():
        covered = bug.site in stats.sites_hit
        confirmed = False
        if covered and confirm:
            for image_id, data, _ in stats.site_witness[bug.site]:
                witness_image = storage.load(image_id)
                if confirm_synthetic_bug(workload_name, bug,
                                         witness_image, data):
                    confirmed = True
                    break
        detections.append(SyntheticDetection(
            bug=bug, site_covered=covered,
            confirmed=confirmed if confirm else covered,
        ))
    return detections
