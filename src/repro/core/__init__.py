"""PMFuzz — the paper's primary contribution.

This package implements the test-case generator itself, on top of the
AFL++-style substrate in :mod:`repro.fuzz`:

* :mod:`repro.core.config` — the five comparison points of Table 2;
* :mod:`repro.core.dedup` — SHA-256 image deduplication (Section 4.5);
* :mod:`repro.core.storage` — compressed test-case storage (Section 4.7);
* :mod:`repro.core.crashgen` — crash-image generation at ordering points
  plus probabilistic extra failure points (Section 3.2);
* :mod:`repro.core.priority` — the PM-path prioritization of Algorithm 2;
* :mod:`repro.core.testcase` — the test-case dependency tree (Figure 12);
* :mod:`repro.core.pmfuzz` — the PMFuzz engine and the campaign factory;
* :mod:`repro.core.pipeline` — fuzz → detect, Figure 9 end to end.

Submodules are imported lazily so the layering (``repro.fuzz`` may use
``repro.core.dedup``) stays cycle-free.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS = {
    "FuzzConfig": "repro.core.config",
    "CONFIGS": "repro.core.config",
    "config_by_name": "repro.core.config",
    "ImageStore": "repro.core.dedup",
    "TestCaseStorage": "repro.core.storage",
    "CrashImageGenerator": "repro.core.crashgen",
    "pm_path_priority": "repro.core.priority",
    "TestCaseTree": "repro.core.testcase",
    "PMFuzzEngine": "repro.core.pmfuzz",
    "build_engine": "repro.core.pmfuzz",
    "run_campaign": "repro.core.pmfuzz",
    "FuzzAndDetectPipeline": "repro.core.pipeline",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    module = importlib.import_module(module_name)
    return getattr(module, name)
