"""PM-image store with SHA-256 deduplication (Section 4.5).

PMFuzz's derandomization guarantees that the same input test case always
produces the same image, so duplicate images can be eliminated by
content hash: "PMFuzz performs image reduction by looking up the image's
hash value (SHA-256) in a dictionary that keeps the hash values of all
prior images."

The store also keeps the raw/compressed byte accounting that the
Section 4.7 storage optimization is about.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

from repro.errors import InvalidImageError, StorageFaultError
from repro.pmem.image import PMImage


class ImageStore:
    """Content-addressed store of PM images for one campaign.

    Args:
        compress: keep serialized images zlib/LZ77-compressed (the
            Section 4.7 SysOpt storage behaviour).  When False, images
            are kept raw, as the unoptimized configuration would.
        env_faults: optional
            :class:`~repro.resilience.faults.EnvFaultInjector` consulted
            at the ``storage-save`` / ``storage-load`` /
            ``storage-corrupt`` / ``decompress`` fault sites (the SSD
            tier failing under campaign pressure).
    """

    def __init__(self, compress: bool = True, env_faults=None) -> None:
        self.compress = compress
        self.env_faults = env_faults
        self._by_hash: Dict[str, bytes] = {}
        self._layouts: Dict[str, str] = {}
        self.raw_bytes = 0
        self.stored_bytes = 0
        self.duplicates_rejected = 0

    def __len__(self) -> int:
        return len(self._by_hash)

    def put(self, image: PMImage) -> Tuple[str, bool]:
        """Store an image; returns ``(image_id, is_new)``.

        ``image_id`` is the SHA-256 content hash.  A duplicate image is
        rejected (``is_new=False``) and costs nothing.
        """
        if self.env_faults is not None:
            self.env_faults.check("storage-save")
        image_id = image.content_hash()
        if image_id in self._by_hash:
            self.duplicates_rejected += 1
            return image_id, False
        serialized = image.to_bytes(compress=False)
        self.raw_bytes += len(serialized)
        if self.compress:
            stored = zlib.compress(serialized, level=6)
        else:
            stored = serialized
        self._by_hash[image_id] = stored
        self._layouts[image_id] = image.layout
        self.stored_bytes += len(stored)
        return image_id, True

    def get(self, image_id: str) -> PMImage:
        """Materialize an image by ID (decompressing if needed).

        Every stored blob was valid when :meth:`put` accepted it, so any
        materialization failure here — a failed read, bytes that come
        back truncated or corrupted, a decompression error — is an
        *environment* fault, raised as transient
        :class:`~repro.errors.StorageFaultError` for the supervisor to
        retry.  The stored bytes themselves are never modified.
        """
        faults = self.env_faults
        if faults is not None:
            faults.check("storage-load")
        stored = self._by_hash[image_id]
        if faults is not None:
            stored = faults.filter_bytes("storage-corrupt", stored)
        if self.compress:
            if faults is not None:
                faults.check("decompress")
            try:
                stored = zlib.decompress(stored)
            except zlib.error as exc:
                raise StorageFaultError(
                    f"decompression failed for {image_id[:12]}...: {exc}",
                    site="decompress", transient=True) from exc
        try:
            return PMImage.from_bytes(stored)
        except InvalidImageError as exc:
            raise StorageFaultError(
                f"stored image {image_id[:12]}... read back corrupt: {exc}",
                site="storage-corrupt", transient=True) from exc

    def contains(self, image_id: str) -> bool:
        return image_id in self._by_hash

    def maybe_get(self, image_id: str) -> Optional[PMImage]:
        """Like :meth:`get` but None for unknown IDs."""
        if image_id not in self._by_hash:
            return None
        return self.get(image_id)

    @property
    def compression_ratio(self) -> float:
        """raw / stored byte ratio (1.0 when compression is off)."""
        if self.stored_bytes == 0:
            return 1.0
        return self.raw_bytes / self.stored_bytes
