"""PM-image store with SHA-256 deduplication (Section 4.5).

PMFuzz's derandomization guarantees that the same input test case always
produces the same image, so duplicate images can be eliminated by
content hash: "PMFuzz performs image reduction by looking up the image's
hash value (SHA-256) in a dictionary that keeps the hash values of all
prior images."

The store also keeps the raw/compressed byte accounting that the
Section 4.7 storage optimization is about.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

from repro.pmem.image import PMImage


class ImageStore:
    """Content-addressed store of PM images for one campaign.

    Args:
        compress: keep serialized images zlib/LZ77-compressed (the
            Section 4.7 SysOpt storage behaviour).  When False, images
            are kept raw, as the unoptimized configuration would.
    """

    def __init__(self, compress: bool = True) -> None:
        self.compress = compress
        self._by_hash: Dict[str, bytes] = {}
        self._layouts: Dict[str, str] = {}
        self.raw_bytes = 0
        self.stored_bytes = 0
        self.duplicates_rejected = 0

    def __len__(self) -> int:
        return len(self._by_hash)

    def put(self, image: PMImage) -> Tuple[str, bool]:
        """Store an image; returns ``(image_id, is_new)``.

        ``image_id`` is the SHA-256 content hash.  A duplicate image is
        rejected (``is_new=False``) and costs nothing.
        """
        image_id = image.content_hash()
        if image_id in self._by_hash:
            self.duplicates_rejected += 1
            return image_id, False
        serialized = image.to_bytes(compress=False)
        self.raw_bytes += len(serialized)
        if self.compress:
            stored = zlib.compress(serialized, level=6)
        else:
            stored = serialized
        self._by_hash[image_id] = stored
        self._layouts[image_id] = image.layout
        self.stored_bytes += len(stored)
        return image_id, True

    def get(self, image_id: str) -> PMImage:
        """Materialize an image by ID (decompressing if needed)."""
        stored = self._by_hash[image_id]
        if self.compress:
            stored = zlib.decompress(stored)
        return PMImage.from_bytes(stored)

    def contains(self, image_id: str) -> bool:
        return image_id in self._by_hash

    def maybe_get(self, image_id: str) -> Optional[PMImage]:
        """Like :meth:`get` but None for unknown IDs."""
        if image_id not in self._by_hash:
            return None
        return self.get(image_id)

    @property
    def compression_ratio(self) -> float:
        """raw / stored byte ratio (1.0 when compression is off)."""
        if self.stored_bytes == 0:
            return 1.0
        return self.raw_bytes / self.stored_bytes
