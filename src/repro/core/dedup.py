"""PM-image store with SHA-256 deduplication (Section 4.5).

PMFuzz's derandomization guarantees that the same input test case always
produces the same image, so duplicate images can be eliminated by
content hash: "PMFuzz performs image reduction by looking up the image's
hash value (SHA-256) in a dictionary that keeps the hash values of all
prior images."

The store also keeps the raw/compressed byte accounting that the
Section 4.7 storage optimization is about.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

from repro.errors import (CorpusCorruptionError, InvalidImageError,
                          StorageFaultError)
from repro.pmem.image import PMImage


class ImageStore:
    """Content-addressed store of PM images for one campaign.

    Args:
        compress: keep serialized images zlib/LZ77-compressed (the
            Section 4.7 SysOpt storage behaviour).  When False, images
            are kept raw, as the unoptimized configuration would.
        env_faults: optional
            :class:`~repro.resilience.faults.EnvFaultInjector` consulted
            at the ``storage-save`` / ``storage-load`` /
            ``storage-corrupt`` / ``decompress`` fault sites (the SSD
            tier failing under campaign pressure).
    """

    def __init__(self, compress: bool = True, env_faults=None) -> None:
        self.compress = compress
        self.env_faults = env_faults
        self._by_hash: Dict[str, bytes] = {}
        self._layouts: Dict[str, str] = {}
        self.raw_bytes = 0
        self.stored_bytes = 0
        self.duplicates_rejected = 0
        #: image_id -> reason, for entries whose *stored* bytes turned
        #: out damaged (removed from the live store, never served again).
        self._quarantined: Dict[str, str] = {}
        self.corrupt_quarantined = 0

    def __len__(self) -> int:
        return len(self._by_hash)

    def put(self, image: PMImage) -> Tuple[str, bool]:
        """Store an image; returns ``(image_id, is_new)``.

        ``image_id`` is the SHA-256 content hash.  A duplicate image is
        rejected (``is_new=False``) and costs nothing.
        """
        if self.env_faults is not None:
            self.env_faults.check("storage-save")
            self.env_faults.check("disk-full")
        image_id = image.content_hash()
        if image_id in self._by_hash:
            self.duplicates_rejected += 1
            return image_id, False
        serialized = image.to_bytes(compress=False)
        self.raw_bytes += len(serialized)
        if self.compress:
            stored = zlib.compress(serialized, level=6)
        else:
            stored = serialized
        self._by_hash[image_id] = stored
        self._layouts[image_id] = image.layout
        self.stored_bytes += len(stored)
        return image_id, True

    def get(self, image_id: str) -> PMImage:
        """Materialize an image by ID (decompressing if needed).

        Failure classification is two-tier:

        * a *torn read* — the injected read-path corruption of
          :meth:`EnvFaultInjector.filter_bytes`, where the stored bytes
          are intact and only this read observed garbage — raises a
          transient :class:`~repro.errors.StorageFaultError` for the
          supervisor to retry;
        * *genuine damage* — the stored bytes themselves fail to
          decompress or validate, which no retry can fix — quarantines
          the entry (removed from the live store, counted) and raises
          the non-transient :class:`~repro.errors.CorpusCorruptionError`
          so a single bad file costs one test case, never the campaign.
        """
        faults = self.env_faults
        if faults is not None:
            faults.check("storage-load")
        stored = self._by_hash.get(image_id)
        if stored is None:
            reason = self._quarantined.get(image_id)
            raise CorpusCorruptionError(
                f"image {image_id[:12]}... is "
                + (f"quarantined ({reason})" if reason else "not in the store"),
                entry=image_id)
        read_back = stored
        if faults is not None:
            read_back = faults.filter_bytes("storage-corrupt", stored)
        torn_read = read_back is not stored
        if self.compress:
            if faults is not None:
                faults.check("decompress")
            try:
                read_back = zlib.decompress(read_back)
            except zlib.error as exc:
                if torn_read:
                    raise StorageFaultError(
                        f"decompression failed for {image_id[:12]}...: {exc}",
                        site="decompress", transient=True) from exc
                raise self._quarantine(
                    image_id, f"stored bytes do not decompress: {exc}") \
                    from exc
        try:
            return PMImage.from_bytes(read_back)
        except InvalidImageError as exc:
            if torn_read:
                raise StorageFaultError(
                    f"stored image {image_id[:12]}... read back corrupt: "
                    f"{exc}", site="storage-corrupt", transient=True) from exc
            raise self._quarantine(
                image_id, f"stored bytes fail validation: {exc}") from exc

    def _quarantine(self, image_id: str, reason: str) -> CorpusCorruptionError:
        """Retire a genuinely-damaged entry; returns the error to raise.

        The byte counters are cumulative-ingest accounting (what the
        campaign generated) and deliberately stay untouched.
        """
        if self._by_hash.pop(image_id, None) is not None:
            self._layouts.pop(image_id, None)
            self._quarantined[image_id] = reason
            self.corrupt_quarantined += 1
        return CorpusCorruptionError(
            f"image {image_id[:12]}... quarantined: {reason}",
            entry=image_id)

    def raw_serialized(self, image_id: str) -> Optional[bytes]:
        """Serialized (decompressed) bytes of a stored image, or None.

        Bypasses the environment-fault sites: this is the fleet-publish
        read of the process's *own in-memory* store, not a modeled SSD
        access, so it must not perturb the deterministic fault stream.
        """
        stored = self._by_hash.get(image_id)
        if stored is None:
            return None
        return zlib.decompress(stored) if self.compress else stored

    def contains(self, image_id: str) -> bool:
        return image_id in self._by_hash

    def maybe_get(self, image_id: str) -> Optional[PMImage]:
        """Like :meth:`get` but None for unknown IDs."""
        if image_id not in self._by_hash:
            return None
        return self.get(image_id)

    @property
    def compression_ratio(self) -> float:
        """raw / stored byte ratio (1.0 when compression is off)."""
        if self.stored_bytes == 0:
            return 1.0
        return self.raw_bytes / self.stored_bytes
