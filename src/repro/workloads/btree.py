"""B-Tree key-value store (PMDK ``btree_map`` analogue).

An order-4 B-Tree (minimum degree 2: 1-3 keys per node, 2-4 children)
implemented with the transactional API.  The code is organized like the
paper's Example 1 / Figure 15d:

* ``_find_dest_node`` descends to the destination leaf, splitting full
  nodes on the way (and snapshotting every node it modifies);
* ``_insert_item`` performs the in-leaf insert — the home of paper
  **Bug 12**: the buggy variant ``TX_ADD``s the destination node even
  when ``_find_dest_node`` already snapshotted it during a split;
* ``_rebalance`` / ``_rotate_left`` mirror Figure 1's rebalancing shape
  and host the deep synthetic-bug sites;
* creation happens in one transaction, giving the ``init_not_retried``
  variant paper **Bug 2**.

17 synthetic-bug sites (Table 3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import CommandError
from repro.pmdk.layout import Array, OID, PStruct, U64, store_field
from repro.pmdk.pool import OID_NULL, PmemObjPool
from repro.workloads.base import Command, Workload
from repro.workloads.synthetic import BugKind, SyntheticBug

#: Minimum degree t=2 → order 4: max 3 keys / 4 children per node.
MAX_KEYS = 3
MIN_KEYS = 1
MAX_SLOTS = MAX_KEYS + 1


class BTreeRoot(PStruct):
    """Pool root: pointer to the B-Tree's root node."""

    _fields_ = [("tree_oid", OID)]


class BNode(PStruct):
    """One B-Tree node (leaf when ``slots[0]`` is NULL)."""

    _fields_ = [
        ("n", U64),
        ("keys", Array(U64, MAX_KEYS)),
        ("values", Array(U64, MAX_KEYS)),
        ("slots", Array(OID, MAX_SLOTS)),
    ]


class BTreeWorkload(Workload):
    """Driver for the B-Tree key-value store."""

    name = "btree"
    layout = "btree"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create_structure(self, pool: PmemObjPool) -> None:
        """Create an empty root node inside a transaction (Bug 2 home)."""
        root = pool.root(BTreeRoot, site="btree:create:root")
        with pool.transaction() as tx:
            tx.add_field(root, "tree_oid", site="btree:create:add_root")
            node = tx.znew(BNode, site="btree:create:alloc_node")
            store_field(node, "n", 0, site="btree:create:store_n")
            root.tree_oid = node.offset

    def is_created(self, pool: PmemObjPool) -> bool:
        if pool.root_oid == OID_NULL:
            return False
        return pool.typed(pool.root_oid, BTreeRoot).tree_oid != OID_NULL

    def recover(self, pool: PmemObjPool) -> None:
        """Open-time structure check (mapcli's ``map_check`` analogue).

        Walks the leftmost spine and peeks at the first leaf — a PM code
        region that only executes when the image already holds a tree,
        i.e. reachable only with PM images as input (Requirement 1).
        """
        if not self.is_created(pool):
            return
        node = self._tree(pool)
        depth = 0
        while not self._is_leaf(node) and depth < 64:
            depth += 1
            node = pool.typed(node.slots[0], BNode)
        if node.n > 0:
            _ = node.keys[0]  # touch the smallest key (PM read)

    def _tree(self, pool: PmemObjPool) -> BNode:
        root = pool.typed(pool.root_oid, BTreeRoot)
        return pool.typed(root.tree_oid, BNode)

    @staticmethod
    def _is_leaf(node: BNode) -> bool:
        return node.slots[0] == OID_NULL

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def exec_command(self, pool: PmemObjPool, cmd: Command) -> Optional[str]:
        if cmd.op == "i":
            return self._insert(pool, cmd.key, cmd.value or 0)
        if cmd.op == "g":
            found = self._lookup(pool, cmd.key)
            return "none" if found is None else str(found)
        if cmd.op == "r":
            return self._remove(pool, cmd.key)
        if cmd.op == "x":
            return "1" if self._lookup(pool, cmd.key) is not None else "0"
        if cmd.op == "n":
            return str(self._count(pool, self._tree(pool)))
        if cmd.op == "m":
            tree = self._tree(pool)
            if tree.n == 0 and self._is_leaf(tree):
                return "none"
            key, value = self._min_of(pool, tree)
            return f"{key}={value}"
        if cmd.op == "q":
            out: List[str] = []
            self._scan(pool, self._tree(pool), out, depth=0)
            return ",".join(out)
        if cmd.op == "b":
            return "noop"
        raise CommandError(f"unknown op {cmd.op!r}")

    def _scan(self, pool: PmemObjPool, node: BNode, out: List[str],
              depth: int, limit: int = 24) -> None:
        """Bounded in-order walk (mapcli foreach analogue)."""
        if depth > 64 or len(out) >= limit:
            return
        n = node.n
        leaf = self._is_leaf(node)
        for i in range(n):
            if not leaf:
                self._scan(pool, pool.typed(node.slots[i], BNode), out,
                           depth + 1, limit)
            if len(out) >= limit:
                return
            out.append(str(node.keys[i]))
        if not leaf and len(out) < limit:
            self._scan(pool, pool.typed(node.slots[n], BNode), out,
                       depth + 1, limit)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _lookup(self, pool: PmemObjPool, key: int) -> Optional[int]:
        node = self._tree(pool)
        depth = 0
        while depth < 64:
            depth += 1
            i = 0
            n = node.n
            while i < n and key > node.keys[i]:
                i += 1
            if i < n and node.keys[i] == key:
                return node.values[i]
            if self._is_leaf(node):
                return None
            node = pool.typed(node.slots[i], BNode)
        return None

    def _count(self, pool: PmemObjPool, node: BNode, depth: int = 0) -> int:
        if depth > 64:
            return 0
        total = node.n
        if not self._is_leaf(node):
            for i in range(node.n + 1):
                child = node.slots[i]
                if child != OID_NULL:
                    total += self._count(pool, pool.typed(child, BNode), depth + 1)
        return total

    # ------------------------------------------------------------------
    # Insert (preemptive split on the way down)
    # ------------------------------------------------------------------
    def _insert(self, pool: PmemObjPool, key: int, value: int) -> str:
        with pool.transaction() as tx:
            root_view = pool.typed(pool.root_oid, BTreeRoot)
            tree = pool.typed(root_view.tree_oid, BNode)
            if tree.n == MAX_KEYS:
                # Grow: new root, split old root into it.
                new_root = tx.znew(BNode, site="btree:split:alloc_root")
                new_root.slots[0] = tree.offset
                self._split_child(pool, tx, new_root, 0)
                tx.add_field(root_view, "tree_oid", site="btree:split:add_rootptr")
                store_field(root_view, "tree_oid", new_root.offset,
                            site="btree:split:store_rootptr")
                tree = new_root
            dest, pos, already_added = self._find_dest_node(pool, tx, tree, key)
            if pos is not None:
                # Key exists: in-place value update.
                tx.add_struct(dest, site="btree:insert:add_update")
                dest.values[pos] = value
                return "updated"
            self._insert_item(pool, tx, dest, key, value, already_added)
        return "inserted"

    def _find_dest_node(
        self, pool: PmemObjPool, tx, node: BNode, key: int
    ) -> Tuple[BNode, Optional[int], bool]:
        """Descend to the leaf for ``key``, splitting full children.

        Returns (leaf node, match position or None, whether the leaf was
        already snapshotted by a split on the way down) — the last flag
        is what makes Bug 12's ``TX_ADD`` redundant.
        """
        already_added = False
        depth = 0
        while depth < 64:
            depth += 1
            i = 0
            n = node.n
            while i < n and key > node.keys[i]:
                i += 1
            if i < n and node.keys[i] == key:
                return node, i, already_added
            if self._is_leaf(node):
                return node, None, already_added
            child = pool.typed(node.slots[i], BNode)
            if child.n == MAX_KEYS:
                self._split_child(pool, tx, node, i)
                # The split snapshotted and modified both halves.
                already_added = True
                if key > node.keys[i]:
                    i += 1
                elif key == node.keys[i]:
                    return node, i, already_added
                child = pool.typed(node.slots[i], BNode)
            else:
                already_added = False
            node = child
        raise CommandError("btree too deep")

    def _split_child(self, pool: PmemObjPool, tx, parent: BNode, index: int) -> None:
        """Split the full child ``parent.slots[index]`` (Figure 10 shape)."""
        full = pool.typed(parent.slots[index], BNode)
        tx.add_struct(parent, site="btree:split:add_parent")
        tx.add_struct(full, site="btree:split:add_full")
        right = tx.znew(BNode, site="btree:split:alloc_right")
        mid = MAX_KEYS // 2
        # Move the upper keys into the new right sibling.
        for j in range(mid + 1, MAX_KEYS):
            right.keys[j - mid - 1] = full.keys[j]
            right.values[j - mid - 1] = full.values[j]
        if not self._is_leaf(full):
            for j in range(mid + 1, MAX_KEYS + 1):
                right.slots[j - mid - 1] = full.slots[j]
                full.slots[j] = OID_NULL
        store_field(right, "n", MAX_KEYS - mid - 1, site="btree:split:store_rightn")
        # Shift parent entries right to make room for the median.
        for j in range(parent.n, index, -1):
            parent.keys[j] = parent.keys[j - 1]
            parent.values[j] = parent.values[j - 1]
            parent.slots[j + 1] = parent.slots[j]
        parent.keys[index] = full.keys[mid]
        parent.values[index] = full.values[mid]
        parent.slots[index + 1] = right.offset
        store_field(parent, "n", parent.n + 1, site="btree:split:store_parentn")
        store_field(full, "n", mid, site="btree:split:store_fulln")

    def _insert_item(
        self, pool: PmemObjPool, tx, node: BNode, key: int, value: int,
        already_added: bool,
    ) -> None:
        """Insert into a non-full leaf (paper Figure 15d / Bug 12)."""
        if "bug12_txadd_found_dest" in self.bugs:
            # Buggy: unconditional TX_ADD — redundant whenever
            # _find_dest_node already snapshotted this node in a split.
            tx.add_struct(node, site="btree:insert_item:txadd")
        elif not already_added:
            tx.add_struct(node, site="btree:insert_item:txadd_needed")
        i = node.n
        while i > 0 and node.keys[i - 1] > key:
            node.keys[i] = node.keys[i - 1]
            node.values[i] = node.values[i - 1]
            i -= 1
        node.keys[i] = key
        node.values[i] = value
        store_field(node, "n", node.n + 1, site="btree:insert_item:store_n")

    # ------------------------------------------------------------------
    # Remove (CLRS delete with borrow/merge on the way down)
    # ------------------------------------------------------------------
    def _remove(self, pool: PmemObjPool, key: int) -> str:
        with pool.transaction() as tx:
            root_view = pool.typed(pool.root_oid, BTreeRoot)
            tree = pool.typed(root_view.tree_oid, BNode)
            removed = self._remove_from(pool, tx, tree, key, depth=0)
            # Shrink: an empty internal root is replaced by its only child.
            if tree.n == 0 and not self._is_leaf(tree):
                tx.add_field(root_view, "tree_oid", site="btree:remove:add_rootptr")
                store_field(root_view, "tree_oid", tree.slots[0],
                            site="btree:remove:store_rootptr")
                tx.free(tree.offset, site="btree:remove:free_root")
            return "removed" if removed else "none"

    def _remove_from(self, pool: PmemObjPool, tx, node: BNode, key: int,
                     depth: int) -> bool:
        if depth > 64:
            return False
        i = 0
        n = node.n
        while i < n and key > node.keys[i]:
            i += 1
        if self._is_leaf(node):
            if i < n and node.keys[i] == key:
                tx.add_struct(node, site="btree:remove:add_leaf")
                for j in range(i, n - 1):
                    node.keys[j] = node.keys[j + 1]
                    node.values[j] = node.values[j + 1]
                store_field(node, "n", n - 1, site="btree:remove:store_leafn")
                return True
            return False
        if i < n and node.keys[i] == key:
            # CLRS internal-node delete: replace with the predecessor or
            # successor when a neighbouring subtree can spare a key,
            # otherwise merge around the key and recurse into the merge.
            left = pool.typed(node.slots[i], BNode)
            if left.n > MIN_KEYS:
                pred_key, pred_val = self._max_of(pool, left)
                tx.add_struct(node, site="btree:remove:add_internal")
                node.keys[i] = pred_key
                node.values[i] = pred_val
                return self._remove_from(pool, tx, left, pred_key, depth + 1)
            right = pool.typed(node.slots[i + 1], BNode)
            if right.n > MIN_KEYS:
                succ_key, succ_val = self._min_of(pool, right)
                tx.add_struct(node, site="btree:remove:add_internal")
                node.keys[i] = succ_key
                node.values[i] = succ_val
                return self._remove_from(pool, tx, right, succ_key, depth + 1)
            self._merge(pool, tx, node, i)
            merged = pool.typed(node.slots[i], BNode)
            return self._remove_from(pool, tx, merged, key, depth + 1)
        child = self._ensure_min(pool, tx, node, i)
        return self._remove_from(pool, tx, child, key, depth + 1)

    def _max_of(self, pool: PmemObjPool, node: BNode) -> Tuple[int, int]:
        depth = 0
        while not self._is_leaf(node) and depth < 64:
            node = pool.typed(node.slots[node.n], BNode)
            depth += 1
        return node.keys[node.n - 1], node.values[node.n - 1]

    def _min_of(self, pool: PmemObjPool, node: BNode) -> Tuple[int, int]:
        depth = 0
        while not self._is_leaf(node) and depth < 64:
            node = pool.typed(node.slots[0], BNode)
            depth += 1
        return node.keys[0], node.values[0]

    def _ensure_min(self, pool: PmemObjPool, tx, parent: BNode, i: int) -> BNode:
        """Guarantee child ``i`` has > MIN_KEYS keys before descending.

        This is the ``btree_rebalance`` / ``rotate_left`` region of
        Figure 1: borrow from a sibling when possible, merge otherwise.
        """
        # Re-clamp: the caller's index may equal n (rightmost child).
        i = min(i, parent.n)
        child = pool.typed(parent.slots[i], BNode)
        if child.n > MIN_KEYS:
            return child
        if i > 0:
            lsb = pool.typed(parent.slots[i - 1], BNode)
            if lsb.n > MIN_KEYS:
                self._rotate_right(pool, tx, lsb, child, parent, i)
                return child
        if i < parent.n:
            rsb = pool.typed(parent.slots[i + 1], BNode)
            if rsb.n > MIN_KEYS:
                self._rotate_left(pool, tx, rsb, child, parent, i)
                return child
        # Merge with a sibling.
        if i < parent.n:
            self._merge(pool, tx, parent, i)
            return pool.typed(parent.slots[i], BNode)
        self._merge(pool, tx, parent, i - 1)
        return pool.typed(parent.slots[i - 1], BNode)

    def _rotate_left(self, pool: PmemObjPool, tx, rsb: BNode, node: BNode,
                     parent: BNode, p: int) -> None:
        """Move one entry right-sibling → parent → node (Figure 1 shape)."""
        tx.add_struct(node, site="btree:rotate:add_node")
        tx.add_struct(rsb, site="btree:rotate:add_rsb")
        tx.add(parent.field_addr("keys") + 8 * p, 8, site="btree:rotate:add_parentkey")
        tx.add(parent.field_addr("values") + 8 * p, 8,
               site="btree:rotate:add_parentval")
        n = node.n
        node.keys[n] = parent.keys[p]
        node.values[n] = parent.values[p]
        if not self._is_leaf(node):
            node.slots[n + 1] = rsb.slots[0]
        store_field(node, "n", n + 1, site="btree:rotate:store_noden")
        parent.keys[p] = rsb.keys[0]
        parent.values[p] = rsb.values[0]
        for j in range(rsb.n - 1):
            rsb.keys[j] = rsb.keys[j + 1]
            rsb.values[j] = rsb.values[j + 1]
        if not self._is_leaf(rsb):
            for j in range(rsb.n):
                rsb.slots[j] = rsb.slots[j + 1]
            rsb.slots[rsb.n] = OID_NULL
        store_field(rsb, "n", rsb.n - 1, site="btree:rotate:store_rsbn")

    def _rotate_right(self, pool: PmemObjPool, tx, lsb: BNode, node: BNode,
                      parent: BNode, i: int) -> None:
        """Move one entry left-sibling → parent → node."""
        tx.add_struct(node, site="btree:rotate:add_node2")
        tx.add_struct(lsb, site="btree:rotate:add_lsb")
        tx.add(parent.field_addr("keys") + 8 * (i - 1), 8,
               site="btree:rotate:add_parentkey2")
        tx.add(parent.field_addr("values") + 8 * (i - 1), 8,
               site="btree:rotate:add_parentval2")
        for j in range(node.n, 0, -1):
            node.keys[j] = node.keys[j - 1]
            node.values[j] = node.values[j - 1]
        if not self._is_leaf(node):
            for j in range(node.n + 1, 0, -1):
                node.slots[j] = node.slots[j - 1]
            node.slots[0] = lsb.slots[lsb.n]
        node.keys[0] = parent.keys[i - 1]
        node.values[0] = parent.values[i - 1]
        store_field(node, "n", node.n + 1, site="btree:rotate:store_noden2")
        parent.keys[i - 1] = lsb.keys[lsb.n - 1]
        parent.values[i - 1] = lsb.values[lsb.n - 1]
        store_field(lsb, "n", lsb.n - 1, site="btree:rotate:store_lsbn")

    def _merge(self, pool: PmemObjPool, tx, parent: BNode, i: int) -> None:
        """Merge child ``i``, parent key ``i`` and child ``i+1``."""
        left = pool.typed(parent.slots[i], BNode)
        right = pool.typed(parent.slots[i + 1], BNode)
        tx.add_struct(left, site="btree:merge:add_left")
        tx.add_struct(parent, site="btree:merge:add_parent")
        ln = left.n
        left.keys[ln] = parent.keys[i]
        left.values[ln] = parent.values[i]
        for j in range(right.n):
            left.keys[ln + 1 + j] = right.keys[j]
            left.values[ln + 1 + j] = right.values[j]
        if not self._is_leaf(left):
            for j in range(right.n + 1):
                left.slots[ln + 1 + j] = right.slots[j]
        store_field(left, "n", ln + 1 + right.n, site="btree:merge:store_leftn")
        for j in range(i, parent.n - 1):
            parent.keys[j] = parent.keys[j + 1]
            parent.values[j] = parent.values[j + 1]
            parent.slots[j + 1] = parent.slots[j + 2]
        parent.slots[parent.n] = OID_NULL
        store_field(parent, "n", parent.n - 1, site="btree:merge:store_parentn")
        tx.free(right.offset, site="btree:merge:free_right")

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------
    def check_consistency(self, pool: PmemObjPool) -> List[str]:
        violations: List[str] = []
        if not self.is_created(pool):
            return violations
        tree = self._tree(pool)
        keys: List[int] = []
        self._walk(pool, tree, keys, violations, is_root=True, depth=0)
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            violations.append("in-order traversal not strictly sorted")
        return violations

    def _walk(self, pool: PmemObjPool, node: BNode, keys: List[int],
              violations: List[str], is_root: bool, depth: int) -> None:
        if depth > 64:
            violations.append("tree too deep (cycle?)")
            return
        n = node.n
        if n > MAX_KEYS or (not is_root and n < MIN_KEYS):
            violations.append(f"node @0x{node.offset:x} has invalid n={n}")
            return
        if self._is_leaf(node):
            for i in range(n):
                keys.append(node.keys[i])
            return
        for i in range(n + 1):
            child = node.slots[i]
            if child == OID_NULL:
                violations.append(f"internal node @0x{node.offset:x} NULL slot {i}")
                return
            self._walk(pool, pool.typed(child, BNode), keys, violations,
                       is_root=False, depth=depth + 1)
            if i < n:
                keys.append(node.keys[i])

    # ------------------------------------------------------------------
    # Synthetic bugs (17 sites, Table 3)
    # ------------------------------------------------------------------
    def synthetic_bugs(self) -> Sequence[SyntheticBug]:
        def bug(i: int, site: str, kind: BugKind, depth: int) -> SyntheticBug:
            return SyntheticBug(f"btree:s{i:02d}", site, kind, depth)

        return (
            bug(1, "btree:create:add_root", BugKind.MISSING_TXADD, 0),
            bug(2, "btree:create:store_n", BugKind.WRONG_VALUE, 0),
            bug(3, "btree:insert_item:txadd_needed", BugKind.MISSING_TXADD, 1),
            bug(4, "btree:insert_item:store_n", BugKind.WRONG_VALUE, 1),
            bug(5, "btree:insert:add_update", BugKind.MISSING_TXADD, 1),
            bug(6, "btree:split:add_parent", BugKind.MISSING_TXADD, 2),
            bug(7, "btree:split:add_full", BugKind.MISSING_TXADD, 2),
            bug(8, "btree:split:store_rightn", BugKind.WRONG_VALUE, 2),
            bug(9, "btree:split:store_parentn", BugKind.WRONG_VALUE, 2),
            bug(10, "btree:split:store_fulln", BugKind.WRONG_VALUE, 2),
            bug(11, "btree:remove:add_leaf", BugKind.MISSING_TXADD, 1),
            bug(12, "btree:remove:store_leafn", BugKind.WRONG_VALUE, 1),
            bug(13, "btree:remove:add_internal", BugKind.MISSING_TXADD, 2),
            bug(14, "btree:rotate:add_node", BugKind.MISSING_TXADD, 2),
            bug(15, "btree:rotate:add_parentkey", BugKind.MISSING_TXADD, 2),
            bug(16, "btree:merge:add_left", BugKind.MISSING_TXADD, 2),
            bug(17, "btree:merge:store_parentn", BugKind.WRONG_VALUE, 2),
        )
