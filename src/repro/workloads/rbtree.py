"""Red-black tree key-value store (PMDK ``rbtree_map`` analogue).

A classic CLRS red-black tree with a NIL sentinel, parent pointers, and
transactional updates.  Hosts four of the paper's real-world bugs:

* **Bug 3** — ``init_not_retried`` (creation transaction never retried);
* **Bug 9** — ``TX_SET`` on a node just allocated with ``TX_NEW``
  (redundant log of a fresh allocation);
* **Bug 10** — logging the tree's first-entry slot right after the tree
  itself was transaction-allocated;
* **Bug 11** — ``TX_SET`` on a parent node that a preceding rotation
  already snapshotted (redundant only on the rotate-first fixup path,
  which is why the paper needed 77 s of fuzzing to expose it).

Deletion uses BST transplant with a conservative recolor (the
replacement of a black node is blackened), so the maintained invariants
are: strict BST order, black root/NIL, and no red node with a red child
— exactly what :meth:`check_consistency` verifies.

14 synthetic-bug sites (Table 3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import CommandError
from repro.pmdk.layout import OID, PStruct, U64, store_field
from repro.pmdk.pool import OID_NULL, PmemObjPool
from repro.workloads.base import Command, Workload
from repro.workloads.synthetic import BugKind, SyntheticBug

BLACK = 0
RED = 1


class RBRoot(PStruct):
    """Pool root: pointer to the tree header."""

    _fields_ = [("tree_oid", OID)]


class RBTree(PStruct):
    """Tree header: root pointer, NIL sentinel, entry count."""

    _fields_ = [("root", OID), ("nil", OID), ("count", U64)]


class RBNode(PStruct):
    """One tree node."""

    _fields_ = [
        ("key", U64),
        ("value", U64),
        ("color", U64),
        ("parent", OID),
        ("left", OID),
        ("right", OID),
    ]


class RBTreeWorkload(Workload):
    """Driver for the red-black tree."""

    name = "rbtree"
    layout = "rbtree"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create_structure(self, pool: PmemObjPool) -> None:
        root = pool.root(RBRoot, site="rbtree:create:root")
        with pool.transaction() as tx:
            tx.add_field(root, "tree_oid", site="rbtree:create:add_root")
            tree = tx.znew(RBTree, site="rbtree:create:alloc_tree")
            nil = tx.znew(RBNode, site="rbtree:create:alloc_nil")
            store_field(nil, "color", BLACK, site="rbtree:create:store_nilcolor")
            nil.left = nil.offset
            nil.right = nil.offset
            if "bug10_log_fresh_root" in self.bugs:
                # Paper Bug 10: log the first-entry slot of a tree that
                # TX_ZNEW just allocated — the range is already covered.
                tx.add_field(tree, "root", site="rbtree:create:log_first")
            store_field(tree, "root", nil.offset, site="rbtree:create:store_root")
            store_field(tree, "nil", nil.offset, site="rbtree:create:store_nil")
            store_field(tree, "count", 0, site="rbtree:create:store_count")
            root.tree_oid = tree.offset

    def is_created(self, pool: PmemObjPool) -> bool:
        if pool.root_oid == OID_NULL:
            return False
        return pool.typed(pool.root_oid, RBRoot).tree_oid != OID_NULL

    def recover(self, pool: PmemObjPool) -> None:
        """Open-time check: walk to the minimum key (map_check analogue).

        Only executes PM reads when the image carries a populated tree —
        an image-gated PM code region.
        """
        if not self.is_created(pool):
            return
        tree = self._tree(pool)
        nil = tree.nil
        if nil == OID_NULL or tree.root == nil:
            return
        cur = tree.root
        depth = 0
        while depth < 128:
            depth += 1
            node = self._node(pool, cur)
            if node.left == nil:
                _ = node.key  # smallest key (PM read)
                break
            cur = node.left

    def _tree(self, pool: PmemObjPool) -> RBTree:
        root = pool.typed(pool.root_oid, RBRoot)
        return pool.typed(root.tree_oid, RBTree)

    def _node(self, pool: PmemObjPool, oid: int) -> RBNode:
        return pool.typed(oid, RBNode)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def exec_command(self, pool: PmemObjPool, cmd: Command) -> Optional[str]:
        if cmd.op == "i":
            return self._insert(pool, cmd.key, cmd.value or 0)
        if cmd.op == "g":
            found = self._lookup(pool, cmd.key)
            return "none" if found is None else str(found)
        if cmd.op == "r":
            return self._remove(pool, cmd.key)
        if cmd.op == "x":
            return "1" if self._lookup(pool, cmd.key) is not None else "0"
        if cmd.op == "n":
            return str(self._tree(pool).count)
        if cmd.op == "m":
            tree = self._tree(pool)
            if tree.root == tree.nil:
                return "none"
            cur = tree.root
            depth = 0
            while depth < 128:
                depth += 1
                node = self._node(pool, cur)
                if node.left == tree.nil:
                    return f"{node.key}={node.value}"
                cur = node.left
            return "none"
        if cmd.op == "q":
            out: List[str] = []
            tree = self._tree(pool)
            self._scan(pool, tree, tree.root, out, depth=0)
            return ",".join(out)
        if cmd.op == "b":
            return "noop"
        raise CommandError(f"unknown op {cmd.op!r}")

    def _scan(self, pool: PmemObjPool, tree: RBTree, oid: int,
              out: List[str], depth: int, limit: int = 24) -> None:
        """Bounded in-order walk (mapcli foreach analogue)."""
        if oid == tree.nil or depth > 128 or len(out) >= limit:
            return
        node = self._node(pool, oid)
        self._scan(pool, tree, node.left, out, depth + 1, limit)
        if len(out) < limit:
            out.append(str(node.key))
            self._scan(pool, tree, node.right, out, depth + 1, limit)

    def _lookup(self, pool: PmemObjPool, key: int) -> Optional[int]:
        tree = self._tree(pool)
        nil = tree.nil
        cur = tree.root
        depth = 0
        while cur != nil and depth < 128:
            depth += 1
            node = self._node(pool, cur)
            if key == node.key:
                return node.value
            cur = node.left if key < node.key else node.right
        return None

    # ------------------------------------------------------------------
    # Insert with CLRS fixup
    # ------------------------------------------------------------------
    def _insert(self, pool: PmemObjPool, key: int, value: int) -> str:
        tree = self._tree(pool)
        nil = tree.nil
        with pool.transaction() as tx:
            # BST descent.
            parent_oid = nil
            cur = tree.root
            depth = 0
            while cur != nil and depth < 128:
                depth += 1
                node = self._node(pool, cur)
                if key == node.key:
                    tx.add_field(node, "value", site="rbtree:insert:add_value")
                    store_field(node, "value", value,
                                site="rbtree:insert:store_value")
                    return "updated"
                parent_oid = cur
                cur = node.left if key < node.key else node.right
            # Allocate the new node (fresh: covered, no snapshot needed).
            n = tx.znew(RBNode, site="rbtree:insert:alloc_node")
            store_field(n, "key", key, site="rbtree:insert:store_key")
            store_field(n, "value", value, site="rbtree:insert:store_newvalue")
            n.left = nil
            n.right = nil
            n.parent = parent_oid
            if "bug9_txset_fresh_node" in self.bugs:
                # Paper Bug 9: TX_SET on a node TX_NEW just returned.
                tx.set_field(n, "color", RED, site="rbtree:insert:txset_fresh")
            else:
                store_field(n, "color", RED, site="rbtree:insert:store_color")
            # Link into the parent (or the root slot).
            if parent_oid == nil:
                tx.add_field(tree, "root", site="rbtree:insert:add_rootslot")
                store_field(tree, "root", n.offset,
                            site="rbtree:insert:store_rootslot")
            else:
                parent = self._node(pool, parent_oid)
                side = "left" if key < parent.key else "right"
                tx.add(parent.field_addr(side), 8, site="rbtree:insert:add_link")
                pool.write(parent.field_addr(side),
                           n.offset.to_bytes(8, "little"),
                           site="rbtree:insert:store_link")
            tx.add_field(tree, "count", site="rbtree:insert:add_count")
            store_field(tree, "count", tree.count + 1,
                        site="rbtree:insert:store_count")
            self._insert_fixup(pool, tx, tree, n.offset)
        return "inserted"

    def _insert_fixup(self, pool: PmemObjPool, tx, tree: RBTree, z_oid: int) -> None:
        """``rbtree_map_recolor``: restore red-black invariants."""
        nil = tree.nil
        depth = 0
        while depth < 128:
            depth += 1
            z = self._node(pool, z_oid)
            parent_oid = z.parent
            if parent_oid == nil:
                break
            parent = self._node(pool, parent_oid)
            if parent.color != RED:
                break
            grand_oid = parent.parent
            grand = self._node(pool, grand_oid)
            left_side = grand.left == parent_oid
            uncle_oid = grand.right if left_side else grand.left
            uncle = self._node(pool, uncle_oid)
            if uncle.color == RED:
                tx.add_struct(parent, site="rbtree:fixup:add_parent")
                tx.add_struct(uncle, site="rbtree:fixup:add_uncle")
                tx.add_struct(grand, site="rbtree:fixup:add_grand")
                parent.color = BLACK
                uncle.color = BLACK
                grand.color = RED
                z_oid = grand_oid
                continue
            rotated = False
            inner = (z_oid == parent.right) if left_side else (z_oid == parent.left)
            if inner:
                z_oid = parent_oid
                self._rotate(pool, tx, tree, z_oid, left=left_side)
                rotated = True
                z = self._node(pool, z_oid)
                parent_oid = z.parent
                parent = self._node(pool, parent_oid)
            if "bug11_txset_rotated_parent" in self.bugs:
                # Paper Bug 11: TX_SET on the parent — redundant exactly
                # when the inner rotation above already snapshotted it.
                tx.set_field(parent, "color", BLACK,
                             site="rbtree:fixup:txset_parent")
            else:
                if not rotated:
                    tx.add_field(parent, "color", site="rbtree:fixup:add_pcolor")
                store_field(parent, "color", BLACK,
                            site="rbtree:fixup:store_pcolor")
            grand_oid = parent.parent
            grand = self._node(pool, grand_oid)
            if grand_oid != nil:
                tx.add_struct(grand, site="rbtree:fixup:add_grand2")
                grand.color = RED
                self._rotate(pool, tx, tree, grand_oid, left=not left_side)
            break
        root_node = self._node(pool, tree.root)
        if root_node.color != BLACK:
            tx.add_field(root_node, "color", site="rbtree:fixup:add_rootcolor")
            store_field(root_node, "color", BLACK,
                        site="rbtree:fixup:store_rootcolor")

    def _rotate(self, pool: PmemObjPool, tx, tree: RBTree, x_oid: int,
                left: bool) -> None:
        """``rbtree_map_rotate``: snapshot both nodes, then swap links.

        Mirrors paper Figure 16: both the node and its child are logged
        up front — occasionally redundant, but the alternative (deciding
        per-call) is the trap Bug 11 fell into.
        """
        nil = tree.nil
        x = self._node(pool, x_oid)
        y_oid = x.right if left else x.left
        y = self._node(pool, y_oid)
        tx.add_struct(x, site="rbtree:rotate:add_node")
        tx.add_struct(y, site="rbtree:rotate:add_child")
        if left:
            mid = y.left
            x.right = mid
            y.left = x_oid
        else:
            mid = y.right
            x.left = mid
            y.right = x_oid
        if mid != nil:
            mid_node = self._node(pool, mid)
            tx.add_field(mid_node, "parent", site="rbtree:rotate:add_mid")
            store_field(mid_node, "parent", x_oid, site="rbtree:rotate:store_mid")
        parent_oid = x.parent
        y.parent = parent_oid
        x.parent = y_oid
        if parent_oid == nil:
            tx.add_field(tree, "root", site="rbtree:rotate:add_root")
            store_field(tree, "root", y_oid, site="rbtree:rotate:store_root")
        else:
            parent = self._node(pool, parent_oid)
            side = "left" if parent.left == x_oid else "right"
            tx.add(parent.field_addr(side), 8, site="rbtree:rotate:add_parent")
            pool.write(parent.field_addr(side), y_oid.to_bytes(8, "little"),
                       site="rbtree:rotate:store_parent")

    # ------------------------------------------------------------------
    # Remove (transplant + conservative recolor)
    # ------------------------------------------------------------------
    def _remove(self, pool: PmemObjPool, key: int) -> str:
        tree = self._tree(pool)
        nil = tree.nil
        with pool.transaction() as tx:
            cur = tree.root
            depth = 0
            while cur != nil and depth < 128:
                depth += 1
                node = self._node(pool, cur)
                if key == node.key:
                    break
                cur = node.left if key < node.key else node.right
            else:
                return "none"
            if cur == nil:
                return "none"
            z = self._node(pool, cur)
            if z.left != nil and z.right != nil:
                # Two children: swap in the successor's payload, delete it.
                succ_oid = z.right
                sdepth = 0
                while sdepth < 128:
                    sdepth += 1
                    succ = self._node(pool, succ_oid)
                    if succ.left == nil:
                        break
                    succ_oid = succ.left
                tx.add_struct(z, site="rbtree:remove:add_victim")
                z.key = succ.key
                z.value = succ.value
                z = succ
            child_oid = z.left if z.left != nil else z.right
            was_black = z.color == BLACK
            self._transplant(pool, tx, tree, z.offset, child_oid)
            if was_black and child_oid != nil:
                child = self._node(pool, child_oid)
                tx.add_field(child, "color", site="rbtree:remove:add_childcolor")
                store_field(child, "color", BLACK,
                            site="rbtree:remove:store_childcolor")
            tx.free(z.offset, site="rbtree:remove:free_node")
            tx.add_field(tree, "count", site="rbtree:remove:add_count")
            store_field(tree, "count", tree.count - 1,
                        site="rbtree:remove:store_count")
        return "removed"

    def _transplant(self, pool: PmemObjPool, tx, tree: RBTree, u_oid: int,
                    v_oid: int) -> None:
        u = self._node(pool, u_oid)
        parent_oid = u.parent
        if parent_oid == tree.nil:
            tx.add_field(tree, "root", site="rbtree:transplant:add_root")
            store_field(tree, "root", v_oid, site="rbtree:transplant:store_root")
        else:
            parent = self._node(pool, parent_oid)
            side = "left" if parent.left == u_oid else "right"
            tx.add(parent.field_addr(side), 8, site="rbtree:transplant:add_link")
            pool.write(parent.field_addr(side), v_oid.to_bytes(8, "little"),
                       site="rbtree:transplant:store_link")
        if v_oid != tree.nil:
            v = self._node(pool, v_oid)
            tx.add_field(v, "parent", site="rbtree:transplant:add_vparent")
            store_field(v, "parent", parent_oid,
                        site="rbtree:transplant:store_vparent")

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------
    def check_consistency(self, pool: PmemObjPool) -> List[str]:
        violations: List[str] = []
        if not self.is_created(pool):
            return violations
        tree = self._tree(pool)
        nil = tree.nil
        if nil == OID_NULL:
            return ["NIL sentinel missing"]
        if self._node(pool, nil).color != BLACK:
            violations.append("NIL sentinel is not black")
        count = self._check_subtree(pool, tree, tree.root, None, None,
                                    violations, depth=0)
        if tree.root != nil and self._node(pool, tree.root).color != BLACK:
            violations.append("root is not black")
        if count != tree.count:
            violations.append(f"count {tree.count} != actual {count}")
        return violations

    def _check_subtree(self, pool, tree, oid, lo, hi, violations, depth) -> int:
        if oid == tree.nil:
            return 0
        if depth > 128:
            violations.append("tree too deep (cycle?)")
            return 0
        node = self._node(pool, oid)
        key = node.key
        if (lo is not None and key <= lo) or (hi is not None and key >= hi):
            violations.append(f"BST violation at key {key}")
            return 0
        if node.color not in (RED, BLACK):
            violations.append(f"color field corrupted at key {key}")
        if node.color == RED:
            for child_oid in (node.left, node.right):
                if child_oid != tree.nil:
                    if self._node(pool, child_oid).color == RED:
                        violations.append(f"red-red violation at key {key}")
        return (1
                + self._check_subtree(pool, tree, node.left, lo, key,
                                      violations, depth + 1)
                + self._check_subtree(pool, tree, node.right, key, hi,
                                      violations, depth + 1))

    # ------------------------------------------------------------------
    # Synthetic bugs (14 sites, Table 3)
    # ------------------------------------------------------------------
    def synthetic_bugs(self) -> Sequence[SyntheticBug]:
        def bug(i: int, site: str, kind: BugKind, depth: int) -> SyntheticBug:
            return SyntheticBug(f"rbtree:s{i:02d}", site, kind, depth)

        return (
            bug(1, "rbtree:create:add_root", BugKind.MISSING_TXADD, 0),
            bug(2, "rbtree:create:store_root", BugKind.WRONG_VALUE, 0),
            bug(3, "rbtree:create:store_nil", BugKind.WRONG_VALUE, 0),
            bug(4, "rbtree:insert:add_value", BugKind.MISSING_TXADD, 1),
            bug(5, "rbtree:insert:store_key", BugKind.WRONG_VALUE, 1),
            bug(6, "rbtree:insert:add_link", BugKind.MISSING_TXADD, 1),
            bug(7, "rbtree:insert:add_count", BugKind.MISSING_TXADD, 1),
            bug(8, "rbtree:fixup:add_parent", BugKind.MISSING_TXADD, 2),
            bug(9, "rbtree:fixup:store_pcolor", BugKind.WRONG_VALUE, 2),
            bug(10, "rbtree:rotate:add_node", BugKind.MISSING_TXADD, 2),
            bug(11, "rbtree:rotate:store_root", BugKind.WRONG_VALUE, 2),
            bug(12, "rbtree:remove:add_victim", BugKind.MISSING_TXADD, 2),
            bug(13, "rbtree:transplant:add_link", BugKind.MISSING_TXADD, 1),
            bug(14, "rbtree:remove:store_count", BugKind.WRONG_VALUE, 1),
        )
