"""PM workloads: the eight programs of the paper's evaluation (Table 3).

Six PMDK-example key-value structures and two database applications,
rewritten against the simulated PMDK layer:

* :mod:`repro.workloads.btree` — order-4 B-Tree (``btree_map``)
* :mod:`repro.workloads.rbtree` — red-black tree (``rbtree_map``)
* :mod:`repro.workloads.rtree` — radix tree (``rtree_map``)
* :mod:`repro.workloads.skiplist` — skip list (``skiplist_map``)
* :mod:`repro.workloads.hashmap_tx` — transactional hashmap
* :mod:`repro.workloads.hashmap_atomic` — hashmap on low-level primitives
* :mod:`repro.workloads.memcached` — simplified PM-Memcached (pslab pool)
* :mod:`repro.workloads.redis` — simplified PM-Redis (volatile table +
  persistent table)

Each workload is driven by mapcli-style text commands
(:mod:`repro.workloads.mapcli`), carries the paper's 12 real-world bugs
as toggleable variants (:mod:`repro.workloads.realbugs`), and exposes the
Table-3 synthetic-bug injection sites (:mod:`repro.workloads.synthetic`).
"""

from repro.workloads.base import Command, RunOutcome, RunResult, Workload
from repro.workloads.mapcli import parse_commands, render_commands
from repro.workloads.realbugs import ALL_REAL_BUGS, RealBug, real_bugs_for
from repro.workloads.registry import WORKLOADS, get_workload, workload_names
from repro.workloads.synthetic import BugInjector, BugKind, SyntheticBug

__all__ = [
    "ALL_REAL_BUGS",
    "BugInjector",
    "BugKind",
    "Command",
    "RealBug",
    "RunOutcome",
    "RunResult",
    "SyntheticBug",
    "WORKLOADS",
    "Workload",
    "get_workload",
    "parse_commands",
    "real_bugs_for",
    "render_commands",
    "workload_names",
]
