"""mapcli-style command parsing.

The paper drives the PMDK key-value structures with ``mapcli`` and
converts the databases' socket protocols to a command-line form with
Preeny; the fuzzer then mutates the raw command bytes.  This module is
the shared parser: it turns an arbitrary byte string (possibly mutated
garbage) into a list of :class:`~repro.workloads.base.Command`.

Parsing is deliberately *tolerant*: an unparsable line is skipped rather
than aborting, so a mutated input still exercises the program — exactly
the behaviour mapcli has (it prints "unknown command" and reads on).

Grammar (one command per line)::

    i <key> <value>    insert / put / set
    g <key>            get / lookup
    r <key>            remove / delete
    x <key>            check (membership query)
    n                  count entries
    b                  workload-specific bulk op (e.g. hashmap rebuild)
    m                  minimum / first entry lookup
    q                  bounded scan (mapcli foreach analogue)
    h / s / v          help, statistics, version (volatile only)
    e/u/w <key>        echo, checksum, classify (volatile only)

Keys and values are parsed as decimal integers when possible; any other
token is hashed deterministically into the key space, so random mutated
bytes still map onto meaningful keys.
"""

from __future__ import annotations

from typing import List, Optional

from repro._util import stable_hash32
from repro.workloads.base import Command

#: Keys are folded into this space so mutated inputs collide and produce
#: interesting structure (splits, rebalances, bucket chains).  The space
#: is much larger than one bounded input can populate: deep structural
#: states (rebuilds, multi-level splits, slab exhaustion) are reachable
#: only by accumulating state across PM images, which is the property
#: that separates PMFuzz from the image-less baselines.
KEY_SPACE = 1024

#: Values get a larger space; only equality matters to the checkers.
VALUE_SPACE = 1 << 16

_OPS_WITH_KEY_VALUE = {"i"}
_OPS_WITH_KEY = {"g", "r", "x", "e", "u", "w"}
_OPS_BARE = {"n", "b", "m", "q", "h", "s", "v"}
VALID_OPS = _OPS_WITH_KEY_VALUE | _OPS_WITH_KEY | _OPS_BARE


def _parse_int(token: bytes, space: int) -> int:
    """Interpret a token as an integer in ``[0, space)``.

    Decimal tokens parse directly; anything else hashes stably, so the
    mapping from mutated bytes to keys is deterministic across runs.
    """
    try:
        return int(token) % space
    except ValueError:
        return stable_hash32(token.decode("latin-1")) % space


def parse_commands(data: bytes, max_commands: int = 64) -> List[Command]:
    """Parse raw input bytes into at most ``max_commands`` commands.

    The cap reproduces PMFuzz's bounded per-test-case execution (the
    150 ms limit of Section 4.6): a single test case performs a bounded
    amount of work and image mutation happens *incrementally* across the
    test-case tree, not in one giant input.
    """
    commands: List[Command] = []
    for line in data.split(b"\n"):
        if len(commands) >= max_commands:
            break
        tokens = line.split()
        if not tokens:
            continue
        op = tokens[0][:1].decode("latin-1").lower()
        if op not in VALID_OPS:
            continue
        key: Optional[int] = None
        value: Optional[int] = None
        if op in _OPS_WITH_KEY_VALUE:
            if len(tokens) < 2:
                continue
            key = _parse_int(tokens[1], KEY_SPACE)
            value = _parse_int(tokens[2], VALUE_SPACE) if len(tokens) > 2 else 0
        elif op in _OPS_WITH_KEY:
            if len(tokens) < 2:
                continue
            key = _parse_int(tokens[1], KEY_SPACE)
        commands.append(Command(op=op, key=key, value=value))
    return commands


def render_commands(commands: List[Command]) -> bytes:
    """Serialize commands back to canonical input bytes (inverse parse)."""
    lines = []
    for cmd in commands:
        if cmd.op in _OPS_WITH_KEY_VALUE:
            lines.append(f"{cmd.op} {cmd.key} {cmd.value}".encode())
        elif cmd.op in _OPS_WITH_KEY:
            lines.append(f"{cmd.op} {cmd.key}".encode())
        else:
            lines.append(cmd.op.encode())
    return b"\n".join(lines) + (b"\n" if lines else b"")
