"""Radix tree key-value store (PMDK ``rtree_map`` analogue).

PMDK's ``rtree_map`` is a radix tree over the key's bit string.  The
reproduction uses a fixed-stride radix tree: 8-bit keys consumed two
bits at a time through 4-way branch nodes, so every insert touches a
chain of up to four persistent nodes (a naturally long PM path), and
removal *prunes* empty branch nodes bottom-up — the deep path that
requires populated images to reach.

Hosts paper **Bug 4** (``init_not_retried``) and 16 synthetic-bug sites.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import CommandError
from repro.pmdk.layout import Array, OID, PStruct, U64, store_field
from repro.pmdk.pool import OID_NULL, PmemObjPool
from repro.workloads.base import Command, Workload
from repro.workloads.synthetic import BugKind, SyntheticBug

#: Two key bits consumed per level → 4 children per node.
STRIDE_BITS = 2
FANOUT = 1 << STRIDE_BITS
KEY_BITS = 8
DEPTH = KEY_BITS // STRIDE_BITS  # 4 levels below the root


class RTreeRoot(PStruct):
    """Pool root: pointer to the radix tree's top node."""

    _fields_ = [("tree_oid", OID)]


class RNode(PStruct):
    """A radix node: 4 children plus an optional stored value."""

    _fields_ = [
        ("children", Array(OID, FANOUT)),
        ("has_value", U64),
        ("value", U64),
        ("nchildren", U64),
    ]


def _digits(key: int) -> List[int]:
    """The key's 2-bit digits, most significant first."""
    return [(key >> (KEY_BITS - STRIDE_BITS * (i + 1))) & (FANOUT - 1)
            for i in range(DEPTH)]


class RTreeWorkload(Workload):
    """Driver for the radix tree."""

    name = "rtree"
    layout = "rtree"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create_structure(self, pool: PmemObjPool) -> None:
        root = pool.root(RTreeRoot, site="rtree:create:root")
        with pool.transaction() as tx:
            tx.add_field(root, "tree_oid", site="rtree:create:add_root")
            top = tx.znew(RNode, site="rtree:create:alloc_top")
            store_field(top, "nchildren", 0, site="rtree:create:store_n")
            root.tree_oid = top.offset

    def is_created(self, pool: PmemObjPool) -> bool:
        if pool.root_oid == OID_NULL:
            return False
        return pool.typed(pool.root_oid, RTreeRoot).tree_oid != OID_NULL

    def recover(self, pool: PmemObjPool) -> None:
        """Open-time check: descend the first occupied branch.

        PM reads here only happen when the image carries entries — an
        image-gated code region (Requirement 1).
        """
        if not self.is_created(pool):
            return
        node = self._top(pool)
        for _ in range(DEPTH):
            child = OID_NULL
            for i in range(FANOUT):
                child = node.children[i]
                if child != OID_NULL:
                    break
            if child == OID_NULL:
                return
            node = pool.typed(child, RNode)
        _ = node.value  # first stored value (PM read)

    def _top(self, pool: PmemObjPool) -> RNode:
        root = pool.typed(pool.root_oid, RTreeRoot)
        return pool.typed(root.tree_oid, RNode)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def exec_command(self, pool: PmemObjPool, cmd: Command) -> Optional[str]:
        if cmd.op == "i":
            return self._insert(pool, cmd.key, cmd.value or 0)
        if cmd.op == "g":
            found = self._lookup(pool, cmd.key)
            return "none" if found is None else str(found)
        if cmd.op == "r":
            return self._remove(pool, cmd.key)
        if cmd.op == "x":
            return "1" if self._lookup(pool, cmd.key) is not None else "0"
        if cmd.op == "n":
            return str(self._count(pool, self._top(pool), 0))
        if cmd.op == "m":
            node = self._top(pool)
            key = 0
            for level in range(DEPTH):
                child = OID_NULL
                digit = 0
                for i in range(FANOUT):
                    if node.children[i] != OID_NULL:
                        child = node.children[i]
                        digit = i
                        break
                if child == OID_NULL:
                    return "none"
                key = (key << STRIDE_BITS) | digit
                node = pool.typed(child, RNode)
            return f"{key}={node.value}" if node.has_value else "none"
        if cmd.op == "q":
            out: List[str] = []
            self._scan(pool, self._top(pool), 0, 0, out)
            return ",".join(out)
        if cmd.op == "b":
            return "noop"
        raise CommandError(f"unknown op {cmd.op!r}")

    def _scan(self, pool: PmemObjPool, node: RNode, depth: int, prefix: int,
              out: List[str], limit: int = 24) -> None:
        """Bounded DFS over stored values (mapcli foreach analogue)."""
        if len(out) >= limit:
            return
        if depth == DEPTH:
            if node.has_value:
                out.append(str(prefix))
            return
        for i in range(FANOUT):
            child = node.children[i]
            if child != OID_NULL:
                self._scan(pool, pool.typed(child, RNode), depth + 1,
                           (prefix << STRIDE_BITS) | i, out, limit)
                if len(out) >= limit:
                    return

    def _lookup(self, pool: PmemObjPool, key: int) -> Optional[int]:
        node = self._top(pool)
        for digit in _digits(key):
            child = node.children[digit]
            if child == OID_NULL:
                return None
            node = pool.typed(child, RNode)
        return node.value if node.has_value else None

    def _count(self, pool: PmemObjPool, node: RNode, depth: int) -> int:
        total = 1 if node.has_value else 0
        if depth >= DEPTH:
            return total
        for i in range(FANOUT):
            child = node.children[i]
            if child != OID_NULL:
                total += self._count(pool, pool.typed(child, RNode), depth + 1)
        return total

    # ------------------------------------------------------------------
    # Insert / remove
    # ------------------------------------------------------------------
    def _insert(self, pool: PmemObjPool, key: int, value: int) -> str:
        with pool.transaction() as tx:
            node = self._top(pool)
            for digit in _digits(key):
                child = node.children[digit]
                if child == OID_NULL:
                    fresh = tx.znew(RNode, site="rtree:insert:alloc_node")
                    tx.add(node.field_addr("children") + 8 * digit, 8,
                           site="rtree:insert:add_childslot")
                    pool.write(node.field_addr("children") + 8 * digit,
                               fresh.offset.to_bytes(8, "little"),
                               site="rtree:insert:store_childslot")
                    tx.add_field(node, "nchildren", site="rtree:insert:add_nchildren")
                    store_field(node, "nchildren", node.nchildren + 1,
                                site="rtree:insert:store_nchildren")
                    node = fresh
                else:
                    node = pool.typed(child, RNode)
            existed = node.has_value != 0
            tx.add_field(node, "value", site="rtree:insert:add_value")
            store_field(node, "value", value, site="rtree:insert:store_value")
            tx.add_field(node, "has_value", site="rtree:insert:add_hasvalue")
            store_field(node, "has_value", 1, site="rtree:insert:store_hasvalue")
        return "updated" if existed else "inserted"

    def _remove(self, pool: PmemObjPool, key: int) -> str:
        with pool.transaction() as tx:
            path: List[RNode] = [self._top(pool)]
            digits = _digits(key)
            for digit in digits:
                child = path[-1].children[digit]
                if child == OID_NULL:
                    return "none"
                path.append(pool.typed(child, RNode))
            leaf = path[-1]
            if not leaf.has_value:
                return "none"
            tx.add_field(leaf, "has_value", site="rtree:remove:add_hasvalue")
            store_field(leaf, "has_value", 0, site="rtree:remove:store_hasvalue")
            # Prune: free now-empty nodes bottom-up (the deep PM path).
            for level in range(DEPTH, 0, -1):
                node = path[level]
                if node.has_value or node.nchildren:
                    break
                parent = path[level - 1]
                digit = digits[level - 1]
                tx.add(parent.field_addr("children") + 8 * digit, 8,
                       site="rtree:prune:add_childslot")
                pool.write(parent.field_addr("children") + 8 * digit,
                           OID_NULL.to_bytes(8, "little"),
                           site="rtree:prune:store_childslot")
                tx.add_field(parent, "nchildren", site="rtree:prune:add_nchildren")
                store_field(parent, "nchildren", parent.nchildren - 1,
                            site="rtree:prune:store_nchildren")
                tx.free(node.offset, site="rtree:prune:free_node")
        return "removed"

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------
    def check_consistency(self, pool: PmemObjPool) -> List[str]:
        violations: List[str] = []
        if not self.is_created(pool):
            return violations
        self._check_node(pool, self._top(pool), 0, violations)
        return violations

    def _check_node(self, pool: PmemObjPool, node: RNode, depth: int,
                    violations: List[str]) -> None:
        if depth > DEPTH:
            violations.append("radix node below leaf level")
            return
        actual = sum(1 for i in range(FANOUT) if node.children[i] != OID_NULL)
        if actual != node.nchildren:
            violations.append(
                f"nchildren {node.nchildren} != actual {actual} "
                f"at depth {depth}"
            )
        if depth == DEPTH and actual:
            violations.append("leaf node has children")
        if node.has_value not in (0, 1):
            violations.append(f"has_value flag corrupted at depth {depth}")
        if depth < DEPTH and node.has_value:
            violations.append(f"interior node at depth {depth} holds a value")
        for i in range(FANOUT):
            child = node.children[i]
            if child != OID_NULL:
                self._check_node(pool, pool.typed(child, RNode), depth + 1,
                                 violations)

    # ------------------------------------------------------------------
    # Synthetic bugs (16 sites, Table 3)
    # ------------------------------------------------------------------
    def synthetic_bugs(self) -> Sequence[SyntheticBug]:
        def bug(i: int, site: str, kind: BugKind, depth: int) -> SyntheticBug:
            return SyntheticBug(f"rtree:s{i:02d}", site, kind, depth)

        return (
            bug(1, "rtree:create:add_root", BugKind.MISSING_TXADD, 0),
            bug(2, "rtree:create:store_n", BugKind.WRONG_VALUE, 0),
            bug(3, "rtree:insert:add_childslot", BugKind.MISSING_TXADD, 1),
            bug(4, "rtree:insert:store_childslot", BugKind.WRONG_VALUE, 1),
            bug(5, "rtree:insert:add_nchildren", BugKind.MISSING_TXADD, 1),
            bug(6, "rtree:insert:store_nchildren", BugKind.WRONG_VALUE, 1),
            bug(7, "rtree:insert:add_value", BugKind.MISSING_TXADD, 1),
            bug(8, "rtree:insert:store_value", BugKind.WRONG_VALUE, 1),
            bug(9, "rtree:insert:add_hasvalue", BugKind.MISSING_TXADD, 1),
            bug(10, "rtree:insert:store_hasvalue", BugKind.WRONG_VALUE, 1),
            bug(11, "rtree:remove:add_hasvalue", BugKind.MISSING_TXADD, 1),
            bug(12, "rtree:remove:store_hasvalue", BugKind.WRONG_VALUE, 1),
            bug(13, "rtree:prune:add_childslot", BugKind.MISSING_TXADD, 2),
            bug(14, "rtree:prune:store_childslot", BugKind.WRONG_VALUE, 2),
            bug(15, "rtree:prune:add_nchildren", BugKind.MISSING_TXADD, 2),
            bug(16, "rtree:prune:store_nchildren", BugKind.WRONG_VALUE, 2),
        )
