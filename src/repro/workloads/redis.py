"""Simplified PM-Redis (the Intel ``pmem/redis`` analogue).

The PM port of Redis keeps its serving dictionary in DRAM and mirrors
every write into a persistent table, reconstructing the DRAM dictionary
from PM at startup (the paper's Example 2 / Figure 3 shape):

* **Persistent**: a bucketed table where each bucket is a singly-linked
  entry list with head *and* tail pointers (appends go to the tail —
  the code region Example 2's crash-consistency bug lives in; this
  reproduction implements the *correct* tail backup).
* **Volatile**: the serving dictionary, a RESP-ish protocol layer, and
  expiry/statistics bookkeeping — the DRAM bulk that gives Redis the low
  PM-path counts of Figure 13.

14 synthetic-bug sites (Table 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import CommandError
from repro.pmdk.layout import OID, PStruct, U64, store_field
from repro.pmdk.pool import OID_NULL, PmemObjPool
from repro.workloads.base import Command, Workload
from repro.workloads.synthetic import BugKind, SyntheticBug

NBUCKETS = 16


class RedisRoot(PStruct):
    """Pool root: pointer to the database object."""

    _fields_ = [("db_oid", OID)]


class RedisDB(PStruct):
    """Database header."""

    _fields_ = [("nbuckets", U64), ("count", U64), ("table_oid", OID)]


class Bucket(PStruct):
    """A bucket header: head and tail of the entry list."""

    _fields_ = [("head", OID), ("tail", OID)]


class REntry(PStruct):
    """A persistent key-value entry."""

    _fields_ = [("key", U64), ("value", U64), ("next", OID)]


class RedisWorkload(Workload):
    """Driver for the simplified PM-Redis."""

    name = "redis"
    layout = "redis"

    def __init__(self, bugs=frozenset()) -> None:
        super().__init__(bugs)
        self._dict: Dict[int, int] = {}  # DRAM serving dictionary
        self._dirty_protocol_bytes = 0  # volatile protocol statistics

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create_structure(self, pool: PmemObjPool) -> None:
        root = pool.root(RedisRoot, site="redis:create:root")
        with pool.transaction() as tx:
            tx.add_field(root, "db_oid", site="redis:create:add_root")
            db = tx.znew(RedisDB, site="redis:create:alloc_db")
            store_field(db, "nbuckets", NBUCKETS, site="redis:create:store_nbuckets")
            table = tx.zalloc(Bucket._size_ * NBUCKETS,
                              site="redis:create:alloc_table")
            store_field(db, "table_oid", table, site="redis:create:store_table")
            store_field(db, "count", 0, site="redis:create:store_count")
            root.db_oid = db.offset

    def is_created(self, pool: PmemObjPool) -> bool:
        if pool.root_oid == OID_NULL:
            return False
        return pool.typed(pool.root_oid, RedisRoot).db_oid != OID_NULL

    def recover(self, pool: PmemObjPool) -> None:
        """``PMReconstruct``: rebuild the DRAM dictionary from PM."""
        self._dict.clear()
        if not self.is_created(pool):
            return
        db = self._db(pool)
        for i in range(db.nbuckets):
            bucket = self._bucket(pool, db, i)
            cur = bucket.head
            steps = 0
            while cur != OID_NULL and steps < 4096:
                steps += 1
                entry = pool.typed(cur, REntry)
                self._dict[entry.key] = entry.value
                cur = entry.next

    def _db(self, pool: PmemObjPool) -> RedisDB:
        root = pool.typed(pool.root_oid, RedisRoot)
        return pool.typed(root.db_oid, RedisDB)

    def _bucket(self, pool: PmemObjPool, db: RedisDB, index: int) -> Bucket:
        return pool.typed(db.table_oid + index * Bucket._size_, Bucket)

    # ------------------------------------------------------------------
    # Volatile protocol layer (RESP-ish round trip)
    # ------------------------------------------------------------------
    _VERBS = {"i": "SET", "g": "GET", "r": "DEL", "x": "EXISTS", "n": "DBSIZE",
              "b": "FLUSHDB", "m": "RANDOMKEY", "q": "KEYS"}

    def _encode_resp(self, verb: str, cmd: Command) -> List[bytes]:
        """Render the command as a RESP array (pure DRAM work)."""
        parts = [verb.encode()]
        if cmd.key is not None:
            parts.append(str(cmd.key).encode())
        if cmd.value is not None:
            parts.append(str(cmd.value).encode())
        frame = b"*%d\r\n" % len(parts)
        for part in parts:
            frame += b"$%d\r\n%s\r\n" % (len(part), part)
        self._dirty_protocol_bytes += len(frame)
        # Re-parse (what the server side would do with the socket bytes).
        tokens: List[bytes] = []
        for line in frame.split(b"\r\n"):
            if line and not line.startswith((b"*", b"$")):
                tokens.append(line)
        return tokens

    def exec_command(self, pool: PmemObjPool, cmd: Command) -> Optional[str]:
        verb = self._VERBS.get(cmd.op)
        if verb is None:
            raise CommandError(f"unknown op {cmd.op!r}")
        tokens = self._encode_resp(verb, cmd)
        if not tokens or tokens[0].decode() != verb:
            raise CommandError("protocol round-trip failed")
        if verb == "SET":
            return self._put(pool, cmd.key, cmd.value or 0)
        if verb == "GET":
            value = self._dict.get(cmd.key)
            return "none" if value is None else str(value)
        if verb == "DEL":
            return self._delete(pool, cmd.key)
        if verb == "EXISTS":
            return "1" if cmd.key in self._dict else "0"
        if verb == "DBSIZE":
            return str(self._db(pool).count)
        if verb == "FLUSHDB":
            removed = 0
            for key in sorted(self._dict):
                self._delete(pool, key)
                removed += 1
            return f"flushed {removed}"
        if verb == "RANDOMKEY":
            return self._first_key(pool)
        if verb == "KEYS":
            return ",".join(self._scan(pool))
        raise CommandError(f"unhandled verb {verb}")

    def _first_key(self, pool: PmemObjPool) -> str:
        """Read the first persistent entry (PM read, occupancy-gated)."""
        db = self._db(pool)
        for i in range(db.nbuckets):
            bucket = self._bucket(pool, db, i)
            if bucket.head != OID_NULL:
                entry = pool.typed(bucket.head, REntry)
                return f"{entry.key}={entry.value}"
        return "none"

    def _scan(self, pool: PmemObjPool, limit: int = 24) -> List[str]:
        """``KEYS *``: bounded walk over the persistent table."""
        out: List[str] = []
        db = self._db(pool)
        for i in range(db.nbuckets):
            bucket = self._bucket(pool, db, i)
            cur = bucket.head
            steps = 0
            while cur != OID_NULL and steps < 64 and len(out) < limit:
                steps += 1
                entry = pool.typed(cur, REntry)
                out.append(str(entry.key))
                cur = entry.next
            if len(out) >= limit:
                break
        return out

    # ------------------------------------------------------------------
    # Persistent operations
    # ------------------------------------------------------------------
    def _put(self, pool: PmemObjPool, key: int, value: int) -> str:
        db = self._db(pool)
        index = key % db.nbuckets
        with pool.transaction() as tx:
            bucket = self._bucket(pool, db, index)
            # Update in place when present.
            cur = bucket.head
            steps = 0
            while cur != OID_NULL and steps < 4096:
                steps += 1
                entry = pool.typed(cur, REntry)
                if entry.key == key:
                    tx.add_field(entry, "value", site="redis:put:add_value")
                    store_field(entry, "value", value, site="redis:put:store_value")
                    self._dict[key] = value
                    return "updated"
                cur = entry.next
            # Append at the tail (Example 2's code region, done right:
            # both the tail pointer and the tail entry's next are logged).
            new = tx.znew(REntry, site="redis:put:alloc_entry")
            store_field(new, "key", key, site="redis:put:store_key")
            store_field(new, "value", value, site="redis:put:store_newvalue")
            if bucket.head == OID_NULL:
                tx.add_struct(bucket, site="redis:put:add_bucket")
                store_field(bucket, "head", new.offset, site="redis:put:store_head")
                store_field(bucket, "tail", new.offset, site="redis:put:store_tail")
            else:
                tail_entry = pool.typed(bucket.tail, REntry)
                tx.add_field(tail_entry, "next", site="redis:put:add_tailnext")
                store_field(tail_entry, "next", new.offset,
                            site="redis:put:store_tailnext")
                tx.add_field(bucket, "tail", site="redis:put:add_tail")
                store_field(bucket, "tail", new.offset,
                            site="redis:put:store_tail2")
            tx.add_field(db, "count", site="redis:put:add_count")
            store_field(db, "count", db.count + 1, site="redis:put:store_count")
        self._dict[key] = value
        return "inserted"

    def _delete(self, pool: PmemObjPool, key: int) -> str:
        db = self._db(pool)
        index = key % db.nbuckets
        with pool.transaction() as tx:
            bucket = self._bucket(pool, db, index)
            prev = OID_NULL
            cur = bucket.head
            steps = 0
            while cur != OID_NULL and steps < 4096:
                steps += 1
                entry = pool.typed(cur, REntry)
                if entry.key == key:
                    nxt = entry.next
                    if prev == OID_NULL:
                        tx.add_field(bucket, "head", site="redis:del:add_head")
                        store_field(bucket, "head", nxt, site="redis:del:store_head")
                    else:
                        prev_entry = pool.typed(prev, REntry)
                        tx.add_field(prev_entry, "next", site="redis:del:add_prev")
                        store_field(prev_entry, "next", nxt,
                                    site="redis:del:store_prev")
                    if bucket.tail == cur:
                        tx.add_field(bucket, "tail", site="redis:del:add_tail")
                        store_field(bucket, "tail", prev, site="redis:del:store_tail")
                    tx.free(cur, site="redis:del:free_entry")
                    tx.add_field(db, "count", site="redis:del:add_count")
                    store_field(db, "count", db.count - 1,
                                site="redis:del:store_count")
                    self._dict.pop(key, None)
                    return "removed"
                prev = cur
                cur = entry.next
        return "none"

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------
    def check_consistency(self, pool: PmemObjPool) -> List[str]:
        violations: List[str] = []
        if not self.is_created(pool):
            return violations
        db = self._db(pool)
        if db.nbuckets != NBUCKETS:
            return [f"nbuckets corrupted: {db.nbuckets}"]
        total = 0
        for i in range(db.nbuckets):
            bucket = self._bucket(pool, db, i)
            seen = set()
            last = OID_NULL
            cur = bucket.head
            while cur != OID_NULL:
                if cur in seen:
                    violations.append(f"cycle in bucket {i}")
                    return violations
                seen.add(cur)
                entry = pool.typed(cur, REntry)
                if entry.key % db.nbuckets != i:
                    violations.append(f"key {entry.key} in wrong bucket {i}")
                total += 1
                last = cur
                cur = entry.next
            if bucket.tail != last:
                violations.append(f"bucket {i} tail does not match list end")
        if total != db.count:
            violations.append(f"count {db.count} != actual {total}")
        return violations

    # ------------------------------------------------------------------
    # Synthetic bugs (14 sites, Table 3)
    # ------------------------------------------------------------------
    def synthetic_bugs(self) -> Sequence[SyntheticBug]:
        def bug(i: int, site: str, kind: BugKind, depth: int) -> SyntheticBug:
            return SyntheticBug(f"redis:s{i:02d}", site, kind, depth)

        return (
            bug(1, "redis:create:add_root", BugKind.MISSING_TXADD, 0),
            bug(2, "redis:create:store_nbuckets", BugKind.WRONG_VALUE, 0),
            bug(3, "redis:create:store_table", BugKind.WRONG_VALUE, 0),
            bug(4, "redis:put:add_value", BugKind.MISSING_TXADD, 1),
            bug(5, "redis:put:store_key", BugKind.WRONG_VALUE, 1),
            bug(6, "redis:put:add_bucket", BugKind.MISSING_TXADD, 1),
            bug(7, "redis:put:store_tail", BugKind.WRONG_VALUE, 1),
            bug(8, "redis:put:add_tailnext", BugKind.MISSING_TXADD, 1),
            bug(9, "redis:put:store_tail2", BugKind.WRONG_VALUE, 1),
            bug(10, "redis:put:add_count", BugKind.MISSING_TXADD, 1),
            bug(11, "redis:del:add_head", BugKind.MISSING_TXADD, 1),
            bug(12, "redis:del:add_prev", BugKind.MISSING_TXADD, 2),
            bug(13, "redis:del:add_tail", BugKind.MISSING_TXADD, 2),
            bug(14, "redis:del:store_count", BugKind.WRONG_VALUE, 1),
        )
