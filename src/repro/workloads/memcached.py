"""Simplified PM-Memcached (the Lenovo ``memcached-pmem`` analogue).

The real port keeps its item metadata, LRU chains, and protocol handling
in DRAM and persists item payloads in a *persistent slab pool* (pslab).
The reproduction keeps that architecture:

* **Persistent**: a fixed array of item slots inside the pool, created
  by :meth:`_pslab_create` with the same shape as the paper's Figure 15a
  (zero the pool, flush, commit a valid flag) — including **paper
  Bug 7**: per-slot ``pmem_memset_nodrain`` flushes that the whole-pool
  flush immediately repeats.
* **Volatile**: a key → slot index, an LRU order list, hit/miss
  statistics and memcached-ish command aliasing.  This volatile bulk is
  deliberate: the paper notes the databases have far fewer PM paths
  because "only a relatively small fraction of code manages PM".

17 synthetic-bug sites (Table 3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from repro.errors import CommandError
from repro.pmdk import libpmem
from repro.pmdk.layout import Bytes, OID, PStruct, U64, store_field
from repro.pmdk.pool import OID_NULL, PmemObjPool
from repro.workloads.base import Command, Workload
from repro.workloads.synthetic import BugKind, SyntheticBug

NSLOTS = 48


class PslabRoot(PStruct):
    """Pool root: the slab pool descriptor."""

    _fields_ = [("valid", U64), ("nslots", U64), ("slots_oid", OID)]


class Slot(PStruct):
    """One item slot (persisted payload + commit flag).

    The ``used`` commit flag sits on its own cache line: persisting the
    payload must not incidentally persist the flag (and vice versa), or
    the payload-before-flag ordering would be unanalyzable.
    """

    _fields_ = [
        ("key", U64), ("value", U64), ("version", U64), ("_pad0", Bytes(40)),
        ("used", U64), ("_pad1", Bytes(56)),
    ]


class MemcachedWorkload(Workload):
    """Driver for the simplified PM-Memcached."""

    name = "memcached"
    layout = "memcached"

    def __init__(self, bugs=frozenset()) -> None:
        super().__init__(bugs)
        # DRAM state, rebuilt from the slab pool at open (never persisted).
        self._index: Dict[int, int] = {}
        self._lru: "OrderedDict[int, None]" = OrderedDict()
        self._stats = {"get_hits": 0, "get_misses": 0, "sets": 0, "deletes": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create_structure(self, pool: PmemObjPool) -> None:
        self._pslab_create(pool)

    def _pslab_create(self, pool: PmemObjPool) -> None:
        """``pslab_create`` (paper Figure 15a).

        Buggy variant: each slot is zeroed with ``pmem_memset_nodrain``
        (a flush per slot), *then* the whole region is persisted — the
        per-slot flushes are pure overhead (Bug 7).  Fixed variant: plain
        stores, one covering persist.
        """
        root = pool.root(PslabRoot, site="memcached:pslab:root")
        slots_oid = pool.alloc(Slot._size_ * NSLOTS,
                               site="memcached:pslab:alloc_slots")
        total = Slot._size_ * NSLOTS
        # Zero the region (stores only; persistence handled below).
        pool.write(slots_oid, b"\0" * total, site="memcached:pslab:zero")
        if "bug7_redundant_flush" in self.bugs:
            for i in range(NSLOTS):
                libpmem.pmem_memset_nodrain(
                    pool.domain, slots_oid + i * Slot._size_, 0, Slot._size_,
                    site="memcached:pslab:memset_slot")
        # Flush the whole pool region (subsumes any per-slot flush).
        pool.persist(slots_oid, total, site="memcached:pslab:persist_all")
        store_field(root, "slots_oid", slots_oid,
                    site="memcached:pslab:store_slots")
        store_field(root, "nslots", NSLOTS, site="memcached:pslab:store_nslots")
        pool.persist(root.offset, PslabRoot._size_,
                     site="memcached:pslab:persist_meta")
        # Commit the creation with the valid flag (ordered last).
        store_field(root, "valid", 1, site="memcached:pslab:store_valid")
        pool.persist(root.field_addr("valid"), 8,
                     site="memcached:pslab:persist_valid")

    def is_created(self, pool: PmemObjPool) -> bool:
        if pool.root_oid == OID_NULL:
            return False
        root = pool.typed(pool.root_oid, PslabRoot)
        return root.valid == 1 and root.slots_oid != OID_NULL

    def recover(self, pool: PmemObjPool) -> None:
        """Rebuild the DRAM index/LRU by scanning the slab pool."""
        self._index.clear()
        self._lru.clear()
        if not self.is_created(pool):
            return
        root = pool.typed(pool.root_oid, PslabRoot)
        for i in range(min(root.nslots, NSLOTS)):
            slot = self._slot(pool, root, i)
            if slot.used:
                self._index[slot.key] = i
                self._lru[slot.key] = None

    @staticmethod
    def _slot(pool: PmemObjPool, root: PslabRoot, index: int) -> Slot:
        return pool.typed(root.slots_oid + index * Slot._size_, Slot)

    # ------------------------------------------------------------------
    # Volatile protocol layer
    # ------------------------------------------------------------------
    _ALIASES = {
        "i": "set", "g": "get", "r": "delete", "x": "touch", "n": "stats",
        "b": "flush_all", "m": "lru_head", "q": "cachedump",
    }

    def exec_command(self, pool: PmemObjPool, cmd: Command) -> Optional[str]:
        verb = self._ALIASES.get(cmd.op)
        if verb is None:
            raise CommandError(f"unknown op {cmd.op!r}")
        # Volatile protocol bookkeeping (deliberately branchy DRAM code).
        if verb == "get":
            if cmd.key in self._index:
                self._stats["get_hits"] += 1
                self._lru.move_to_end(cmd.key)
            else:
                self._stats["get_misses"] += 1
        elif verb == "set":
            self._stats["sets"] += 1
        elif verb == "delete":
            self._stats["deletes"] += 1
        handler = getattr(self, f"_cmd_{verb}")
        return handler(pool, cmd)

    def _cmd_stats(self, pool: PmemObjPool, cmd: Command) -> str:
        parts = [f"{k}={v}" for k, v in sorted(self._stats.items())]
        parts.append(f"curr_items={len(self._index)}")
        return " ".join(parts)

    def _cmd_flush_all(self, pool: PmemObjPool, cmd: Command) -> str:
        """Delete every item (memcached ``flush_all``)."""
        removed = 0
        for key in list(self._index):
            self._cmd_delete(pool, Command("r", key))
            removed += 1
        return f"flushed {removed}"

    def _cmd_lru_head(self, pool: PmemObjPool, cmd: Command) -> str:
        """Read the LRU-oldest item's slot (PM read, gated on occupancy)."""
        if not self._lru:
            return "none"
        oldest = next(iter(self._lru))
        slot_index = self._index.get(oldest)
        if slot_index is None:
            return "none"
        root = pool.typed(pool.root_oid, PslabRoot)
        slot = self._slot(pool, root, slot_index)
        return f"{slot.key}={slot.value}"

    def _cmd_cachedump(self, pool: PmemObjPool, cmd: Command) -> str:
        """memcached ``stats cachedump``: scan used slots (bounded)."""
        root = pool.typed(pool.root_oid, PslabRoot)
        out = []
        for i in range(NSLOTS):
            if len(out) >= 24:
                break
            slot = self._slot(pool, root, i)
            if slot.used:
                out.append(f"{slot.key}={slot.value}v{slot.version}")
        return ",".join(out)

    def _cmd_get(self, pool: PmemObjPool, cmd: Command) -> str:
        slot_index = self._index.get(cmd.key)
        if slot_index is None:
            return "none"
        root = pool.typed(pool.root_oid, PslabRoot)
        slot = self._slot(pool, root, slot_index)
        if not slot.used or slot.key != cmd.key:
            return "none"  # stale DRAM index entry
        return str(slot.value)

    def _cmd_set(self, pool: PmemObjPool, cmd: Command) -> str:
        root = pool.typed(pool.root_oid, PslabRoot)
        existing = self._index.get(cmd.key)
        if existing is not None:
            slot = self._slot(pool, root, existing)
            store_field(slot, "value", cmd.value or 0,
                        site="memcached:set:update_value")
            store_field(slot, "version", slot.version + 1,
                        site="memcached:set:update_version")
            pool.persist(slot.offset, Slot._size_,
                         site="memcached:set:persist_update")
            self._lru.move_to_end(cmd.key)
            return "stored"
        slot_index = self._find_free_slot(pool, root)
        if slot_index is None:
            # Evict the LRU item (volatile policy, persistent delete).
            victim, _ = self._lru.popitem(last=False)
            self._cmd_delete(pool, Command("r", victim))
            slot_index = self._find_free_slot(pool, root)
            if slot_index is None:
                return "error"
        slot = self._slot(pool, root, slot_index)
        # Payload first, persist, then the used flag (the commit point).
        store_field(slot, "key", cmd.key, site="memcached:set:store_key")
        store_field(slot, "value", cmd.value or 0,
                    site="memcached:set:store_value")
        store_field(slot, "version", 1, site="memcached:set:store_version")
        pool.persist(slot.offset, Slot._size_,
                     site="memcached:set:persist_payload")
        store_field(slot, "used", 1, site="memcached:set:set_used")
        pool.persist(slot.field_addr("used"), 8,
                     site="memcached:set:persist_used")
        self._index[cmd.key] = slot_index
        self._lru[cmd.key] = None
        return "stored"

    def _cmd_delete(self, pool: PmemObjPool, cmd: Command) -> str:
        slot_index = self._index.get(cmd.key)
        if slot_index is None:
            return "none"
        root = pool.typed(pool.root_oid, PslabRoot)
        slot = self._slot(pool, root, slot_index)
        store_field(slot, "used", 0, site="memcached:delete:clear_used")
        pool.persist(slot.field_addr("used"), 8,
                     site="memcached:delete:persist_clear")
        self._index.pop(cmd.key, None)
        self._lru.pop(cmd.key, None)
        return "deleted"

    def _cmd_touch(self, pool: PmemObjPool, cmd: Command) -> str:
        slot_index = self._index.get(cmd.key)
        if slot_index is None:
            return "0"
        root = pool.typed(pool.root_oid, PslabRoot)
        slot = self._slot(pool, root, slot_index)
        store_field(slot, "version", slot.version + 1,
                    site="memcached:touch:store_version")
        pool.persist(slot.field_addr("version"), 8,
                     site="memcached:touch:persist_version")
        self._lru.move_to_end(cmd.key)
        return "1"

    def _find_free_slot(self, pool: PmemObjPool, root: PslabRoot) -> Optional[int]:
        used_indices = set(self._index.values())
        for i in range(NSLOTS):
            if i not in used_indices:
                slot = self._slot(pool, root, i)
                if not slot.used:
                    return i
        return None

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------
    def check_consistency(self, pool: PmemObjPool) -> List[str]:
        violations: List[str] = []
        if pool.root_oid == OID_NULL:
            return violations
        root = pool.typed(pool.root_oid, PslabRoot)
        if root.valid == 0:
            return violations  # uncommitted creation: treated as absent
        if root.valid != 1 or root.nslots != NSLOTS:
            return [f"slab metadata corrupt: valid={root.valid} "
                    f"nslots={root.nslots}"]
        seen_keys = set()
        for i in range(NSLOTS):
            slot = self._slot(pool, root, i)
            if slot.used:
                if slot.used != 1:
                    violations.append(f"slot {i} used flag corrupt: {slot.used}")
                if slot.key in seen_keys:
                    violations.append(f"duplicate key {slot.key} in slot {i}")
                seen_keys.add(slot.key)
                if slot.version == 0:
                    violations.append(f"slot {i} committed with version 0")
                if slot.version > 1 << 32:
                    violations.append(f"slot {i} version counter corrupt")
        return violations

    # ------------------------------------------------------------------
    # Synthetic bugs (17 sites, Table 3)
    # ------------------------------------------------------------------
    def synthetic_bugs(self) -> Sequence[SyntheticBug]:
        def bug(i: int, site: str, kind: BugKind, depth: int) -> SyntheticBug:
            return SyntheticBug(f"memcached:s{i:02d}", site, kind, depth)

        return (
            bug(1, "memcached:pslab:persist_all", BugKind.MISSING_FLUSH, 0),
            bug(2, "memcached:pslab:store_slots", BugKind.WRONG_VALUE, 0),
            bug(3, "memcached:pslab:store_nslots", BugKind.WRONG_VALUE, 0),
            bug(4, "memcached:pslab:persist_meta", BugKind.MISSING_FENCE, 0),
            bug(5, "memcached:pslab:store_valid", BugKind.WRONG_VALUE, 0),
            bug(6, "memcached:pslab:persist_valid", BugKind.MISSING_FLUSH, 0),
            bug(7, "memcached:set:store_key", BugKind.WRONG_VALUE, 1),
            bug(8, "memcached:set:store_value", BugKind.WRONG_VALUE, 1),
            bug(9, "memcached:set:persist_payload", BugKind.MISSING_FLUSH, 1),
            bug(10, "memcached:set:set_used", BugKind.WRONG_VALUE, 1),
            bug(11, "memcached:set:persist_used", BugKind.MISSING_FENCE, 1),
            bug(12, "memcached:set:update_value", BugKind.WRONG_VALUE, 1),
            bug(13, "memcached:set:persist_update", BugKind.MISSING_FLUSH, 1),
            bug(14, "memcached:delete:clear_used", BugKind.WRONG_VALUE, 1),
            bug(15, "memcached:delete:persist_clear", BugKind.MISSING_FLUSH, 1),
            bug(16, "memcached:touch:persist_version", BugKind.MISSING_FLUSH, 2),
            bug(17, "memcached:touch:store_version", BugKind.WRONG_VALUE, 2),
        )
