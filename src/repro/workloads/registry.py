"""Workload registry: name → class, for drivers and benchmarks."""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Type

from repro.workloads.base import Workload


def _load() -> Dict[str, Type[Workload]]:
    from repro.workloads.btree import BTreeWorkload
    from repro.workloads.hashmap_atomic import HashmapAtomicWorkload
    from repro.workloads.hashmap_tx import HashmapTxWorkload
    from repro.workloads.memcached import MemcachedWorkload
    from repro.workloads.rbtree import RBTreeWorkload
    from repro.workloads.redis import RedisWorkload
    from repro.workloads.rtree import RTreeWorkload
    from repro.workloads.skiplist import SkipListWorkload

    classes = (
        BTreeWorkload,
        RBTreeWorkload,
        RTreeWorkload,
        SkipListWorkload,
        HashmapTxWorkload,
        HashmapAtomicWorkload,
        MemcachedWorkload,
        RedisWorkload,
    )
    return {cls.name: cls for cls in classes}


#: Lazily populated name → class map (import cost paid once).
WORKLOADS: Dict[str, Type[Workload]] = {}


def _ensure_loaded() -> None:
    if not WORKLOADS:
        WORKLOADS.update(_load())


def workload_names() -> List[str]:
    """All eight workload names, in the paper's Table 3 order."""
    _ensure_loaded()
    return list(WORKLOADS)


def get_workload(name: str, bugs: FrozenSet[str] = frozenset()) -> Workload:
    """Instantiate a workload by name with the given real-bug flags."""
    _ensure_loaded()
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None
    return cls(bugs=bugs)
