"""Hashmap-Atomic: chained hashmap on low-level PM primitives.

Unlike the transactional workloads, this program manages crash
consistency by hand, exactly like PMDK's ``hashmap_atomic``: every
update is bracketed by a persistent *commit variable*, the
``count_dirty`` flag:

1. ``count_dirty = 1``; persist                 (open the window)
2. mutate + persist the entry/bucket/count
3. ``count_dirty = 0``; persist                 (close the window)

If a failure lands inside the window, the count may disagree with the
chains; the application-level recovery procedure
(:meth:`HashmapAtomicWorkload.recover` — ``hashmap_atomic_init``)
recounts and repairs.  **Paper Bug 6**: the mapcli driver assumes every
structure recovers automatically through transactions and never calls
this function — the reproduction's ``bug6_no_recovery_call`` flag.
Detecting it requires a crash image with ``count_dirty = 1``, the
paper's example of a state "not easy to reach without a PM-specific
test case generator" (it took PMFuzz 37 s).

14 synthetic-bug sites (Table 3), including missing-flush/fence bugs on
the hand-rolled persist protocol and a wrong-value bug on the commit
variable itself.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import CommandError
from repro.pmdk.layout import Bytes, OID, PStruct, U64, store_field
from repro.pmdk.pool import OID_NULL, PmemObjPool
from repro.workloads.base import Command, Workload
from repro.workloads.synthetic import BugKind, SyntheticBug

NBUCKETS = 16
HASH_SEED = 0x9E3779B9


class HashmapAtomicRoot(PStruct):
    """Pool root: pointer to the hashmap header."""

    _fields_ = [("map_oid", OID)]


class HashmapAtomic(PStruct):
    """The hashmap header (PMDK ``struct hashmap_atomic``).

    The count and the ``count_dirty`` commit variable live on their own
    cache lines (the padding below), as the real structure does: if they
    shared a line with neighbouring fields, any persist of a neighbour
    would incidentally write back the commit variable and mask ordering
    bugs — cache-line isolation is what makes the dirty-window protocol
    analyzable.
    """

    _fields_ = [
        ("seed", U64),
        ("nbuckets", U64),
        ("buckets", OID),
        ("_pad0", Bytes(40)),
        ("count", U64),
        ("_pad1", Bytes(56)),
        ("count_dirty", U64),
        ("_pad2", Bytes(56)),
    ]


class AEntry(PStruct):
    """A chained key-value entry."""

    _fields_ = [("key", U64), ("value", U64), ("next", OID)]


def _hash(key: int, nbuckets: int) -> int:
    return (key * HASH_SEED) % nbuckets


class HashmapAtomicWorkload(Workload):
    """Driver for the low-level-primitive hashmap."""

    name = "hashmap_atomic"
    layout = "hashmap_atomic"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create_structure(self, pool: PmemObjPool) -> None:
        """Atomic-style creation: build fully, persist, then publish."""
        root = pool.root(HashmapAtomicRoot, site="hashmap_atomic:create:root")
        map_oid = pool.zalloc(HashmapAtomic._size_,
                              site="hashmap_atomic:create:alloc_map")
        hm = pool.typed(map_oid, HashmapAtomic)
        store_field(hm, "seed", HASH_SEED, site="hashmap_atomic:create:store_seed")
        store_field(hm, "nbuckets", NBUCKETS,
                    site="hashmap_atomic:create:store_nbuckets")
        buckets = pool.zalloc(8 * NBUCKETS,
                              site="hashmap_atomic:create:alloc_buckets")
        store_field(hm, "buckets", buckets,
                    site="hashmap_atomic:create:store_buckets")
        pool.persist(map_oid, HashmapAtomic._size_,
                     site="hashmap_atomic:create:persist_map")
        # Publish: the root-slot store is the creation's commit point.
        root.map_oid = map_oid
        pool.persist(root.offset, 8, site="hashmap_atomic:create:publish")

    def is_created(self, pool: PmemObjPool) -> bool:
        if pool.root_oid == OID_NULL:
            return False
        return pool.typed(pool.root_oid, HashmapAtomicRoot).map_oid != OID_NULL

    def recover(self, pool: PmemObjPool) -> None:
        """``hashmap_atomic_init``: repair the count if a failure hit the
        dirty window (the function paper Bug 6's driver forgets to call)."""
        if not self.is_created(pool):
            return
        hm = self._map(pool)
        if hm.count_dirty:
            actual = self._actual_count(pool, hm)
            store_field(hm, "count", actual, site="hashmap_atomic:recover:store_count")
            pool.persist(hm.field_addr("count"), 8,
                         site="hashmap_atomic:recover:persist_count")
            store_field(hm, "count_dirty", 0,
                        site="hashmap_atomic:recover:clear_dirty")
            pool.persist(hm.field_addr("count_dirty"), 8,
                         site="hashmap_atomic:recover:persist_dirty")

    def _map(self, pool: PmemObjPool) -> HashmapAtomic:
        root = pool.typed(pool.root_oid, HashmapAtomicRoot)
        return pool.typed(root.map_oid, HashmapAtomic)

    # ------------------------------------------------------------------
    # Bucket helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _bucket_get(pool: PmemObjPool, buckets: int, index: int) -> int:
        raw = pool.read(buckets + 8 * index, 8, site="hashmap_atomic:bucket:load")
        return int.from_bytes(raw, "little")

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def exec_command(self, pool: PmemObjPool, cmd: Command) -> Optional[str]:
        if cmd.op == "i":
            return self._insert(pool, cmd.key, cmd.value or 0)
        if cmd.op == "g":
            return self._get(pool, cmd.key)
        if cmd.op == "r":
            return self._remove(pool, cmd.key)
        if cmd.op == "x":
            return "1" if self._get(pool, cmd.key) != "none" else "0"
        if cmd.op == "n":
            return str(self._map(pool).count)
        if cmd.op == "m":
            hm = self._map(pool)
            for i in range(hm.nbuckets):
                head = self._bucket_get(pool, hm.buckets, i)
                if head != OID_NULL:
                    entry = pool.typed(head, AEntry)
                    return f"{entry.key}={entry.value}"
            return "none"
        if cmd.op == "q":
            out = []
            hm = self._map(pool)
            for i in range(hm.nbuckets):
                cur = self._bucket_get(pool, hm.buckets, i)
                steps = 0
                while cur != OID_NULL and steps < 64 and len(out) < 24:
                    steps += 1
                    entry = pool.typed(cur, AEntry)
                    out.append(str(entry.key))
                    cur = entry.next
                if len(out) >= 24:
                    break
            return ",".join(out)
        if cmd.op == "b":
            self.recover(pool)  # explicit re-init command
            return "reinit"
        raise CommandError(f"unknown op {cmd.op!r}")

    def _set_dirty(self, pool: PmemObjPool, hm: HashmapAtomic, value: int,
                   store_site: str, persist_site: str) -> None:
        """Update the commit variable with its ordering point."""
        store_field(hm, "count_dirty", value, site=store_site)
        pool.persist(hm.field_addr("count_dirty"), 8, site=persist_site)

    def _insert(self, pool: PmemObjPool, key: int, value: int) -> str:
        hm = self._map(pool)
        buckets = hm.buckets
        bucket = _hash(key, hm.nbuckets)
        # In-place update path (no count change → no dirty window).
        cur = self._bucket_get(pool, buckets, bucket)
        steps = 0
        while cur != OID_NULL and steps < 4096:
            steps += 1
            entry = pool.typed(cur, AEntry)
            if entry.key == key:
                store_field(entry, "value", value,
                            site="hashmap_atomic:insert:store_update")
                pool.persist(entry.field_addr("value"), 8,
                             site="hashmap_atomic:insert:persist_update")
                return "updated"
            cur = entry.next
        # Open the dirty window (commit variable protocol, Figure 7 shape).
        self._set_dirty(pool, hm, 1,
                        "hashmap_atomic:insert:set_dirty",
                        "hashmap_atomic:insert:persist_dirty")
        entry_oid = pool.zalloc(AEntry._size_,
                                site="hashmap_atomic:insert:alloc_entry")
        entry = pool.typed(entry_oid, AEntry)
        store_field(entry, "key", key, site="hashmap_atomic:insert:store_key")
        store_field(entry, "value", value, site="hashmap_atomic:insert:store_value")
        head = self._bucket_get(pool, buckets, bucket)
        store_field(entry, "next", head, site="hashmap_atomic:insert:store_next")
        pool.persist(entry_oid, AEntry._size_,
                     site="hashmap_atomic:insert:persist_entry")
        # Link: a single 8-byte store is atomic on PM.
        pool.write(buckets + 8 * bucket, entry_oid.to_bytes(8, "little"),
                   site="hashmap_atomic:insert:store_bucket")
        pool.persist(buckets + 8 * bucket, 8,
                     site="hashmap_atomic:insert:persist_bucket")
        store_field(hm, "count", hm.count + 1,
                    site="hashmap_atomic:insert:store_count")
        pool.persist(hm.field_addr("count"), 8,
                     site="hashmap_atomic:insert:persist_count")
        self._set_dirty(pool, hm, 0,
                        "hashmap_atomic:insert:clear_dirty",
                        "hashmap_atomic:insert:persist_clear")
        return "inserted"

    def _get(self, pool: PmemObjPool, key: int) -> str:
        hm = self._map(pool)
        bucket = _hash(key, hm.nbuckets)
        cur = self._bucket_get(pool, hm.buckets, bucket)
        steps = 0
        while cur != OID_NULL and steps < 4096:
            steps += 1
            entry = pool.typed(cur, AEntry)
            if entry.key == key:
                return str(entry.value)
            cur = entry.next
        return "none"

    def _remove(self, pool: PmemObjPool, key: int) -> str:
        hm = self._map(pool)
        buckets = hm.buckets
        bucket = _hash(key, hm.nbuckets)
        prev = OID_NULL
        cur = self._bucket_get(pool, buckets, bucket)
        steps = 0
        while cur != OID_NULL and steps < 4096:
            steps += 1
            entry = pool.typed(cur, AEntry)
            if entry.key == key:
                self._set_dirty(pool, hm, 1,
                                "hashmap_atomic:remove:set_dirty",
                                "hashmap_atomic:remove:persist_dirty")
                nxt = entry.next
                if prev == OID_NULL:
                    pool.write(buckets + 8 * bucket, nxt.to_bytes(8, "little"),
                               site="hashmap_atomic:remove:store_bucket")
                    pool.persist(buckets + 8 * bucket, 8,
                                 site="hashmap_atomic:remove:persist_bucket")
                else:
                    prev_entry = pool.typed(prev, AEntry)
                    store_field(prev_entry, "next", nxt,
                                site="hashmap_atomic:remove:store_prev")
                    pool.persist(prev_entry.field_addr("next"), 8,
                                 site="hashmap_atomic:remove:persist_prev")
                store_field(hm, "count", hm.count - 1,
                            site="hashmap_atomic:remove:store_count")
                pool.persist(hm.field_addr("count"), 8,
                             site="hashmap_atomic:remove:persist_count")
                self._set_dirty(pool, hm, 0,
                                "hashmap_atomic:remove:clear_dirty",
                                "hashmap_atomic:remove:persist_clear")
                # The unlinked entry is freed outside the dirty window; a
                # crash before this point only leaks it.
                pool.free(cur, site="hashmap_atomic:remove:free_entry")
                return "removed"
            prev = cur
            cur = entry.next
        return "none"

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------
    def _actual_count(self, pool: PmemObjPool, hm: HashmapAtomic) -> int:
        total = 0
        for i in range(hm.nbuckets):
            cur = self._bucket_get(pool, hm.buckets, i)
            steps = 0
            while cur != OID_NULL and steps < 4096:
                steps += 1
                total += 1
                cur = pool.typed(cur, AEntry).next
        return total

    def check_consistency(self, pool: PmemObjPool) -> List[str]:
        """After the driver's open path, the window must be closed and the
        count exact — precisely what Bug 6 violates on a crash image."""
        violations: List[str] = []
        if not self.is_created(pool):
            return violations
        hm = self._map(pool)
        if hm.nbuckets != NBUCKETS:
            return [f"nbuckets corrupted: {hm.nbuckets}"]
        if hm.count_dirty:
            violations.append("count_dirty still set after recovery window")
        actual = self._actual_count(pool, hm)
        if actual != hm.count:
            violations.append(f"count {hm.count} != actual {actual}")
        seen = set()
        for i in range(hm.nbuckets):
            cur = self._bucket_get(pool, hm.buckets, i)
            steps = 0
            while cur != OID_NULL and steps < 4096:
                steps += 1
                if cur in seen:
                    violations.append(f"cycle in bucket {i}")
                    return violations
                seen.add(cur)
                entry = pool.typed(cur, AEntry)
                if _hash(entry.key, hm.nbuckets) != i:
                    violations.append(f"key {entry.key} in wrong bucket {i}")
                cur = entry.next
        return violations

    # ------------------------------------------------------------------
    # Synthetic bugs (14 sites, Table 3)
    # ------------------------------------------------------------------
    def synthetic_bugs(self) -> Sequence[SyntheticBug]:
        def bug(i: int, site: str, kind: BugKind, depth: int) -> SyntheticBug:
            return SyntheticBug(f"hashmap_atomic:s{i:02d}", site, kind, depth)

        return (
            bug(1, "hashmap_atomic:create:persist_map", BugKind.MISSING_FLUSH, 0),
            bug(2, "hashmap_atomic:create:publish", BugKind.MISSING_FENCE, 0),
            bug(3, "hashmap_atomic:create:store_buckets", BugKind.WRONG_VALUE, 0),
            bug(4, "hashmap_atomic:insert:persist_update", BugKind.MISSING_FLUSH, 1),
            bug(5, "hashmap_atomic:insert:set_dirty", BugKind.WRONG_COMMIT, 1),
            bug(6, "hashmap_atomic:insert:persist_dirty", BugKind.MISSING_FENCE, 1),
            bug(7, "hashmap_atomic:insert:persist_entry", BugKind.MISSING_FLUSH, 1),
            bug(8, "hashmap_atomic:insert:persist_bucket", BugKind.MISSING_FENCE, 1),
            bug(9, "hashmap_atomic:insert:persist_count", BugKind.MISSING_FLUSH, 1),
            bug(10, "hashmap_atomic:insert:clear_dirty", BugKind.WRONG_VALUE, 1),
            bug(11, "hashmap_atomic:remove:persist_bucket", BugKind.MISSING_FLUSH, 1),
            bug(12, "hashmap_atomic:remove:persist_prev", BugKind.MISSING_FLUSH, 2),
            bug(13, "hashmap_atomic:recover:persist_count", BugKind.MISSING_FLUSH, 2),
            bug(14, "hashmap_atomic:recover:clear_dirty", BugKind.WRONG_VALUE, 2),
        )
