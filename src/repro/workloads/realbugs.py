"""The 12 real-world bugs PMFuzz discovered (paper Section 5.4).

Each bug is re-created at the analogous location in the reproduced
workloads and is enabled by a flag in the workload's ``bugs`` set.  The
table below maps the paper's bug IDs to this repository.

Crash consistency bugs:

=====  =================  ==========================================
Bug    Workload           Flag / mechanism
=====  =================  ==========================================
1      Hashmap-TX         ``init_not_retried`` — creation transaction
                          rolled back by a crash is never retried; next
                          run dereferences the NULL structure pointer.
2      B-Tree             ``init_not_retried`` (same pattern)
3      RB-Tree            ``init_not_retried``
4      R-Tree             ``init_not_retried``
5      Skip-List          ``init_not_retried``
6      Hashmap-Atomic     ``bug6_no_recovery_call`` — the driver assumes
                          transactional auto-recovery and never calls
                          ``hashmap_atomic_init``; a crash image with
                          ``count_dirty=1`` leaves the count wrong.
=====  =================  ==========================================

Performance bugs (all manifest as redundant-flush / redundant-TX_ADD
trace annotations):

=====  =================  ==========================================
7      Memcached          ``bug7_redundant_flush`` — pslab_create
                          flushes metadata that the whole-pool flush
                          covers again.
8      Hashmap-TX         ``bug8_redundant_txadd`` — create_hashmap
                          TX_ADDs an object just allocated by TX_ZNEW.
9      RB-Tree            ``bug9_txset_fresh_node`` — TX_SET on a node
                          just allocated with TX_NEW.
10     RB-Tree            ``bug10_log_fresh_root`` — logs the tree's
                          first entry right after transactional
                          allocation of the tree.
11     RB-Tree            ``bug11_txset_rotated_parent`` — TX_SET on a
                          parent already snapshotted by a rotation.
12     B-Tree             ``bug12_txadd_found_dest`` — TX_ADDs the
                          destination node again after find_dest_node
                          already snapshotted it.
=====  =================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple


@dataclass(frozen=True)
class RealBug:
    """One of the 12 real-world bugs from Section 5.4."""

    number: int
    workload: str
    flag: str
    kind: str  # "crash-consistency" | "performance"
    paper_location: str
    paper_seconds: float  #: wall-clock time PMFuzz needed (Section 5.4.1)
    description: str


#: The full catalogue, in paper order.
ALL_REAL_BUGS: Tuple[RealBug, ...] = (
    RealBug(1, "hashmap_tx", "init_not_retried", "crash-consistency",
            "hashmap_tx.c:402", 2.0,
            "creation undone by a failure is never retried"),
    RealBug(2, "btree", "init_not_retried", "crash-consistency",
            "btree init", 2.0, "creation undone by a failure is never retried"),
    RealBug(3, "rbtree", "init_not_retried", "crash-consistency",
            "rbtree init", 2.0, "creation undone by a failure is never retried"),
    RealBug(4, "rtree", "init_not_retried", "crash-consistency",
            "rtree init", 2.0, "creation undone by a failure is never retried"),
    RealBug(5, "skiplist", "init_not_retried", "crash-consistency",
            "skiplist init", 2.0, "creation undone by a failure is never retried"),
    RealBug(6, "hashmap_atomic", "bug6_no_recovery_call", "crash-consistency",
            "mapcli:205 / hashmap_atomic.c:452", 37.0,
            "driver never calls the low-level recovery function"),
    RealBug(7, "memcached", "bug7_redundant_flush", "performance",
            "pslab.c:317", 2.0,
            "metadata flushes subsumed by the whole-pool flush"),
    RealBug(8, "hashmap_tx", "bug8_redundant_txadd", "performance",
            "hashmap_tx.c:90", 2.0,
            "TX_ADD of an object freshly allocated by TX_ZNEW"),
    RealBug(9, "rbtree", "bug9_txset_fresh_node", "performance",
            "rbtree_map.c:215", 91.0,
            "TX_SET on a transaction-allocated node"),
    RealBug(10, "rbtree", "bug10_log_fresh_root", "performance",
            "rbtree_map.c:215", 91.0,
            "logging the first entry of a just-allocated tree"),
    RealBug(11, "rbtree", "bug11_txset_rotated_parent", "performance",
            "rbtree_map.c:215", 77.0,
            "TX_SET on a parent already snapshotted by rotation"),
    RealBug(12, "btree", "bug12_txadd_found_dest", "performance",
            "btree_map.c:276", 88.0,
            "TX_ADD of a node already snapshotted by find_dest_node"),
)

_BY_WORKLOAD: Dict[str, List[RealBug]] = {}
for _bug in ALL_REAL_BUGS:
    _BY_WORKLOAD.setdefault(_bug.workload, []).append(_bug)


def real_bugs_for(workload_name: str) -> List[RealBug]:
    """All catalogued real bugs living in ``workload_name``."""
    return list(_BY_WORKLOAD.get(workload_name, []))


def buggy_flags_for(workload_name: str) -> FrozenSet[str]:
    """The flag set that enables every real bug of a workload."""
    return frozenset(b.flag for b in real_bugs_for(workload_name))


def bug_by_number(number: int) -> RealBug:
    """Look up a bug by its paper number (1-12)."""
    for bug in ALL_REAL_BUGS:
        if bug.number == number:
            return bug
    raise KeyError(f"no real bug #{number}")
