"""Skip list key-value store (PMDK ``skiplist_map`` analogue).

A 4-level skip list with a persistent head node.  Node levels are a
deterministic function of the key (derandomization requirement: the same
input must always build the same structure).  Splicing a node touches up
to four predecessor nodes in one transaction, giving multi-node PM
paths; the highest levels are only exercised by specific keys, which is
what makes some synthetic sites deep.

Hosts paper **Bug 5** (``init_not_retried``) and 12 synthetic-bug sites.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro._util import stable_hash32
from repro.errors import CommandError
from repro.pmdk.layout import Array, OID, PStruct, U64, store_field
from repro.pmdk.pool import OID_NULL, PmemObjPool
from repro.workloads.base import Command, Workload
from repro.workloads.synthetic import BugKind, SyntheticBug

MAX_LEVEL = 4


class SkipRoot(PStruct):
    """Pool root: pointer to the skip list's head node."""

    _fields_ = [("head_oid", OID)]


class SkipNode(PStruct):
    """A skip-list node with forward pointers for each level."""

    _fields_ = [
        ("key", U64),
        ("value", U64),
        ("level", U64),
        ("next", Array(OID, MAX_LEVEL)),
    ]


def node_level(key: int) -> int:
    """Deterministic level in [1, MAX_LEVEL] (geometric-ish by key hash)."""
    h = stable_hash32(f"skiplist-level:{key}")
    level = 1
    while level < MAX_LEVEL and (h >> level) & 1:
        level += 1
    return level


class SkipListWorkload(Workload):
    """Driver for the skip list."""

    name = "skiplist"
    layout = "skiplist"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create_structure(self, pool: PmemObjPool) -> None:
        root = pool.root(SkipRoot, site="skiplist:create:root")
        with pool.transaction() as tx:
            tx.add_field(root, "head_oid", site="skiplist:create:add_root")
            head = tx.znew(SkipNode, site="skiplist:create:alloc_head")
            store_field(head, "level", MAX_LEVEL, site="skiplist:create:store_level")
            root.head_oid = head.offset

    def is_created(self, pool: PmemObjPool) -> bool:
        if pool.root_oid == OID_NULL:
            return False
        return pool.typed(pool.root_oid, SkipRoot).head_oid != OID_NULL

    def recover(self, pool: PmemObjPool) -> None:
        """Open-time check: probe each level's first node.

        Higher levels are populated only by tall nodes in accumulated
        images, so these reads form a ladder of image-gated PM regions.
        """
        if not self.is_created(pool):
            return
        head = self._head(pool)
        for lv in range(MAX_LEVEL - 1, -1, -1):
            first = head.next[lv]
            if first != OID_NULL:
                node = pool.typed(first, SkipNode)
                _ = node.key  # PM read, gated on level population
                break

    def _head(self, pool: PmemObjPool) -> SkipNode:
        root = pool.typed(pool.root_oid, SkipRoot)
        return pool.typed(root.head_oid, SkipNode)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def exec_command(self, pool: PmemObjPool, cmd: Command) -> Optional[str]:
        if cmd.op == "i":
            return self._insert(pool, cmd.key, cmd.value or 0)
        if cmd.op == "g":
            found = self._lookup(pool, cmd.key)
            return "none" if found is None else str(found)
        if cmd.op == "r":
            return self._remove(pool, cmd.key)
        if cmd.op == "x":
            return "1" if self._lookup(pool, cmd.key) is not None else "0"
        if cmd.op == "n":
            return str(self._count(pool))
        if cmd.op == "m":
            head = self._head(pool)
            first = head.next[0]
            if first == OID_NULL:
                return "none"
            node = pool.typed(first, SkipNode)
            return f"{node.key}={node.value}"
        if cmd.op == "q":
            return ",".join(self._scan(pool))
        if cmd.op == "b":
            return "noop"
        raise CommandError(f"unknown op {cmd.op!r}")

    def _scan(self, pool: PmemObjPool, limit: int = 24) -> List[str]:
        """Bounded walk of every level (mapcli foreach analogue).

        The higher levels only contain tall nodes, so their walk reads
        fire only against images populated enough to have grown them.
        """
        out: List[str] = []
        head = self._head(pool)
        for lv in range(MAX_LEVEL - 1, -1, -1):
            cur = head.next[lv]
            steps = 0
            while cur != OID_NULL and steps < 8 and len(out) < limit:
                steps += 1
                node = pool.typed(cur, SkipNode)
                out.append(f"L{lv}:{node.key}")
                cur = node.next[lv]
        return out

    def _find_preds(self, pool: PmemObjPool, key: int) -> List[SkipNode]:
        """Return the predecessor node at every level (head included)."""
        preds: List[Optional[SkipNode]] = [None] * MAX_LEVEL
        node = self._head(pool)
        for level in range(MAX_LEVEL - 1, -1, -1):
            steps = 0
            while steps < 4096:
                steps += 1
                nxt = node.next[level]
                if nxt == OID_NULL:
                    break
                nxt_node = pool.typed(nxt, SkipNode)
                if nxt_node.key >= key:
                    break
                node = nxt_node
            preds[level] = node
        return preds  # type: ignore[return-value]

    def _lookup(self, pool: PmemObjPool, key: int) -> Optional[int]:
        preds = self._find_preds(pool, key)
        candidate = preds[0].next[0]
        if candidate == OID_NULL:
            return None
        node = pool.typed(candidate, SkipNode)
        return node.value if node.key == key else None

    def _count(self, pool: PmemObjPool) -> int:
        node = self._head(pool)
        total = 0
        steps = 0
        cur = node.next[0]
        while cur != OID_NULL and steps < 4096:
            steps += 1
            total += 1
            cur = pool.typed(cur, SkipNode).next[0]
        return total

    # ------------------------------------------------------------------
    # Insert / remove
    # ------------------------------------------------------------------
    def _insert(self, pool: PmemObjPool, key: int, value: int) -> str:
        with pool.transaction() as tx:
            preds = self._find_preds(pool, key)
            candidate = preds[0].next[0]
            if candidate != OID_NULL:
                node = pool.typed(candidate, SkipNode)
                if node.key == key:
                    tx.add_field(node, "value", site="skiplist:insert:add_value")
                    store_field(node, "value", value,
                                site="skiplist:insert:store_value")
                    return "updated"
            level = node_level(key)
            fresh = tx.znew(SkipNode, site="skiplist:insert:alloc_node")
            store_field(fresh, "key", key, site="skiplist:insert:store_key")
            store_field(fresh, "value", value, site="skiplist:insert:store_newvalue")
            store_field(fresh, "level", level, site="skiplist:insert:store_level")
            for lv in range(level):
                pred = preds[lv]
                fresh.next[lv] = pred.next[lv]
                # The high levels are only spliced for tall nodes — a
                # distinct, deeper PM operation site.
                add_site = ("skiplist:insert:add_prednext_hi" if lv >= 2
                            else "skiplist:insert:add_prednext")
                tx.add(pred.field_addr("next") + 8 * lv, 8, site=add_site)
                pool.write(pred.field_addr("next") + 8 * lv,
                           fresh.offset.to_bytes(8, "little"),
                           site="skiplist:insert:store_prednext")
        return "inserted"

    def _remove(self, pool: PmemObjPool, key: int) -> str:
        with pool.transaction() as tx:
            preds = self._find_preds(pool, key)
            candidate = preds[0].next[0]
            if candidate == OID_NULL:
                return "none"
            node = pool.typed(candidate, SkipNode)
            if node.key != key:
                return "none"
            for lv in range(node.level):
                pred = preds[lv]
                if pred.next[lv] != candidate:
                    continue
                add_site = ("skiplist:remove:add_prednext_hi" if lv >= 2
                            else "skiplist:remove:add_prednext")
                tx.add(pred.field_addr("next") + 8 * lv, 8, site=add_site)
                pool.write(pred.field_addr("next") + 8 * lv,
                           node.next[lv].to_bytes(8, "little"),
                           site="skiplist:remove:store_prednext")
            tx.free(candidate, site="skiplist:remove:free_node")
        return "removed"

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------
    def check_consistency(self, pool: PmemObjPool) -> List[str]:
        violations: List[str] = []
        if not self.is_created(pool):
            return violations
        head = self._head(pool)
        if head.level != MAX_LEVEL:
            violations.append(f"head level corrupted: {head.level}")
        # Level 0 must be strictly sorted and acyclic.
        seen = set()
        keys: List[int] = []
        cur = head.next[0]
        while cur != OID_NULL:
            if cur in seen:
                violations.append("cycle in level-0 chain")
                return violations
            seen.add(cur)
            node = pool.typed(cur, SkipNode)
            if not 1 <= node.level <= MAX_LEVEL:
                violations.append(
                    f"node key {node.key} has invalid level {node.level}"
                )
            keys.append(node.key)
            cur = node.next[0]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            violations.append("level-0 chain not strictly sorted")
        # Every higher level must be a subsequence of level 0.
        level0 = set(seen)
        for lv in range(1, MAX_LEVEL):
            cur = head.next[lv]
            steps = 0
            while cur != OID_NULL and steps < 4096:
                steps += 1
                if cur not in level0:
                    violations.append(f"level-{lv} node missing from level 0")
                    break
                node = pool.typed(cur, SkipNode)
                if node.level <= lv:
                    violations.append(
                        f"node key {node.key} linked above its level"
                    )
                cur = node.next[lv]
        return violations

    # ------------------------------------------------------------------
    # Synthetic bugs (12 sites, Table 3)
    # ------------------------------------------------------------------
    def synthetic_bugs(self) -> Sequence[SyntheticBug]:
        def bug(i: int, site: str, kind: BugKind, depth: int) -> SyntheticBug:
            return SyntheticBug(f"skiplist:s{i:02d}", site, kind, depth)

        return (
            bug(1, "skiplist:create:add_root", BugKind.MISSING_TXADD, 0),
            bug(2, "skiplist:create:store_level", BugKind.WRONG_VALUE, 0),
            bug(3, "skiplist:insert:add_value", BugKind.MISSING_TXADD, 1),
            bug(4, "skiplist:insert:store_value", BugKind.WRONG_VALUE, 1),
            bug(5, "skiplist:insert:store_key", BugKind.WRONG_VALUE, 1),
            bug(6, "skiplist:insert:store_level", BugKind.WRONG_VALUE, 1),
            bug(7, "skiplist:insert:add_prednext", BugKind.MISSING_TXADD, 1),
            bug(8, "skiplist:insert:store_prednext", BugKind.WRONG_VALUE, 1),
            bug(9, "skiplist:remove:add_prednext", BugKind.MISSING_TXADD, 1),
            bug(10, "skiplist:remove:store_prednext", BugKind.WRONG_VALUE, 1),
            bug(11, "skiplist:insert:add_prednext_hi", BugKind.MISSING_TXADD, 2),
            bug(12, "skiplist:remove:add_prednext_hi", BugKind.MISSING_TXADD, 2),
        )
