"""Hashmap-TX: the transactional hashmap (PMDK ``hashmap_tx`` analogue).

Chained hashing with a persistent bucket array, fully transactional.
Carries paper Bug 1 (creation not retried after a crash during the
creation transaction) and Bug 8 (redundant ``TX_ADD`` of an object just
allocated with ``TX_ZNEW``), plus 21 synthetic-bug sites (Table 3).

The deep PM path is ``_rebuild``: when the load factor exceeds 2 the
table is rehashed into a doubled bucket array inside the same
transaction — reachable only from a well-populated image.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import CommandError
from repro.pmdk.layout import OID, PStruct, U64, store_field
from repro.pmdk.pool import OID_NULL, PmemObjPool
from repro.workloads.base import Command, Workload
from repro.workloads.synthetic import BugKind, SyntheticBug

INITIAL_BUCKETS = 8
MAX_BUCKETS = 64
HASH_SEED = 0x9E3779B9


class HashmapRoot(PStruct):
    """Pool root: a single pointer to the hashmap object."""

    _fields_ = [("map_oid", OID)]


class Hashmap(PStruct):
    """The hashmap header (PMDK ``struct hashmap_tx``)."""

    _fields_ = [
        ("seed", U64),
        ("count", U64),
        ("nbuckets", U64),
        ("buckets", OID),  # block of nbuckets OIDs
    ]


class Entry(PStruct):
    """A chained key-value entry."""

    _fields_ = [("key", U64), ("value", U64), ("next", OID)]


def _hash(key: int, seed: int, nbuckets: int) -> int:
    return ((key * HASH_SEED) ^ seed) % nbuckets


class HashmapTxWorkload(Workload):
    """Driver for the transactional hashmap."""

    name = "hashmap_tx"
    layout = "hashmap_tx"

    # ------------------------------------------------------------------
    # Structure lifecycle
    # ------------------------------------------------------------------
    def create_structure(self, pool: PmemObjPool) -> None:
        """``hm_tx_create``: allocate and initialize inside a transaction.

        A failure anywhere in here rolls the whole creation back, leaving
        ``map_oid`` NULL — which the ``init_not_retried`` bug variant
        never repairs (paper Bug 1).
        """
        root = pool.root(HashmapRoot, site="hashmap_tx:create:root")
        with pool.transaction() as tx:
            tx.add_field(root, "map_oid", site="hashmap_tx:create:add_root")
            map_oid = tx.zalloc(Hashmap._size_, site="hashmap_tx:create:alloc_map")
            hm = pool.typed(map_oid, Hashmap)
            if "bug8_redundant_txadd" in self.bugs:
                # Paper Bug 8: TX_ADD of the object TX_ZNEW just returned.
                tx.add(map_oid, Hashmap._size_, site="hashmap_tx:create:txadd_again")
            store_field(hm, "seed", HASH_SEED, site="hashmap_tx:create:store_seed")
            store_field(hm, "nbuckets", INITIAL_BUCKETS,
                        site="hashmap_tx:create:store_nbuckets")
            buckets = tx.zalloc(8 * INITIAL_BUCKETS,
                                site="hashmap_tx:create:alloc_buckets")
            store_field(hm, "buckets", buckets, site="hashmap_tx:create:store_buckets")
            store_field(hm, "count", 0, site="hashmap_tx:create:store_count")
            root.map_oid = map_oid

    def is_created(self, pool: PmemObjPool) -> bool:
        if pool.root_oid == OID_NULL:
            return False
        return pool.typed(pool.root_oid, HashmapRoot).map_oid != OID_NULL

    def recover(self, pool: PmemObjPool) -> None:
        """Open-time check: probe the first occupied bucket chain.

        Executes PM reads only when the image carries entries; a second
        read fires only for chains of length ≥ 2 — both image-gated.
        """
        if not self.is_created(pool):
            return
        hm = self._map(pool)
        if hm.count == 0:
            return
        for i in range(hm.nbuckets):
            head = self._bucket_get(pool, hm.buckets, i)
            if head != OID_NULL:
                entry = pool.typed(head, Entry)
                if entry.next != OID_NULL:
                    _ = pool.typed(entry.next, Entry).key  # chained read
                break

    def _map(self, pool: PmemObjPool) -> Hashmap:
        root = pool.typed(pool.root_oid, HashmapRoot)
        return pool.typed(root.map_oid, Hashmap)

    # ------------------------------------------------------------------
    # Bucket helpers (raw OID array access)
    # ------------------------------------------------------------------
    @staticmethod
    def _bucket_get(pool: PmemObjPool, buckets: int, index: int) -> int:
        raw = pool.read(buckets + 8 * index, 8, site="hashmap_tx:bucket:load")
        return int.from_bytes(raw, "little")

    @staticmethod
    def _bucket_set(pool: PmemObjPool, buckets: int, index: int, oid: int,
                    site: str) -> None:
        pool.write(buckets + 8 * index, oid.to_bytes(8, "little"), site=site)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def exec_command(self, pool: PmemObjPool, cmd: Command) -> Optional[str]:
        if cmd.op == "i":
            return self._insert(pool, cmd.key, cmd.value or 0)
        if cmd.op == "g":
            return self._get(pool, cmd.key)
        if cmd.op == "r":
            return self._remove(pool, cmd.key)
        if cmd.op == "x":
            return "1" if self._get(pool, cmd.key) != "none" else "0"
        if cmd.op == "n":
            return str(self._map(pool).count)
        if cmd.op == "m":
            return self._first(pool)
        if cmd.op == "q":
            return ",".join(self._scan(pool))
        if cmd.op == "b":
            return self._rebuild_cmd(pool)
        raise CommandError(f"unknown op {cmd.op!r}")

    def _first(self, pool: PmemObjPool) -> str:
        hm = self._map(pool)
        for i in range(hm.nbuckets):
            head = self._bucket_get(pool, hm.buckets, i)
            if head != OID_NULL:
                entry = pool.typed(head, Entry)
                return f"{entry.key}={entry.value}"
        return "none"

    def _scan(self, pool: PmemObjPool, limit: int = 24) -> List[str]:
        """Bounded walk over all chains (mapcli foreach analogue)."""
        out: List[str] = []
        hm = self._map(pool)
        for i in range(hm.nbuckets):
            cur = self._bucket_get(pool, hm.buckets, i)
            steps = 0
            while cur != OID_NULL and steps < 64 and len(out) < limit:
                steps += 1
                entry = pool.typed(cur, Entry)
                out.append(str(entry.key))
                cur = entry.next
            if len(out) >= limit:
                break
        return out

    def _insert(self, pool: PmemObjPool, key: int, value: int) -> str:
        hm = self._map(pool)
        with pool.transaction() as tx:
            bucket = _hash(key, hm.seed, hm.nbuckets)
            buckets = hm.buckets
            # Update in place when the key exists (bounded walk: a corrupt
            # image may contain a chain cycle).
            cur = self._bucket_get(pool, buckets, bucket)
            steps = 0
            while cur != OID_NULL and steps < 4096:
                steps += 1
                entry = pool.typed(cur, Entry)
                if entry.key == key:
                    tx.add_field(entry, "value", site="hashmap_tx:insert:add_value")
                    store_field(entry, "value", value,
                                site="hashmap_tx:insert:store_value")
                    return "updated"
                cur = entry.next
            # New entry at the head of the chain.
            new = tx.znew(Entry, site="hashmap_tx:insert:alloc_entry")
            store_field(new, "key", key, site="hashmap_tx:insert:store_key")
            store_field(new, "value", value, site="hashmap_tx:insert:store_newvalue")
            head = self._bucket_get(pool, buckets, bucket)
            store_field(new, "next", head, site="hashmap_tx:insert:store_next")
            tx.add(buckets + 8 * bucket, 8, site="hashmap_tx:insert:add_bucket")
            self._bucket_set(pool, buckets, bucket, new.offset,
                             site="hashmap_tx:insert:store_bucket")
            tx.add_field(hm, "count", site="hashmap_tx:insert:add_count")
            store_field(hm, "count", hm.count + 1,
                        site="hashmap_tx:insert:store_count")
            if hm.count > hm.nbuckets and hm.nbuckets < MAX_BUCKETS:
                self._rebuild(pool, tx, hm)
        return "inserted"

    def _get(self, pool: PmemObjPool, key: int) -> str:
        hm = self._map(pool)
        bucket = _hash(key, hm.seed, hm.nbuckets)
        cur = self._bucket_get(pool, hm.buckets, bucket)
        steps = 0
        while cur != OID_NULL and steps < 4096:
            entry = pool.typed(cur, Entry)
            if entry.key == key:
                return str(entry.value)
            cur = entry.next
            steps += 1
        return "none"

    def _remove(self, pool: PmemObjPool, key: int) -> str:
        hm = self._map(pool)
        with pool.transaction() as tx:
            bucket = _hash(key, hm.seed, hm.nbuckets)
            buckets = hm.buckets
            prev = OID_NULL
            cur = self._bucket_get(pool, buckets, bucket)
            steps = 0
            while cur != OID_NULL and steps < 4096:
                steps += 1
                entry = pool.typed(cur, Entry)
                if entry.key == key:
                    nxt = entry.next
                    if prev == OID_NULL:
                        tx.add(buckets + 8 * bucket, 8,
                               site="hashmap_tx:remove:add_bucket")
                        self._bucket_set(pool, buckets, bucket, nxt,
                                         site="hashmap_tx:remove:store_bucket")
                    else:
                        prev_entry = pool.typed(prev, Entry)
                        tx.add_field(prev_entry, "next",
                                     site="hashmap_tx:remove:add_prev")
                        store_field(prev_entry, "next", nxt,
                                    site="hashmap_tx:remove:store_prev")
                    tx.free(cur, site="hashmap_tx:remove:free_entry")
                    tx.add_field(hm, "count", site="hashmap_tx:remove:add_count")
                    store_field(hm, "count", hm.count - 1,
                                site="hashmap_tx:remove:store_count")
                    return "removed"
                prev = cur
                cur = entry.next
        return "none"

    def _rebuild_cmd(self, pool: PmemObjPool) -> str:
        hm = self._map(pool)
        if hm.nbuckets >= MAX_BUCKETS or hm.count <= hm.nbuckets // 2:
            # Rebuilding a sparse table would only waste PM writes: the
            # command needs a half-loaded table, which a single bounded
            # input can barely construct from the empty image but any
            # accumulated image provides readily.
            return "skipped"
        with pool.transaction() as tx:
            self._rebuild(pool, tx, hm)
        return "rebuilt"

    def _rebuild(self, pool: PmemObjPool, tx, hm: Hashmap) -> None:
        """``hm_tx_rebuild``: rehash into a doubled bucket array.

        This is the deepest PM path of the workload: it touches every
        entry and is only reached from a populated image, which is why
        covering its synthetic bugs needs PM-image-aware test cases.
        """
        old_n = hm.nbuckets
        new_n = old_n * 2
        new_buckets = tx.zalloc(8 * new_n, site="hashmap_tx:rebuild:alloc_buckets")
        for i in range(old_n):
            cur = self._bucket_get(pool, hm.buckets, i)
            steps = 0
            while cur != OID_NULL and steps < 4096:
                steps += 1
                entry = pool.typed(cur, Entry)
                nxt = entry.next
                dest = _hash(entry.key, hm.seed, new_n)
                head = self._bucket_get(pool, new_buckets, dest)
                tx.add_field(entry, "next", site="hashmap_tx:rebuild:add_next")
                store_field(entry, "next", head, site="hashmap_tx:rebuild:store_next")
                self._bucket_set(pool, new_buckets, dest, cur,
                                 site="hashmap_tx:rebuild:store_bucket")
                cur = nxt
        old_buckets = hm.buckets
        tx.add_field(hm, "buckets", site="hashmap_tx:rebuild:add_buckets")
        store_field(hm, "buckets", new_buckets,
                    site="hashmap_tx:rebuild:store_buckets")
        tx.add_field(hm, "nbuckets", site="hashmap_tx:rebuild:add_nbuckets")
        store_field(hm, "nbuckets", new_n, site="hashmap_tx:rebuild:store_nbuckets")
        tx.free(old_buckets, site="hashmap_tx:rebuild:free_old")

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------
    def check_consistency(self, pool: PmemObjPool) -> List[str]:
        violations: List[str] = []
        if not self.is_created(pool):
            return violations  # an absent structure is consistent (empty)
        hm = self._map(pool)
        if hm.nbuckets == 0 or hm.nbuckets > MAX_BUCKETS:
            return [f"nbuckets out of range: {hm.nbuckets}"]
        if hm.seed != HASH_SEED:
            # The seed is a compile-time constant of the program; any
            # other persisted value is corruption.
            violations.append(f"hash seed corrupted: {hm.seed:#x}")
        seen = set()
        total = 0
        for i in range(hm.nbuckets):
            cur = self._bucket_get(pool, hm.buckets, i)
            while cur != OID_NULL:
                if cur in seen:
                    violations.append(f"cycle in bucket {i}")
                    return violations
                seen.add(cur)
                entry = pool.typed(cur, Entry)
                if _hash(entry.key, hm.seed, hm.nbuckets) != i:
                    violations.append(
                        f"key {entry.key} in wrong bucket {i}"
                    )
                total += 1
                cur = entry.next
        if total != hm.count:
            violations.append(f"count {hm.count} != actual {total}")
        return violations

    # ------------------------------------------------------------------
    # Synthetic bugs (21 sites, Table 3)
    # ------------------------------------------------------------------
    def synthetic_bugs(self) -> Sequence[SyntheticBug]:
        def bug(i: int, site: str, kind: BugKind, depth: int) -> SyntheticBug:
            return SyntheticBug(f"hashmap_tx:s{i:02d}", site, kind, depth)

        return (
            bug(1, "hashmap_tx:create:add_root", BugKind.MISSING_TXADD, 0),
            bug(2, "hashmap_tx:create:store_seed", BugKind.WRONG_VALUE, 0),
            bug(3, "hashmap_tx:create:store_nbuckets", BugKind.WRONG_VALUE, 0),
            bug(4, "hashmap_tx:create:store_buckets", BugKind.WRONG_VALUE, 0),
            bug(5, "hashmap_tx:create:store_count", BugKind.WRONG_VALUE, 0),
            bug(6, "hashmap_tx:insert:add_value", BugKind.MISSING_TXADD, 1),
            bug(7, "hashmap_tx:insert:store_value", BugKind.WRONG_VALUE, 1),
            bug(8, "hashmap_tx:insert:store_key", BugKind.WRONG_VALUE, 1),
            bug(9, "hashmap_tx:insert:store_next", BugKind.WRONG_VALUE, 1),
            bug(10, "hashmap_tx:insert:add_bucket", BugKind.MISSING_TXADD, 1),
            bug(11, "hashmap_tx:insert:store_bucket", BugKind.WRONG_VALUE, 1),
            bug(12, "hashmap_tx:insert:add_count", BugKind.MISSING_TXADD, 1),
            bug(13, "hashmap_tx:insert:store_count", BugKind.WRONG_VALUE, 1),
            bug(14, "hashmap_tx:remove:add_bucket", BugKind.MISSING_TXADD, 1),
            bug(15, "hashmap_tx:remove:add_prev", BugKind.MISSING_TXADD, 2),
            bug(16, "hashmap_tx:remove:store_prev", BugKind.WRONG_VALUE, 2),
            bug(17, "hashmap_tx:remove:add_count", BugKind.MISSING_TXADD, 1),
            bug(18, "hashmap_tx:rebuild:add_next", BugKind.MISSING_TXADD, 2),
            bug(19, "hashmap_tx:rebuild:store_next", BugKind.WRONG_VALUE, 2),
            bug(20, "hashmap_tx:rebuild:add_buckets", BugKind.MISSING_TXADD, 2),
            bug(21, "hashmap_tx:rebuild:store_nbuckets", BugKind.WRONG_VALUE, 2),
        )
