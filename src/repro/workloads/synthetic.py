"""Synthetic bug injection (Section 5.1, "Synthetic Bug Injection").

The paper evaluates test-case quality by planting synthetic bugs in the
workloads and the PMDK library, of four kinds:

* remove/misplace writebacks (flushes) and fences,
* reorder PM writes that were ordered by writeback+fence,
* remove/misplace backup (TX_ADD) calls in transactional programs,
* semantically incorrect code in low-level programs (e.g. writing a
  wrong value to a commit variable).

Each :class:`SyntheticBug` names the *site* (the explicit site label the
workload passes to the PM library call) and the injection kind.  The
:class:`BugInjector` is carried on the execution context; the pmdk layer
consults it at every flush/fence/TX_ADD/store, so an active bug changes
the library's behaviour exactly at its site — the software analogue of
editing the source and recompiling.

Detection accounting: a bug can be detected only if some generated test
case *triggers* its site; the injector records triggered bug IDs so the
evaluation pipeline can credit test cases (and the back-end detector
then confirms the resulting trace violation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set


class BugKind(enum.Enum):
    """The synthetic bug classes of Section 5.1.

    ``WRONG_VALUE`` inverts the stored bytes (a garbage write);
    ``WRONG_COMMIT`` zeroes them — the paper's "setting a wrong value to
    the commit variables": a commit flag that should open a recovery
    window is written as *not set*, so the window silently never opens.
    """

    MISSING_FLUSH = "missing_flush"
    MISSING_FENCE = "missing_fence"
    MISSING_TXADD = "missing_txadd"
    WRONG_VALUE = "wrong_value"
    WRONG_COMMIT = "wrong_commit"


@dataclass(frozen=True)
class SyntheticBug:
    """One injectable bug: a kind applied at a named PM-operation site.

    Attributes:
        bug_id: unique identifier, e.g. ``"btree:s03"``.
        site: the site label of the PM operation the bug corrupts.
        kind: which corruption to apply there.
        depth: qualitative reachability (0 = init path, hit by any run;
            1 = common op path; 2 = deep path needing a populated image
            or crash image).  Used only for reporting.
    """

    bug_id: str
    site: str
    kind: BugKind
    depth: int = 1
    description: str = ""


class BugInjector:
    """Applies a set of active synthetic bugs during execution.

    The pmdk layer calls :meth:`skip_flush` / :meth:`skip_fence` /
    :meth:`skip_tx_add` / :meth:`corrupt_store` on every corresponding
    operation; when the site matches an active bug the effect is applied
    and the bug is recorded as *triggered*.
    """

    def __init__(self, bugs: Iterable[SyntheticBug] = ()) -> None:
        self._by_site: Dict[str, SyntheticBug] = {}
        for bug in bugs:
            self.activate(bug)
        self.triggered: Set[str] = set()

    def activate(self, bug: SyntheticBug) -> None:
        """Make ``bug`` active (one bug per site)."""
        self._by_site[bug.site] = bug

    def deactivate(self, bug_id: str) -> None:
        """Remove an active bug by ID."""
        self._by_site = {
            s: b for s, b in self._by_site.items() if b.bug_id != bug_id
        }

    def active_bugs(self) -> FrozenSet[str]:
        """IDs of all active bugs."""
        return frozenset(b.bug_id for b in self._by_site.values())

    # ------------------------------------------------------------------
    # Hooks called from the pmdk layer
    # ------------------------------------------------------------------
    def _match(self, site: str, kind: BugKind) -> Optional[SyntheticBug]:
        bug = self._by_site.get(site)
        if bug is not None and bug.kind is kind:
            self.triggered.add(bug.bug_id)
            return bug
        return None

    def skip_flush(self, site: str) -> bool:
        """True if an active MISSING_FLUSH bug removes this writeback."""
        return self._match(site, BugKind.MISSING_FLUSH) is not None

    def skip_fence(self, site: str) -> bool:
        """True if an active MISSING_FENCE bug removes this ordering point.

        Removing the fence between two ordered writes is also how the
        paper's "reorder PM writes" bugs are realized: without the fence
        the second write may persist first.
        """
        return self._match(site, BugKind.MISSING_FENCE) is not None

    def skip_tx_add(self, site: str) -> bool:
        """True if an active MISSING_TXADD bug removes this backup."""
        return self._match(site, BugKind.MISSING_TXADD) is not None

    def corrupt_store(self, site: str, addr: int, data: bytes) -> bytes:
        """Apply a WRONG_VALUE (invert) or WRONG_COMMIT (zero) bug."""
        if self._match(site, BugKind.WRONG_VALUE) is not None:
            return bytes(b ^ 0xFF for b in data)
        if self._match(site, BugKind.WRONG_COMMIT) is not None:
            return b"\0" * len(data)
        return data


@dataclass
class SiteCoverage:
    """Which synthetic-bug sites a corpus of test cases has reached."""

    sites_hit: Set[str] = field(default_factory=set)

    def update(self, sites: Iterable[str]) -> None:
        self.sites_hit.update(sites)

    def covered(self, bugs: Iterable[SyntheticBug]) -> Set[str]:
        """Return the IDs of bugs whose site some test case reached."""
        return {b.bug_id for b in bugs if b.site in self.sites_hit}
