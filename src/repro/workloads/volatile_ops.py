"""Volatile (DRAM-only) command processing shared by all workloads.

Real PM programs are mostly *not* PM code: protocol parsing, statistics,
help text, encoding, expiry policy — all volatile.  The paper's third
requirement is built on exactly this: "PM programs may contain
procedures for different purposes ... traditional coverage metrics, such
as branch coverage, do not target procedures with the most concerned PM
operations" (Section 2.3).

This module is that volatile bulk, shared by every workload: a set of
commands that perform no PM operation at all but carry a large,
data-dependent branch space.  A branch-coverage-guided fuzzer (the
AFL++ baselines) dutifully explores it — saving and mutating test cases
that never touch persistent memory — while PMFuzz's PM-path priority
keeps its queue focused on the PM-relevant inputs.  This is the code
that reproduces the volatile/persistent code-ratio property Figure 13
shows for Memcached and Redis.

Commands (see :mod:`repro.workloads.mapcli`):

``h``        help text assembly (branch ladder over known verbs)
``s``        statistics rendering (formatting state machine)
``e <key>``  echo/encode a key through several encodings
``u <key>``  checksum/validation state machine over the key's digits
``w <key>``  classification of the key by bit patterns
``v``        version/feature banner negotiation
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.workloads.base import Command

#: Ops handled here — none of them performs a PM operation.
VOLATILE_OPS = frozenset({"h", "s", "e", "u", "w", "v"})


class VolatileCommandProcessor:
    """DRAM-only command handling with a deliberately wide branch space."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._last_classified: Optional[str] = None

    def reset(self) -> None:
        """Return to the freshly-constructed state.

        The executor pools one processor across executions; every
        volatile branch depends only on ``_counters`` /
        ``_last_classified``, so resetting them makes a reused processor
        indistinguishable from a new one (determinism-neutral — proved
        by the reuse test in ``tests/fuzz/test_warmcache.py``).
        """
        self._counters.clear()
        self._last_classified = None

    # ------------------------------------------------------------------
    def handle(self, cmd: Command) -> str:
        """Dispatch one volatile command."""
        self._counters[cmd.op] = self._counters.get(cmd.op, 0) + 1
        if cmd.op == "h":
            return self._help()
        if cmd.op == "s":
            return self._stats()
        if cmd.op == "e":
            return self._echo(cmd.key or 0)
        if cmd.op == "u":
            return self._checksum(cmd.key or 0)
        if cmd.op == "w":
            return self._classify(cmd.key or 0)
        if cmd.op == "v":
            return self._version()
        return "?"

    # ------------------------------------------------------------------
    def _help(self) -> str:
        lines: List[str] = []
        seen = self._counters
        if "i" in seen or not seen:
            lines.append("i <k> <v>: insert")
        if seen.get("h", 0) > 2:
            lines.append("(help shown repeatedly)")
        elif seen.get("h", 0) == 2:
            lines.append("(help shown twice)")
        else:
            lines.append("g <k>: get")
            lines.append("r <k>: remove")
        if seen.get("s"):
            lines.append("s: stats")
        if seen.get("q"):
            lines.append("q: scan")
        if len(lines) > 4:
            lines = lines[:4]
            lines.append("...")
        return "; ".join(lines)

    def _stats(self) -> str:
        parts: List[str] = []
        total = sum(self._counters.values())
        if total == 0:
            return "no activity"
        for op in sorted(self._counters):
            count = self._counters[op]
            if count == 1:
                parts.append(f"{op}:once")
            elif count < 5:
                parts.append(f"{op}:{count}")
            elif count < 20:
                parts.append(f"{op}:many")
            else:
                parts.append(f"{op}:hot")
        if total > 50:
            parts.append("session:long")
        elif total > 10:
            parts.append("session:active")
        else:
            parts.append("session:new")
        return " ".join(parts)

    def _echo(self, key: int) -> str:
        encodings: List[str] = []
        if key == 0:
            return "zero"
        if key % 2 == 0:
            encodings.append(f"even:{key // 2}")
        else:
            encodings.append(f"odd:{(key - 1) // 2}")
        if key < 10:
            encodings.append("digit")
        elif key < 100:
            encodings.append(f"tens:{key // 10}")
        elif key < 1000:
            encodings.append(f"hundreds:{key // 100}")
        else:
            encodings.append("large")
        hexed = format(key, "x")
        if len(hexed) == 1:
            encodings.append(f"x{hexed}")
        elif hexed[0] == hexed[-1]:
            encodings.append(f"pal:{hexed}")
        else:
            encodings.append(f"hex:{hexed}")
        if bin(key).count("1") > 5:
            encodings.append("dense")
        return "|".join(encodings)

    def _checksum(self, key: int) -> str:
        state = 0
        digits = str(key)
        for ch in digits:
            d = ord(ch) - ord("0")
            if state == 0:
                state = 1 if d < 5 else 2
            elif state == 1:
                if d == 0:
                    state = 3
                elif d % 3 == 0:
                    state = 2
                else:
                    state = 1
            elif state == 2:
                if d == 9:
                    state = 4
                elif d % 2:
                    state = 1
                else:
                    state = 2
            elif state == 3:
                state = 4 if d > 6 else 0
            else:
                break
        checksum = sum(ord(c) for c in digits) % 97
        if state == 4:
            return f"accept:{checksum}"
        if state == 3:
            return f"hold:{checksum}"
        if checksum == 0:
            return "neutral"
        if checksum < 32:
            return f"low:{checksum}"
        if checksum < 64:
            return f"mid:{checksum}"
        return f"high:{checksum}"

    def _classify(self, key: int) -> str:
        tags: List[str] = []
        if key & 1:
            tags.append("lsb")
        if key & 0x80:
            tags.append("bit7")
        if key & 0xF0 == 0xF0:
            tags.append("hinib")
        if (key >> 4) & 0x3 == 0x3:
            tags.append("midpair")
        nibbles = [(key >> shift) & 0xF for shift in (0, 4, 8)]
        if nibbles[0] == nibbles[1]:
            tags.append("rep01")
        if nibbles[1] == nibbles[2]:
            tags.append("rep12")
        if nibbles[0] > nibbles[1] > nibbles[2]:
            tags.append("desc")
        elif nibbles[0] < nibbles[1] < nibbles[2]:
            tags.append("asc")
        if not tags:
            tags.append("plain")
        label = ",".join(tags)
        if label == self._last_classified:
            label += "(again)"
        self._last_classified = label
        return label

    def _version(self) -> str:
        seen = self._counters.get("v", 0)
        if seen == 1:
            return "pm-map 1.0 (features: tx, scan, stats)"
        if seen == 2:
            return "pm-map 1.0"
        if seen < 6:
            return "1.0"
        return "ok"
