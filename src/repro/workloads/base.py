"""Workload interface shared by all eight PM programs.

A workload owns a pool layout and knows how to:

* create a fresh PM image (the empty seed image),
* open an image — running both PMDK transaction recovery and its own
  application-level recovery/reconstruction, the code region where the
  paper's Bugs 1-6 live,
* execute mapcli commands against the open pool,
* check the structural consistency of a pool (the test oracle the
  XFDetector-like checker applies after recovery).

Workloads accept a set of *real-bug* flags (see
:mod:`repro.workloads.realbugs`); the default is the fixed program, and
each flag re-introduces one of the 12 bugs PMFuzz found.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import CommandError, OutOfPMemError, TransactionAborted
from repro.pmem.image import PMImage
from repro.pmdk.pool import PmemObjPool

if TYPE_CHECKING:
    from repro.pmem.crash import CrashSnapshot, SnapshotPlan
    from repro.workloads.synthetic import SyntheticBug


@dataclass(frozen=True)
class Command:
    """One parsed mapcli command."""

    op: str
    key: Optional[int] = None
    value: Optional[int] = None

    def __str__(self) -> str:
        parts = [self.op]
        if self.key is not None:
            parts.append(str(self.key))
        if self.value is not None:
            parts.append(str(self.value))
        return " ".join(parts)


class RunOutcome(enum.Enum):
    """How an execution of (image, commands) ended."""

    OK = "ok"  #: ran to completion, clean shutdown
    CRASHED = "crashed"  #: simulated failure at an injected point
    SEGFAULT = "segfault"  #: NULL/out-of-bounds persistent dereference
    INVALID_IMAGE = "invalid_image"  #: image failed validation at open
    ERROR = "error"  #: other program error (aborted transaction, OOM...)
    HARNESS_FAULT = "harness_fault"  #: the harness itself died (env fault)


@dataclass
class RunResult:
    """Outcome of one workload execution."""

    outcome: RunOutcome
    final_image: Optional[PMImage] = None  #: normal image (clean run only)
    crash_image: Optional[PMImage] = None  #: strict snapshot at the failure
    #: Weaker crash states (cache-eviction semantics): images where some
    #: pending lines additionally persisted.  Only populated for crashed
    #: runs when ``weak_states`` was requested.
    weak_crash_images: List[PMImage] = field(default_factory=list)
    fence_count: int = 0  #: ordering points executed (crash-gen domain)
    store_count: int = 0  #: stores executed (probabilistic crash points)
    commands_run: int = 0
    outputs: List[str] = field(default_factory=list)
    error: str = ""
    #: Materialized strict crash images harvested by a snapshot plan
    #: (single-pass crash generation); empty when no plan was armed.
    snapshots: List["CrashSnapshot"] = field(default_factory=list)


class Workload(abc.ABC):
    """Base class for the eight evaluated PM programs."""

    #: Short name used by the registry and the benchmarks.
    name: str = ""
    #: Pool layout string (must match at open).
    layout: str = ""
    #: Pool payload size in bytes.
    pool_size: int = 256 * 1024

    #: Class-level cache of the volatile op set, resolved once per
    #: process in (uninstrumented) construction — the command loop must
    #: never pay the per-exec import, and must never *trace* it either
    #: (a first-exec-only import line would make coverage depend on how
    #: many executions the process already ran).
    _VOLATILE_OPS: Optional[FrozenSet[str]] = None

    def __init__(self, bugs: FrozenSet[str] = frozenset()) -> None:
        self.bugs = frozenset(bugs)
        if Workload._VOLATILE_OPS is None:
            from repro.workloads.volatile_ops import VOLATILE_OPS

            Workload._VOLATILE_OPS = VOLATILE_OPS
        #: DRAM-only command handling (help/stats/encodings) — the
        #: volatile code bulk every real PM program carries (Req. 3).
        #: Lazily built by the harness on first use, or adopted from the
        #: executor's pooled processor (one per executor, reset per
        #: exec) so the hot path skips the construction.
        self._volatile = None

    def adopt_volatile(self, processor) -> None:
        """Reuse a pooled volatile processor for the next execution."""
        processor.reset()
        self._volatile = processor

    # ------------------------------------------------------------------
    # Hooks implemented by each workload
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def create_structure(self, pool: PmemObjPool) -> None:
        """Initialize the persistent data structure on a fresh pool."""

    @abc.abstractmethod
    def is_created(self, pool: PmemObjPool) -> bool:
        """Return True if the structure was fully initialized."""

    @abc.abstractmethod
    def exec_command(self, pool: PmemObjPool, cmd: Command) -> Optional[str]:
        """Apply one command; may return an output string."""

    @abc.abstractmethod
    def check_consistency(self, pool: PmemObjPool) -> List[str]:
        """Return a list of invariant violations (empty = consistent)."""

    def recover(self, pool: PmemObjPool) -> None:
        """Application-level recovery after pool open (default: none).

        Transaction-based workloads recover automatically inside
        ``pmemobj_open``; workloads built on low-level primitives (the
        Hashmap-Atomic family) override this — and paper Bug 6 is a
        driver that forgets to call it.
        """

    def synthetic_bugs(self) -> Sequence["SyntheticBug"]:
        """The Table-3 synthetic bug sites for this workload."""
        return ()

    # ------------------------------------------------------------------
    # Driver (the mapcli main() analogue)
    # ------------------------------------------------------------------
    def create_image(self) -> PMImage:
        """Build the empty seed image: a fresh pool with no structure.

        The structure itself is created lazily by :meth:`open` on first
        use, matching mapcli's flow (and making the creation transaction
        part of the fuzzed execution, where Bugs 1-5 hide).
        """
        pool = PmemObjPool.create(self.layout, self.pool_size)
        return pool.close()

    def open(self, image: PMImage) -> PmemObjPool:
        """Open an image the way the mapcli driver does.

        Steps: ``pmemobj_open`` (validates + runs transaction recovery),
        application-level recovery, then structure creation when needed.

        The ``init_not_retried`` bug variant (paper Bugs 1-5) only
        creates the structure on a *brand new* pool: if a previous run
        crashed during creation and the transaction rolled back, the
        buggy driver assumes a fully initialized structure and later
        dereferences a NULL pointer.
        """
        pool = PmemObjPool.open(image, self.layout)
        fresh = pool.root_oid == 0
        if "bug6_no_recovery_call" not in self.bugs:
            self.recover(pool)
        if fresh:
            self.create_structure(pool)
        elif not self.is_created(pool):
            if "init_not_retried" not in self.bugs:
                self.create_structure(pool)
            # Buggy driver: assume creation completed; Bugs 1-5 fire on
            # the first command that dereferences the missing structure.
        return pool

    def open_for_inspection(self, image: PMImage) -> PmemObjPool:
        """Open an image *without* the driver's repair behaviour.

        The detection oracles use this: they must judge the persistent
        state exactly as it is.  Opening through :meth:`open` would let
        the driver re-create a missing structure or re-run application
        recovery, silently healing the very corruption the oracle is
        looking for.  (PMDK undo-log recovery still runs — it is part of
        ``pmemobj_open`` itself.)
        """
        return PmemObjPool.open(image, self.layout)

    def run(
        self,
        image: PMImage,
        commands: Sequence[Command],
        crash_at_fence: Optional[int] = None,
        crash_at_store: Optional[int] = None,
        weak_states: bool = False,
        max_weak_states: int = 8,
        snapshot_plan: Optional["SnapshotPlan"] = None,
        warm=None,
    ) -> RunResult:
        """Execute ``commands`` on ``image``; optionally crash mid-way.

        This is the complete program lifecycle of Figure 4: load the PM
        image, (maybe) recover, apply input commands, and either shut
        down cleanly (producing a *normal image*) or fail — at the given
        ordering point (``crash_at_fence``) or at an arbitrary store
        (``crash_at_store``, the paper's probabilistic extra failure
        points).  With ``weak_states`` the result also carries crash
        images under cache-eviction semantics: states where a subset of
        the pending lines persisted even though no fence ordered them.

        With a ``snapshot_plan`` the persistence domain additionally
        captures the strict crash image at every planned fence / store
        index during this single execution; the materialized images come
        back in ``RunResult.snapshots`` (single-pass crash generation).
        The orchestration (open, arm, classify the outcome) lives in
        :func:`repro.fuzz.harness.run_workload` — deliberately outside
        the instrumented workloads package, so that fuzzer-configuration
        branches (warm-open hit vs cold open) never enter the coverage
        map.  Only the target-program code here does:
        :meth:`run_prefix` and :meth:`run_commands`.
        """
        from repro.fuzz.harness import run_workload

        return run_workload(self, image, commands,
                            crash_at_fence=crash_at_fence,
                            crash_at_store=crash_at_store,
                            weak_states=weak_states,
                            max_weak_states=max_weak_states,
                            snapshot_plan=snapshot_plan,
                            warm=warm)

    def run_prefix(self, pool: PmemObjPool) -> None:
        """Recovery/creation replay: the execution prefix of Figure 4.

        Everything between pool open and the first fuzzed command — the
        code region the warm-open cache memoizes.  Failure points are
        armed before this runs, so crashes can land inside it.
        """
        fresh = pool.root_oid == 0
        if "bug6_no_recovery_call" not in self.bugs:
            self.recover(pool)
        if fresh:
            self.create_structure(pool)
        elif not self.is_created(pool):
            if "init_not_retried" not in self.bugs:
                self.create_structure(pool)

    def run_commands(self, pool: PmemObjPool, commands: Sequence[Command],
                     result: RunResult) -> None:
        """Apply the fuzzed commands and close the pool (clean run)."""
        ops = Workload._VOLATILE_OPS
        volatile = self._volatile
        for cmd in commands:
            try:
                if cmd.op in ops:
                    output = volatile.handle(cmd)
                else:
                    output = self.exec_command(pool, cmd)
            except (CommandError, TransactionAborted, OutOfPMemError):
                continue  # mapcli prints an error and keeps reading
            if output is not None:
                result.outputs.append(output)
            result.commands_run += 1
        result.final_image = pool.close()

    @staticmethod
    def _weak_images(pool: PmemObjPool, limit: int) -> List[PMImage]:
        """Crash states under eviction semantics (see repro.pmem.crash)."""
        from repro.pmem.crash import CrashPolicy, crash_states

        images: List[PMImage] = []
        states = crash_states(pool.domain, CrashPolicy.ALL_PENDING)
        next(states, None)  # the strict state is already crash_image
        for payload in states:
            if len(images) >= limit:
                break
            images.append(PMImage(layout=pool.image.layout,
                                  payload=bytearray(payload),
                                  uuid=pool.image.uuid))
        return images
