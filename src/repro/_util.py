"""Small shared utilities: stable hashing and formatting helpers.

Python's built-in ``hash()`` is salted per process, which would break the
paper's derandomization requirement (Section 4.4): identical inputs must
produce identical coverage maps and image hashes across runs.  Everything
here is deterministic.
"""

from __future__ import annotations

import hashlib
import os
import zlib


def stable_hash32(text: str) -> int:
    """Return a deterministic 32-bit hash of ``text``."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def stable_hash16(text: str) -> int:
    """Return a deterministic 16-bit hash of ``text``.

    Used to assign PM-operation call-site IDs, mirroring the compile-time
    random IDs AFL-style instrumentation assigns to basic blocks.
    """
    h = stable_hash32(text)
    return (h ^ (h >> 16)) & 0xFFFF


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 hex digest of ``data`` (PM-image dedup key)."""
    return hashlib.sha256(data).hexdigest()


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value - (value % alignment)


def format_duration(virtual_seconds: float) -> str:
    """Format virtual seconds as the paper's H:MM axis labels."""
    total_minutes = int(virtual_seconds // 60)
    return f"{total_minutes // 60}:{total_minutes % 60:02d}"


# ----------------------------------------------------------------------
# Crash-safe on-disk blobs
#
# Every durable artifact the fuzzer writes — campaign checkpoints,
# shared-corpus sync entries, fleet-member result files — uses the same
# two disciplines: a checksummed container (magic + SHA-256 + payload)
# so damage is *detected*, and write-tmp + fsync + rename so damage from
# a kill mid-write is *impossible* (the classic protocol the PM programs
# under test are being fuzzed for).
# ----------------------------------------------------------------------
_DIGEST_LEN = 64  # sha256 hex digest length


def pack_checksummed(magic: bytes, blob: bytes) -> bytes:
    """Wrap ``blob`` as ``magic + sha256hex + "\\n" + blob``."""
    digest = hashlib.sha256(blob).hexdigest().encode("ascii")
    return magic + digest + b"\n" + blob


def unpack_checksummed(magic: bytes, data: bytes, what: str = "blob") -> bytes:
    """Verify and unwrap a :func:`pack_checksummed` container.

    Raises :class:`ValueError` (with a human-readable reason) on a bad
    magic, a damaged header, or a checksum mismatch — the caller decides
    whether that means "quarantine the file" or "abort the resume".
    """
    if not data.startswith(magic):
        raise ValueError(f"{what} has wrong magic (not this container type)")
    body = data[len(magic):]
    newline = body.find(b"\n")
    if newline != _DIGEST_LEN:
        raise ValueError(f"{what} header is damaged")
    digest, blob = body[:newline], body[newline + 1:]
    if hashlib.sha256(blob).hexdigest().encode("ascii") != digest:
        raise ValueError(
            f"{what} failed checksum verification (truncated or corrupted)")
    return blob


def atomic_write_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Atomically publish ``data`` at ``path`` (write-tmp+fsync+rename).

    A kill at any point leaves either the old file or the new one, never
    a torn file.  The temp file lives in the target directory so the
    rename never crosses filesystems.  All mutations go through the
    process VFS seam (:mod:`repro._vfs`) so the durability auditor can
    record and crash-test the exact operation order.
    """
    from repro._vfs import current_vfs

    vfs = current_vfs()
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = os.path.join(directory, os.path.basename(path) + ".tmp")
    vfs.write_bytes(tmp_path, data)
    if not fsync:
        vfs.replace(tmp_path, path)
        return
    vfs.fsync(tmp_path)
    replace_durable(tmp_path, path)


def replace_durable(src: str, dst: str) -> None:
    """``os.replace`` followed by a parent-directory fsync.

    The rename itself is atomic in the *live* namespace, but after a
    crash it is durable only once the directory entry reaches stable
    storage — a bare ``os.replace`` leaves a window where later,
    durable operations are on disk while the rename is not (the
    ordering-bug class the durability auditor enumerates).  Every
    crash-critical same-directory rename in the repo routes through
    here.  When ``src`` and ``dst`` have different parents both are
    fsynced (destination first, so the new name can never be the one
    that is lost) — but see :func:`move_durable` for why a
    cross-directory *move* should not use a rename at all.
    """
    from repro._vfs import current_vfs

    vfs = current_vfs()
    vfs.replace(src, dst)
    dst_dir = os.path.dirname(os.path.abspath(dst))
    src_dir = os.path.dirname(os.path.abspath(src))
    vfs.fsync_dir(dst_dir)
    if src_dir != dst_dir:
        vfs.fsync_dir(src_dir)


def move_durable(src: str, dst: str) -> None:
    """Crash-safe cross-directory move: link, fsync, then unlink.

    A cross-directory ``os.replace`` updates *two* directories; a crash
    may persist the source-side removal without the destination-side
    insertion (the two directory blocks reach disk independently),
    silently losing the file.  No after-the-fact fsync closes that
    window, so the move is decomposed into operations that are
    individually safe at every crash point:

    1. ``link(src, dst)`` — the file now has two names; losing the new
       one costs nothing.
    2. ``fsync(dst parent)`` — the new name is durable.
    3. ``unlink(src)`` — only now may the old name disappear; a crash
       that persists this step cannot lose the file, and a crash that
       drops it merely leaves the file visible under both names (the
       caller's recovery path removes the leftover).

    Raises the same exceptions as ``os.replace`` for a missing ``src``
    (``FileNotFoundError``), which callers use as a race claim.  Falls
    back to :func:`replace_durable` where hardlinks are unsupported.
    """
    from repro._vfs import current_vfs

    vfs = current_vfs()
    if os.path.exists(dst):
        # Content-addressed stores only move a key between tiers; an
        # existing destination is the same payload (or a racing mover's
        # completed work) — dropping the source finishes the move.
        vfs.unlink(src)
        vfs.fsync_dir(os.path.dirname(os.path.abspath(src)))
        return
    try:
        vfs.link(src, dst)
    except FileNotFoundError:
        raise
    except OSError:
        # Filesystem without hardlink support: the atomic-but-less-
        # crash-ordered rename is still strictly better than tearing.
        replace_durable(src, dst)
        return
    vfs.fsync_dir(os.path.dirname(os.path.abspath(dst)))
    try:
        vfs.unlink(src)
    except FileNotFoundError:
        pass  # a racing mover finished step 3 first; dst is durable
    vfs.fsync_dir(os.path.dirname(os.path.abspath(src)))
