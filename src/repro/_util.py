"""Small shared utilities: stable hashing and formatting helpers.

Python's built-in ``hash()`` is salted per process, which would break the
paper's derandomization requirement (Section 4.4): identical inputs must
produce identical coverage maps and image hashes across runs.  Everything
here is deterministic.
"""

from __future__ import annotations

import hashlib
import zlib


def stable_hash32(text: str) -> int:
    """Return a deterministic 32-bit hash of ``text``."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def stable_hash16(text: str) -> int:
    """Return a deterministic 16-bit hash of ``text``.

    Used to assign PM-operation call-site IDs, mirroring the compile-time
    random IDs AFL-style instrumentation assigns to basic blocks.
    """
    h = stable_hash32(text)
    return (h ^ (h >> 16)) & 0xFFFF


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 hex digest of ``data`` (PM-image dedup key)."""
    return hashlib.sha256(data).hexdigest()


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value - (value % alignment)


def format_duration(virtual_seconds: float) -> str:
    """Format virtual seconds as the paper's H:MM axis labels."""
    total_minutes = int(virtual_seconds // 60)
    return f"{total_minutes // 60}:{total_minutes % 60:02d}"
