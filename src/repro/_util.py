"""Small shared utilities: stable hashing and formatting helpers.

Python's built-in ``hash()`` is salted per process, which would break the
paper's derandomization requirement (Section 4.4): identical inputs must
produce identical coverage maps and image hashes across runs.  Everything
here is deterministic.
"""

from __future__ import annotations

import hashlib
import os
import zlib


def stable_hash32(text: str) -> int:
    """Return a deterministic 32-bit hash of ``text``."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def stable_hash16(text: str) -> int:
    """Return a deterministic 16-bit hash of ``text``.

    Used to assign PM-operation call-site IDs, mirroring the compile-time
    random IDs AFL-style instrumentation assigns to basic blocks.
    """
    h = stable_hash32(text)
    return (h ^ (h >> 16)) & 0xFFFF


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 hex digest of ``data`` (PM-image dedup key)."""
    return hashlib.sha256(data).hexdigest()


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value - (value % alignment)


def format_duration(virtual_seconds: float) -> str:
    """Format virtual seconds as the paper's H:MM axis labels."""
    total_minutes = int(virtual_seconds // 60)
    return f"{total_minutes // 60}:{total_minutes % 60:02d}"


# ----------------------------------------------------------------------
# Crash-safe on-disk blobs
#
# Every durable artifact the fuzzer writes — campaign checkpoints,
# shared-corpus sync entries, fleet-member result files — uses the same
# two disciplines: a checksummed container (magic + SHA-256 + payload)
# so damage is *detected*, and write-tmp + fsync + rename so damage from
# a kill mid-write is *impossible* (the classic protocol the PM programs
# under test are being fuzzed for).
# ----------------------------------------------------------------------
_DIGEST_LEN = 64  # sha256 hex digest length


def pack_checksummed(magic: bytes, blob: bytes) -> bytes:
    """Wrap ``blob`` as ``magic + sha256hex + "\\n" + blob``."""
    digest = hashlib.sha256(blob).hexdigest().encode("ascii")
    return magic + digest + b"\n" + blob


def unpack_checksummed(magic: bytes, data: bytes, what: str = "blob") -> bytes:
    """Verify and unwrap a :func:`pack_checksummed` container.

    Raises :class:`ValueError` (with a human-readable reason) on a bad
    magic, a damaged header, or a checksum mismatch — the caller decides
    whether that means "quarantine the file" or "abort the resume".
    """
    if not data.startswith(magic):
        raise ValueError(f"{what} has wrong magic (not this container type)")
    body = data[len(magic):]
    newline = body.find(b"\n")
    if newline != _DIGEST_LEN:
        raise ValueError(f"{what} header is damaged")
    digest, blob = body[:newline], body[newline + 1:]
    if hashlib.sha256(blob).hexdigest().encode("ascii") != digest:
        raise ValueError(
            f"{what} failed checksum verification (truncated or corrupted)")
    return blob


def atomic_write_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Atomically publish ``data`` at ``path`` (write-tmp+fsync+rename).

    A kill at any point leaves either the old file or the new one, never
    a torn file.  The temp file lives in the target directory so the
    rename never crosses filesystems.
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = os.path.join(directory, os.path.basename(path) + ".tmp")
    with open(tmp_path, "wb") as fh:
        fh.write(data)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    if not fsync:
        return
    # Persist the rename itself (directory entry) — best effort on
    # platforms whose directories cannot be opened.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
