"""Persistence-domain simulation: the volatile cache in front of PM media.

The central difficulty of PM programming — and the source of every crash
consistency bug the paper targets — is that a CPU store does not reach the
persistent media immediately.  It sits in a volatile cache line until the
line is written back (CLWB) and the writeback is ordered (SFENCE), or until
the cache evicts it at some arbitrary time.

:class:`PersistenceDomain` models exactly that, at cache-line (64 B)
granularity:

* ``store`` updates the volatile view and marks the touched lines DIRTY;
* ``flush`` (CLWB analogue) marks lines FLUSHED — queued for persistence
  but not yet ordered;
* ``drain`` (SFENCE analogue) writes every FLUSHED line to the media array.

A *strict crash snapshot* at any point is the media array: the bytes that
are guaranteed persistent.  Because real caches may evict dirty lines at
any time, a crash may additionally persist any subset of pending lines;
:mod:`repro.pmem.crash` enumerates those weaker states for the detectors.

Every operation emits a :class:`TraceEvent` to registered observers.  The
detection tools (:mod:`repro.detect`) and the PM-path instrumentation
(:mod:`repro.instrument`) are both implemented as observers, mirroring how
Pmemcheck and the PMFuzz runtime both consume the PM operation stream.
When *no* observers are registered — the common case on the fuzzing hot
path — the data-path operations skip event construction and dispatch
entirely (only the sequence counter advances), so an uninstrumented
execution pays nothing for the observability seam.

Single-pass crash harvesting
----------------------------
:meth:`plan_snapshots` arms the domain with a set of fence indices and
store indices at which to capture the media state.  A captured
:class:`MediaSnapshot` is cheap: it holds a reference to the live media
array plus a dict of lines overwritten *since* the capture point
(maintained copy-on-write by :meth:`drain`), and materializes the full
byte image lazily.  This is what lets the crash-image generator harvest
every strict crash image from one instrumented execution instead of one
re-execution per failure point (see :mod:`repro.core.crashgen`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (Callable, Dict, FrozenSet, Iterable, Iterator, List,
                    Optional, Set, Tuple)

from repro.errors import PMemError

#: Cache-line size in bytes, matching x86.
CACHE_LINE = 64

#: Window size for the chunked volatile-vs-media comparison.
_RANGE_CHUNK = 4096


class LineState(enum.Enum):
    """Persistence state of a single cache line."""

    CLEAN = "clean"  #: volatile view matches media
    DIRTY = "dirty"  #: stored to, not yet flushed
    FLUSHED = "flushed"  #: flushed (CLWB), awaiting a fence


class TraceEventKind(enum.Enum):
    """Kinds of events in the PM operation trace."""

    STORE = "store"
    LOAD = "load"
    FLUSH = "flush"
    FENCE = "fence"
    # Annotation events emitted by the pmdk layer, not the hardware model.
    TX_BEGIN = "tx_begin"
    TX_COMMIT = "tx_commit"
    TX_ABORT = "tx_abort"
    TX_ADD = "tx_add"
    TX_ADD_REDUNDANT = "tx_add_redundant"
    ALLOC = "alloc"
    FREE = "free"
    POOL_OPEN = "pool_open"
    POOL_CLOSE = "pool_close"
    RECOVERY = "recovery"
    FLUSH_REDUNDANT = "flush_redundant"


@dataclass(frozen=True)
class TraceEvent:
    """One entry in the PM operation trace.

    Attributes:
        kind: what happened.
        addr: pool-relative byte offset (0 for pure ordering events).
        size: number of bytes affected.
        seq: global sequence number, unique and monotonically increasing.
        site: source call-site label (``file:line`` of the workload code
            that invoked the PM library), used for bug attribution.
    """

    kind: TraceEventKind
    addr: int
    size: int
    seq: int
    site: str = ""


Observer = Callable[[TraceEvent], None]


class MediaSnapshot:
    """A lazy copy-on-write capture of the media array at one instant.

    The snapshot holds a *reference* to the domain's live media bytearray
    plus a dict of the original contents of every line overwritten since
    the capture point; :meth:`drain` maintains the dict.  Materializing
    costs one media copy plus one overlay write per saved line, and the
    capture itself costs O(1) — which is what makes harvesting ~8 crash
    images from a single execution cheaper than 8 re-executions.

    Attributes:
        kind: ``"fence"`` or ``"store"`` — which crash-point family.
        index: the fence index / store index of the capture point.
        fences_done: fences completed when the capture was taken.  For a
            fence snapshot this is ``index + 1`` (the capture happens
            after the fence's writeback), matching the fence count a
            legacy re-execution crashing at this point would report.
    """

    __slots__ = ("kind", "index", "fences_done", "_media_ref", "_saved")

    def __init__(self, kind: str, index: int, fences_done: int,
                 media_ref: bytearray) -> None:
        self.kind = kind
        self.index = index
        self.fences_done = fences_done
        self._media_ref = media_ref
        #: line index -> the line's media bytes at capture time, recorded
        #: only when a later fence overwrites the line (copy-on-write).
        self._saved: Dict[int, bytes] = {}

    def materialize(self) -> bytes:
        """Reconstruct the full media contents at the capture instant."""
        buf = bytearray(self._media_ref)
        for line, original in self._saved.items():
            start = line * CACHE_LINE
            buf[start:start + len(original)] = original
        return bytes(buf)


class PersistenceDomain:
    """Byte-addressable PM with a simulated volatile cache in front.

    Args:
        size: capacity in bytes.
        initial: optional initial *persistent* contents (e.g. from a PM
            image file); defaults to zeroes.

    The domain deliberately has no notion of virtual addresses: all
    addresses are pool-relative offsets, which is the reproduction of the
    paper's derandomization of persistent addresses via
    ``PMEM_MMAP_HINT`` (Section 4.4) — every run sees the same addresses.
    """

    def __init__(self, size: int, initial: Optional[bytes] = None) -> None:
        if size <= 0:
            raise PMemError(f"domain size must be positive, got {size}")
        if initial is not None and len(initial) != size:
            raise PMemError(
                f"initial contents are {len(initial)} bytes, expected {size}"
            )
        self.size = size
        self._media = bytearray(initial) if initial is not None else bytearray(size)
        self._volatile = bytearray(self._media)
        #: line index -> state (absent means CLEAN)
        self._lines: Dict[int, LineState] = {}
        #: dedicated index of FLUSHED lines, so a fence is O(flushed)
        #: instead of a scan over every tracked (mostly DIRTY) line.
        self._flushed: Set[int] = set()
        self._seq = 0
        self._fence_count = 0
        self._store_count = 0
        self._observers: List[Observer] = []
        #: Optional fence index at which to raise SimulatedCrash; managed
        #: by the executor, checked in :meth:`drain`.
        self.crash_at_fence: Optional[int] = None
        #: Optional store index at which to raise SimulatedCrash — a
        #: failure *between* ordering points, where pending (dirty or
        #: flushed-unfenced) lines make the space of possible persistent
        #: states larger than the strict snapshot.
        self.crash_at_store: Optional[int] = None
        #: Snapshot plan for single-pass crash harvesting (empty = off).
        self._snap_fences: FrozenSet[int] = frozenset()
        self._snap_stores: FrozenSet[int] = frozenset()
        self._snapshots: List[MediaSnapshot] = []

    # ------------------------------------------------------------------
    # Observer plumbing
    # ------------------------------------------------------------------
    def add_observer(self, observer: Observer) -> None:
        """Register a callback invoked for every trace event."""
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        """Unregister a previously added observer."""
        self._observers.remove(observer)

    def emit(
        self,
        kind: TraceEventKind,
        addr: int = 0,
        size: int = 0,
        site: str = "",
    ) -> Optional[TraceEvent]:
        """Emit an annotation event (used by the pmdk layer).

        With no observers registered only the sequence counter advances:
        no :class:`TraceEvent` is constructed and ``None`` is returned,
        so the per-PM-op cost of the observability seam is one integer
        increment.  Sequence numbers are identical either way.
        """
        seq = self._seq
        self._seq = seq + 1
        if not self._observers:
            return None
        event = TraceEvent(kind=kind, addr=addr, size=size, seq=seq, site=site)
        for observer in self._observers:
            observer(event)
        return event

    # ------------------------------------------------------------------
    # Snapshot planning (single-pass crash harvesting)
    # ------------------------------------------------------------------
    def plan_snapshots(self, fences: Iterable[int] = (),
                       stores: Iterable[int] = ()) -> None:
        """Arm media captures at the given fence / store indices.

        Must be called before execution reaches the first planned index;
        indices never reached simply produce no snapshot.
        """
        self._snap_fences = frozenset(fences)
        self._snap_stores = frozenset(stores)

    def take_snapshots(self) -> List[MediaSnapshot]:
        """Return the snapshots captured so far, in execution order.

        Warm-open prefix captures (kind ``"warm"``) are internal to the
        executor's pool cache and never part of a crash-harvest plan, so
        they are excluded.
        """
        return [s for s in self._snapshots if s.kind != "warm"]

    # ------------------------------------------------------------------
    # Warm-open prefix capture / restore (executor pool cache)
    # ------------------------------------------------------------------
    def capture_warm_state(self) -> tuple:
        """Capture this domain's complete state for later reconstruction.

        Returns ``(snapshot, pending, seq, fence_count, store_count)``:
        a copy-on-write :class:`MediaSnapshot` of the media (registered
        with the domain so later fences preserve its view, exactly like
        a crash-plan snapshot) plus ``{line: (is_flushed, volatile
        bytes)}`` for every pending line.  Because CLEAN lines have
        volatile == media by construction, media + pending lines fully
        determine the domain; counters make the reconstruction
        observably identical (fence/store indexing, trace seq).
        """
        snapshot = MediaSnapshot("warm", -1, self._fence_count, self._media)
        self._snapshots.append(snapshot)
        pending: Dict[int, Tuple[bool, bytes]] = {}
        volatile = self._volatile
        size = self.size
        for line, state in self.pending_lines().items():
            start = line * CACHE_LINE
            end = start + CACHE_LINE
            if end > size:
                end = size
            pending[line] = (state is LineState.FLUSHED,
                             bytes(volatile[start:end]))
        return snapshot, pending, self._seq, self._fence_count, \
            self._store_count

    def warm_restore(self, pending: Dict[int, Tuple[bool, bytes]],
                     seq: int, fence_count: int, store_count: int) -> None:
        """Rebuild the state captured by :meth:`capture_warm_state`.

        ``self`` must be freshly constructed from the captured media
        (``initial=`` the materialized snapshot); this overlays the
        pending volatile lines and restores the line states and
        counters.  Mutation is strictly in place — subclasses keep
        aliasing views of the byte buffers.
        """
        volatile = self._volatile
        lines = self._lines
        flushed = self._flushed
        for line, (is_flushed, data) in pending.items():
            start = line * CACHE_LINE
            volatile[start:start + len(data)] = data
            if is_flushed:
                lines[line] = LineState.FLUSHED
                flushed.add(line)
            else:
                lines[line] = LineState.DIRTY
        self._seq = seq
        self._fence_count = fence_count
        self._store_count = store_count

    # ------------------------------------------------------------------
    # Data-path operations
    # ------------------------------------------------------------------
    def _check_range(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.size:
            raise PMemError(
                f"access [{addr}, {addr + size}) outside domain of size {self.size}"
            )

    def load(self, addr: int, size: int, site: str = "") -> bytes:
        """Read ``size`` bytes from the volatile view (a PM read)."""
        self._check_range(addr, size)
        self.emit(TraceEventKind.LOAD, addr, size, site)
        return bytes(self._volatile[addr : addr + size])

    def store(self, addr: int, data: bytes, site: str = "") -> None:
        """Write ``data`` at ``addr`` (a PM store; volatile until persisted)."""
        size = len(data)
        self._check_range(addr, size)
        self._volatile[addr : addr + size] = data
        if size:
            lines = self._lines
            flushed = self._flushed
            first = addr // CACHE_LINE
            last = (addr + size - 1) // CACHE_LINE
            for line in range(first, last + 1):
                lines[line] = LineState.DIRTY
                if flushed:
                    flushed.discard(line)
        store_index = self._store_count
        self._store_count += 1
        self.emit(TraceEventKind.STORE, addr, size, site)
        if store_index in self._snap_stores:
            self._snapshots.append(MediaSnapshot(
                "store", store_index, self._fence_count, self._media))
        if self.crash_at_store is not None and store_index == self.crash_at_store:
            from repro.errors import SimulatedCrash

            raise SimulatedCrash(store_index, kind="store")

    def flush(self, addr: int, size: int, site: str = "") -> None:
        """Write back the cache lines covering ``[addr, addr+size)`` (CLWB).

        Flushing a CLEAN line is legal but useless; the domain emits a
        ``FLUSH_REDUNDANT`` annotation so the Pmemcheck-like detector can
        report it as a performance bug (paper Bug 7).
        """
        self._check_range(addr, size)
        redundant = True
        if size:
            lines = self._lines
            flushed = self._flushed
            first = addr // CACHE_LINE
            last = (addr + size - 1) // CACHE_LINE
            for line in range(first, last + 1):
                if lines.get(line) is LineState.DIRTY:
                    lines[line] = LineState.FLUSHED
                    flushed.add(line)
                    redundant = False
        self.emit(TraceEventKind.FLUSH, addr, size, site)
        if redundant:
            self.emit(TraceEventKind.FLUSH_REDUNDANT, addr, size, site)

    def drain(self, site: Optional[str] = None) -> None:
        """Order all flushed lines into the media (SFENCE).

        If :attr:`crash_at_fence` equals the index of this fence, a
        :class:`~repro.errors.SimulatedCrash` is raised *after* the fence
        takes effect — i.e. the crash image contains everything this fence
        persisted, matching the paper's placement of failures *at*
        ordering points (Section 3.2).
        """
        flushed = self._flushed
        if flushed:
            media = self._media
            volatile = self._volatile
            lines = self._lines
            snapshots = self._snapshots
            size = self.size
            for line in flushed:
                start = line * CACHE_LINE
                end = start + CACHE_LINE
                if end > size:
                    end = size
                if snapshots:
                    # Copy-on-write: preserve the pre-fence contents for
                    # every live snapshot that has not seen this line yet.
                    for snap in snapshots:
                        if line not in snap._saved:
                            snap._saved[line] = bytes(media[start:end])
                media[start:end] = volatile[start:end]
                del lines[line]
            flushed.clear()
        fence_index = self._fence_count
        self._fence_count += 1
        self.emit(TraceEventKind.FENCE, 0, 0, site or "")
        if fence_index in self._snap_fences:
            self._snapshots.append(MediaSnapshot(
                "fence", fence_index, fence_index + 1, self._media))
        if self.crash_at_fence is not None and fence_index == self.crash_at_fence:
            from repro.errors import SimulatedCrash

            raise SimulatedCrash(fence_index)

    def persist(self, addr: int, size: int, site: str = "") -> None:
        """Flush + fence convenience (``pmem_persist`` analogue)."""
        self.flush(addr, size, site)
        self.drain(site)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fence_count(self) -> int:
        """Number of fences executed so far (ordering points)."""
        return self._fence_count

    @property
    def store_count(self) -> int:
        """Number of stores executed so far (probabilistic crash points)."""
        return self._store_count

    @property
    def seq(self) -> int:
        """Current trace sequence number."""
        return self._seq

    def line_state(self, addr: int) -> LineState:
        """Return the persistence state of the line containing ``addr``."""
        self._check_range(addr, 1)
        return self._lines.get(addr // CACHE_LINE, LineState.CLEAN)

    def pending_lines(self) -> Dict[int, LineState]:
        """Return a copy of all not-yet-persisted line states."""
        return dict(self._lines)

    def volatile_view(self) -> bytes:
        """Return the program-visible contents (what loads observe)."""
        return bytes(self._volatile)

    def persisted_view(self) -> bytes:
        """Return the strict crash snapshot: only fenced data."""
        return bytes(self._media)

    def inconsistent_ranges(self) -> List[Tuple[int, int]]:
        """Return ``(addr, size)`` ranges where volatile and media differ.

        These are exactly the bytes at risk if a failure happened *now*:
        the persistent state would not reflect the program's view of them.

        Compares 4 KiB windows first and only byte-scans the windows that
        differ, so the common all-persisted case costs a handful of
        memcmp-speed slice comparisons instead of a Python loop over
        every byte.
        """
        ranges: List[Tuple[int, int]] = []
        volatile = self._volatile
        media = self._media
        size = self.size
        start: Optional[int] = None
        for chunk_start in range(0, size, _RANGE_CHUNK):
            chunk_end = min(chunk_start + _RANGE_CHUNK, size)
            if volatile[chunk_start:chunk_end] == media[chunk_start:chunk_end]:
                if start is not None:
                    ranges.append((start, chunk_start - start))
                    start = None
                continue
            for i in range(chunk_start, chunk_end):
                if volatile[i] != media[i]:
                    if start is None:
                        start = i
                elif start is not None:
                    ranges.append((start, i - start))
                    start = None
        if start is not None:
            ranges.append((start, size - start))
        return ranges

    def _inconsistent_ranges_naive(self) -> List[Tuple[int, int]]:
        """Reference byte-at-a-time implementation (kept as the oracle
        for the property tests and the benchmark baseline)."""
        ranges: List[Tuple[int, int]] = []
        start = None
        for i in range(self.size):
            if self._volatile[i] != self._media[i]:
                if start is None:
                    start = i
            elif start is not None:
                ranges.append((start, i - start))
                start = None
        if start is not None:
            ranges.append((start, self.size - start))
        return ranges

    def _lines_of(self, addr: int, size: int) -> Iterator[int]:
        if size == 0:
            return iter(())
        first = addr // CACHE_LINE
        last = (addr + size - 1) // CACHE_LINE
        return iter(range(first, last + 1))
