"""Persistence-domain simulation: the volatile cache in front of PM media.

The central difficulty of PM programming — and the source of every crash
consistency bug the paper targets — is that a CPU store does not reach the
persistent media immediately.  It sits in a volatile cache line until the
line is written back (CLWB) and the writeback is ordered (SFENCE), or until
the cache evicts it at some arbitrary time.

:class:`PersistenceDomain` models exactly that, at cache-line (64 B)
granularity:

* ``store`` updates the volatile view and marks the touched lines DIRTY;
* ``flush`` (CLWB analogue) marks lines FLUSHED — queued for persistence
  but not yet ordered;
* ``drain`` (SFENCE analogue) writes every FLUSHED line to the media array.

A *strict crash snapshot* at any point is the media array: the bytes that
are guaranteed persistent.  Because real caches may evict dirty lines at
any time, a crash may additionally persist any subset of pending lines;
:mod:`repro.pmem.crash` enumerates those weaker states for the detectors.

Every operation emits a :class:`TraceEvent` to registered observers.  The
detection tools (:mod:`repro.detect`) and the PM-path instrumentation
(:mod:`repro.instrument`) are both implemented as observers, mirroring how
Pmemcheck and the PMFuzz runtime both consume the PM operation stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import PMemError

#: Cache-line size in bytes, matching x86.
CACHE_LINE = 64


class LineState(enum.Enum):
    """Persistence state of a single cache line."""

    CLEAN = "clean"  #: volatile view matches media
    DIRTY = "dirty"  #: stored to, not yet flushed
    FLUSHED = "flushed"  #: flushed (CLWB), awaiting a fence


class TraceEventKind(enum.Enum):
    """Kinds of events in the PM operation trace."""

    STORE = "store"
    LOAD = "load"
    FLUSH = "flush"
    FENCE = "fence"
    # Annotation events emitted by the pmdk layer, not the hardware model.
    TX_BEGIN = "tx_begin"
    TX_COMMIT = "tx_commit"
    TX_ABORT = "tx_abort"
    TX_ADD = "tx_add"
    TX_ADD_REDUNDANT = "tx_add_redundant"
    ALLOC = "alloc"
    FREE = "free"
    POOL_OPEN = "pool_open"
    POOL_CLOSE = "pool_close"
    RECOVERY = "recovery"
    FLUSH_REDUNDANT = "flush_redundant"


@dataclass(frozen=True)
class TraceEvent:
    """One entry in the PM operation trace.

    Attributes:
        kind: what happened.
        addr: pool-relative byte offset (0 for pure ordering events).
        size: number of bytes affected.
        seq: global sequence number, unique and monotonically increasing.
        site: source call-site label (``file:line`` of the workload code
            that invoked the PM library), used for bug attribution.
    """

    kind: TraceEventKind
    addr: int
    size: int
    seq: int
    site: str = ""


Observer = Callable[[TraceEvent], None]


class PersistenceDomain:
    """Byte-addressable PM with a simulated volatile cache in front.

    Args:
        size: capacity in bytes.
        initial: optional initial *persistent* contents (e.g. from a PM
            image file); defaults to zeroes.

    The domain deliberately has no notion of virtual addresses: all
    addresses are pool-relative offsets, which is the reproduction of the
    paper's derandomization of persistent addresses via
    ``PMEM_MMAP_HINT`` (Section 4.4) — every run sees the same addresses.
    """

    def __init__(self, size: int, initial: Optional[bytes] = None) -> None:
        if size <= 0:
            raise PMemError(f"domain size must be positive, got {size}")
        if initial is not None and len(initial) != size:
            raise PMemError(
                f"initial contents are {len(initial)} bytes, expected {size}"
            )
        self.size = size
        self._media = bytearray(initial) if initial is not None else bytearray(size)
        self._volatile = bytearray(self._media)
        #: line index -> state (absent means CLEAN)
        self._lines: Dict[int, LineState] = {}
        self._seq = 0
        self._fence_count = 0
        self._store_count = 0
        self._observers: List[Observer] = []
        #: Optional fence index at which to raise SimulatedCrash; managed
        #: by the executor, checked in :meth:`drain`.
        self.crash_at_fence: Optional[int] = None
        #: Optional store index at which to raise SimulatedCrash — a
        #: failure *between* ordering points, where pending (dirty or
        #: flushed-unfenced) lines make the space of possible persistent
        #: states larger than the strict snapshot.
        self.crash_at_store: Optional[int] = None

    # ------------------------------------------------------------------
    # Observer plumbing
    # ------------------------------------------------------------------
    def add_observer(self, observer: Observer) -> None:
        """Register a callback invoked for every trace event."""
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        """Unregister a previously added observer."""
        self._observers.remove(observer)

    def emit(
        self,
        kind: TraceEventKind,
        addr: int = 0,
        size: int = 0,
        site: str = "",
    ) -> TraceEvent:
        """Emit an annotation event (used by the pmdk layer)."""
        event = TraceEvent(kind=kind, addr=addr, size=size, seq=self._seq, site=site)
        self._seq += 1
        for observer in self._observers:
            observer(event)
        return event

    # ------------------------------------------------------------------
    # Data-path operations
    # ------------------------------------------------------------------
    def _check_range(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.size:
            raise PMemError(
                f"access [{addr}, {addr + size}) outside domain of size {self.size}"
            )

    def load(self, addr: int, size: int, site: str = "") -> bytes:
        """Read ``size`` bytes from the volatile view (a PM read)."""
        self._check_range(addr, size)
        self.emit(TraceEventKind.LOAD, addr, size, site)
        return bytes(self._volatile[addr : addr + size])

    def store(self, addr: int, data: bytes, site: str = "") -> None:
        """Write ``data`` at ``addr`` (a PM store; volatile until persisted)."""
        self._check_range(addr, len(data))
        self._volatile[addr : addr + len(data)] = data
        for line in self._lines_of(addr, len(data)):
            self._lines[line] = LineState.DIRTY
        store_index = self._store_count
        self._store_count += 1
        self.emit(TraceEventKind.STORE, addr, len(data), site)
        if self.crash_at_store is not None and store_index == self.crash_at_store:
            from repro.errors import SimulatedCrash

            raise SimulatedCrash(store_index, kind="store")

    def flush(self, addr: int, size: int, site: str = "") -> None:
        """Write back the cache lines covering ``[addr, addr+size)`` (CLWB).

        Flushing a CLEAN line is legal but useless; the domain emits a
        ``FLUSH_REDUNDANT`` annotation so the Pmemcheck-like detector can
        report it as a performance bug (paper Bug 7).
        """
        self._check_range(addr, size)
        redundant = True
        for line in self._lines_of(addr, size):
            state = self._lines.get(line, LineState.CLEAN)
            if state is LineState.DIRTY:
                self._lines[line] = LineState.FLUSHED
                redundant = False
        self.emit(TraceEventKind.FLUSH, addr, size, site)
        if redundant:
            self.emit(TraceEventKind.FLUSH_REDUNDANT, addr, size, site)

    def drain(self, site: str = "") -> None:
        """Order all flushed lines into the media (SFENCE).

        If :attr:`crash_at_fence` equals the index of this fence, a
        :class:`~repro.errors.SimulatedCrash` is raised *after* the fence
        takes effect — i.e. the crash image contains everything this fence
        persisted, matching the paper's placement of failures *at*
        ordering points (Section 3.2).
        """
        for line, state in list(self._lines.items()):
            if state is LineState.FLUSHED:
                start = line * CACHE_LINE
                end = min(start + CACHE_LINE, self.size)
                self._media[start:end] = self._volatile[start:end]
                del self._lines[line]
        fence_index = self._fence_count
        self._fence_count += 1
        self.emit(TraceEventKind.FENCE, 0, 0, site)
        if self.crash_at_fence is not None and fence_index == self.crash_at_fence:
            from repro.errors import SimulatedCrash

            raise SimulatedCrash(fence_index)

    def persist(self, addr: int, size: int, site: str = "") -> None:
        """Flush + fence convenience (``pmem_persist`` analogue)."""
        self.flush(addr, size, site)
        self.drain(site)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fence_count(self) -> int:
        """Number of fences executed so far (ordering points)."""
        return self._fence_count

    @property
    def store_count(self) -> int:
        """Number of stores executed so far (probabilistic crash points)."""
        return self._store_count

    @property
    def seq(self) -> int:
        """Current trace sequence number."""
        return self._seq

    def line_state(self, addr: int) -> LineState:
        """Return the persistence state of the line containing ``addr``."""
        self._check_range(addr, 1)
        return self._lines.get(addr // CACHE_LINE, LineState.CLEAN)

    def pending_lines(self) -> Dict[int, LineState]:
        """Return a copy of all not-yet-persisted line states."""
        return dict(self._lines)

    def volatile_view(self) -> bytes:
        """Return the program-visible contents (what loads observe)."""
        return bytes(self._volatile)

    def persisted_view(self) -> bytes:
        """Return the strict crash snapshot: only fenced data."""
        return bytes(self._media)

    def inconsistent_ranges(self) -> List[Tuple[int, int]]:
        """Return ``(addr, size)`` ranges where volatile and media differ.

        These are exactly the bytes at risk if a failure happened *now*:
        the persistent state would not reflect the program's view of them.
        """
        ranges: List[Tuple[int, int]] = []
        start = None
        for i in range(self.size):
            if self._volatile[i] != self._media[i]:
                if start is None:
                    start = i
            elif start is not None:
                ranges.append((start, i - start))
                start = None
        if start is not None:
            ranges.append((start, self.size - start))
        return ranges

    def _lines_of(self, addr: int, size: int) -> Iterator[int]:
        if size == 0:
            return iter(())
        first = addr // CACHE_LINE
        last = (addr + size - 1) // CACHE_LINE
        return iter(range(first, last + 1))
