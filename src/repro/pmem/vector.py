"""Vectorized persistence domain: bulk line-state transitions.

Same observable semantics as :class:`~repro.pmem.persistence.
PersistenceDomain` (the scalar reference), different representation:

* line states live in a flat ``bytearray`` (0 = CLEAN, 1 = DIRTY,
  2 = FLUSHED) instead of a dict + FLUSHED set, so a store that spans
  64 cache lines is one slice fill instead of 64 dict writes and a
  flush is one ``bytes.translate`` over the span instead of 64
  dict-get/dict-set/set-add triples;
* ``drain`` scans only the union of spans flushed since the previous
  fence (``numpy.flatnonzero`` over the state array — a C pass), then
  coalesces consecutive flushed lines into run-length memcpys into the
  media, with the same per-line copy-on-write bookkeeping for armed
  media snapshots;
* ``inconsistent_ranges`` is a whole-array compare + run splitting in
  numpy instead of the scalar 4 KiB chunk walk.

The equivalence contract — identical trace-event sequences, identical
FLUSH_REDUNDANT detection, byte-identical media after every fence,
identical SimulatedCrash placement — is enforced by the hypothesis
properties in ``tests/test_properties.py`` and the scalar×vector grid
in ``tests/test_exec_core_grid.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.pmem.persistence import (CACHE_LINE, LineState, MediaSnapshot,
                                    PersistenceDomain, TraceEventKind)

_CLEAN, _DIRTY, _FLUSHED = 0, 1, 2

_STATE_ENUM = (LineState.CLEAN, LineState.DIRTY, LineState.FLUSHED)

#: ``bytes.translate`` table for flush: DIRTY→FLUSHED, all else unchanged.
_FLUSH_TABLE = bytes(
    _FLUSHED if b == _DIRTY else b for b in range(256)
)

#: Fill source for multi-line stores (sliced, never copied whole).
_DIRTY_RUN = memoryview(bytes([_DIRTY]) * (1 << 16))


class VectorPersistenceDomain(PersistenceDomain):
    """Bulk-operation persistence domain (the ``vector`` exec core)."""

    def __init__(self, size: int, initial: Optional[bytes] = None) -> None:
        super().__init__(size, initial)
        n_lines = (size + CACHE_LINE - 1) // CACHE_LINE
        #: Per-line state byte; replaces the scalar ``_lines``/``_flushed``.
        self._states = bytearray(n_lines)
        self._states_np = np.frombuffer(self._states, dtype=np.uint8)
        self._volatile_np = np.frombuffer(self._volatile, dtype=np.uint8)
        self._media_np = np.frombuffer(self._media, dtype=np.uint8)
        #: Line spans touched by non-redundant flushes since the last
        #: fence — the drain scan is bounded by flush activity, not by
        #: pool size.  Spans may overlap and may contain lines a later
        #: store demoted back to DIRTY; the state array is ground truth.
        self._flush_spans: List[Tuple[int, int]] = []
        #: Total lines across those spans (drain's small-vs-bulk gate).
        self._span_lines = 0

    # ------------------------------------------------------------------
    # Data-path operations
    # ------------------------------------------------------------------
    def store(self, addr: int, data: bytes, site: str = "") -> None:
        size = len(data)
        self._check_range(addr, size)
        self._volatile[addr: addr + size] = data
        if size:
            first = addr // CACHE_LINE
            last = (addr + size - 1) // CACHE_LINE
            if first == last:
                self._states[first] = _DIRTY
            else:
                n = last + 1 - first
                if n <= len(_DIRTY_RUN):
                    self._states[first: last + 1] = _DIRTY_RUN[:n]
                else:  # pragma: no cover - stores beyond 4 MiB spans
                    self._states[first: last + 1] = bytes([_DIRTY]) * n
        store_index = self._store_count
        self._store_count += 1
        self.emit(TraceEventKind.STORE, addr, size, site)
        if store_index in self._snap_stores:
            self._snapshots.append(MediaSnapshot(
                "store", store_index, self._fence_count, self._media))
        if self.crash_at_store is not None and store_index == self.crash_at_store:
            from repro.errors import SimulatedCrash

            raise SimulatedCrash(store_index, kind="store")

    def flush(self, addr: int, size: int, site: str = "") -> None:
        self._check_range(addr, size)
        redundant = True
        if size:
            first = addr // CACHE_LINE
            last = (addr + size - 1) // CACHE_LINE
            states = self._states
            if first == last:
                if states[first] == _DIRTY:
                    states[first] = _FLUSHED
                    self._flush_spans.append((first, first))
                    self._span_lines += 1
                    redundant = False
            else:
                seg = bytes(states[first: last + 1])
                if _DIRTY in seg:
                    states[first: last + 1] = seg.translate(_FLUSH_TABLE)
                    self._flush_spans.append((first, last))
                    self._span_lines += last - first + 1
                    redundant = False
        self.emit(TraceEventKind.FLUSH, addr, size, site)
        if redundant:
            self.emit(TraceEventKind.FLUSH_REDUNDANT, addr, size, site)

    #: Fence epochs at or under this many span lines take the scalar-
    #: style per-line path; bigger ones go through the numpy bulk scan.
    #: Typical workload epochs flush a handful of lines, where plain
    #: Python beats the fixed overhead of a numpy round trip.
    _BULK_DRAIN_LINES = 64

    def drain(self, site: Optional[str] = None) -> None:
        spans = self._flush_spans
        if spans:
            if self._span_lines <= self._BULK_DRAIN_LINES:
                # Scalar-style per-line writeback (inline: this is the
                # per-fence hot path); duplicate spans dedupe through
                # the CLEAN mark each persisted line leaves behind.
                states = self._states
                media = self._media
                volatile = self._volatile
                snapshots = self._snapshots
                size = self.size
                for first, last in spans:
                    for line in range(first, last + 1):
                        if states[line] != _FLUSHED:
                            continue
                        start = line * CACHE_LINE
                        end = start + CACHE_LINE
                        if end > size:
                            end = size
                        if snapshots:
                            # Copy-on-write: preserve pre-fence contents
                            # for every snapshot yet to see this line.
                            for snap in snapshots:
                                if line not in snap._saved:
                                    snap._saved[line] = \
                                        bytes(media[start:end])
                        media[start:end] = volatile[start:end]
                        states[line] = _CLEAN
            else:
                self._drain_bulk(spans)
            spans.clear()
            self._span_lines = 0
        fence_index = self._fence_count
        self._fence_count += 1
        self.emit(TraceEventKind.FENCE, 0, 0, site or "")
        if fence_index in self._snap_fences:
            self._snapshots.append(MediaSnapshot(
                "fence", fence_index, fence_index + 1, self._media))
        if self.crash_at_fence is not None and fence_index == self.crash_at_fence:
            from repro.errors import SimulatedCrash

            raise SimulatedCrash(fence_index)

    # ------------------------------------------------------------------
    def _drain_bulk(self, spans: List[Tuple[int, int]]) -> None:
        """Scan the spans' bounding box in numpy, then persist the
        flushed lines as coalesced run-length memcpys."""
        lo = min(first for first, _ in spans)
        hi = max(last for _, last in spans)
        idx = np.flatnonzero(self._states_np[lo: hi + 1] == _FLUSHED)
        if lo:
            idx = idx + lo
        lines = idx.tolist()
        if not lines:
            return
        media = self._media
        volatile = self._volatile
        states = self._states
        snapshots = self._snapshots
        size = self.size
        if snapshots:
            for line in lines:
                start = line * CACHE_LINE
                end = start + CACHE_LINE
                if end > size:
                    end = size
                for snap in snapshots:
                    if line not in snap._saved:
                        snap._saved[line] = bytes(media[start:end])
        run_start = prev = lines[0]
        for line in lines[1:]:
            if line != prev + 1:
                self._persist_run(run_start, prev, media, volatile,
                                  states, size)
                run_start = line
            prev = line
        self._persist_run(run_start, prev, media, volatile, states, size)

    @staticmethod
    def _persist_run(first: int, last: int, media: bytearray,
                     volatile: bytearray, states: bytearray,
                     size: int) -> None:
        """Write lines ``[first, last]`` to media and mark them CLEAN."""
        start = first * CACHE_LINE
        end = (last + 1) * CACHE_LINE
        if end > size:
            end = size
        media[start:end] = volatile[start:end]
        if first == last:
            states[first] = _CLEAN
        else:
            states[first: last + 1] = bytes(last + 1 - first)

    # ------------------------------------------------------------------
    # Warm-open prefix capture / restore
    # ------------------------------------------------------------------
    def warm_restore(self, pending, seq: int, fence_count: int,
                     store_count: int) -> None:
        """Vector-state rebuild for :meth:`~repro.pmem.persistence.
        PersistenceDomain.capture_warm_state` captures.

        Restored FLUSHED lines must re-enter ``_flush_spans`` — the
        drain scan is bounded by those spans, so a flushed line without
        one would never persist.  One single-line span per flushed line
        is fine: spans only bound the scan, the state array is ground
        truth.  All buffer mutation is in place (the numpy views alias
        the bytearrays).
        """
        volatile = self._volatile
        states = self._states
        spans = self._flush_spans
        for line, (is_flushed, data) in pending.items():
            start = line * CACHE_LINE
            volatile[start:start + len(data)] = data
            if is_flushed:
                states[line] = _FLUSHED
                spans.append((line, line))
                self._span_lines += 1
            else:
                states[line] = _DIRTY
        self._seq = seq
        self._fence_count = fence_count
        self._store_count = store_count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def line_state(self, addr: int) -> LineState:
        self._check_range(addr, 1)
        return _STATE_ENUM[self._states[addr // CACHE_LINE]]

    def pending_lines(self) -> Dict[int, LineState]:
        idx = np.flatnonzero(self._states_np)
        states = self._states
        return {line: _STATE_ENUM[states[line]] for line in idx.tolist()}

    def inconsistent_ranges(self) -> List[Tuple[int, int]]:
        idx = np.flatnonzero(self._volatile_np != self._media_np)
        if not idx.size:
            return []
        breaks = np.flatnonzero(np.diff(idx) != 1)
        starts = idx[np.concatenate(([0], breaks + 1))]
        ends = idx[np.concatenate((breaks, [idx.size - 1]))]
        return [(int(a), int(b - a) + 1)
                for a, b in zip(starts.tolist(), ends.tolist())]
