"""PM image files: the persistent state a PM program takes as input.

A PM image is the reproduction's analogue of a PMDK pool file in a DAX
file system.  It carries a small header (magic, version, layout name,
UUID, payload checksum policy) followed by the raw payload bytes that the
:class:`~repro.pmem.persistence.PersistenceDomain` operates on.

Two paper requirements shape this module:

* **Validity checking** — ``pmemobj_open`` on a corrupt file aborts
  immediately.  :meth:`PMImage.validate` reproduces that: a randomly
  mutated image (AFL++ w/ ImgFuzz) almost always fails the magic or
  checksum test and the execution explores no useful path (Figure 5a).
* **Derandomized UUIDs** — PMDK assigns each pool a random UUID, which
  PMFuzz overrides with a constant so identical inputs produce identical
  images (Section 4.4).  Here the UUID is derived deterministically from
  the layout name.

Images serialize with ``zlib`` (an LZ77 implementation), reproducing the
test-case storage optimization of Section 4.7.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro._util import sha256_hex, stable_hash32
from repro.errors import InvalidImageError

#: Bytes reserved for the image header at the front of the serialized form.
IMAGE_HEADER_SIZE = 64

_MAGIC = b"PMFZIMG1"
_LAYOUT_BYTES = 24
_HEADER_FMT = "<8s%dsI16sI8x" % _LAYOUT_BYTES  # magic, layout, size, uuid, cksum, pad
assert struct.calcsize(_HEADER_FMT) == IMAGE_HEADER_SIZE


def derive_uuid(layout: str) -> bytes:
    """Derive the constant, layout-specific 16-byte pool UUID.

    This reproduces PMFuzz's overloading of PMDK's UUID assignment with a
    constant value: two images created for the same layout always compare
    equal byte-for-byte if their payloads match.
    """
    seed = stable_hash32("pmfuzz-uuid:" + layout)
    return struct.pack("<IIII", seed, seed ^ 0xA5A5A5A5, ~seed & 0xFFFFFFFF, 0x504D465A)


@dataclass
class PMImage:
    """An in-memory PM image: header metadata + payload bytes.

    Attributes:
        layout: layout name (must match at open time, like PMDK).
        payload: the pool contents the persistence domain runs over.
        uuid: 16-byte pool identifier (constant per layout).
    """

    layout: str
    payload: bytearray
    uuid: bytes = field(default=b"")

    def __post_init__(self) -> None:
        if not self.uuid:
            self.uuid = derive_uuid(self.layout)
        if len(self.uuid) != 16:
            raise InvalidImageError(f"uuid must be 16 bytes, got {len(self.uuid)}")
        if len(self.layout.encode("utf-8")) > _LAYOUT_BYTES:
            raise InvalidImageError(f"layout name too long: {self.layout!r}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, layout: str, size: int) -> "PMImage":
        """Create an empty (all-zero) image with a ``size``-byte payload."""
        if size <= 0:
            raise InvalidImageError(f"image size must be positive, got {size}")
        return cls(layout=layout, payload=bytearray(size))

    def copy(self) -> "PMImage":
        """Return a deep copy (images are mutated by execution)."""
        return PMImage(layout=self.layout, payload=bytearray(self.payload), uuid=self.uuid)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self, compress: bool = False) -> bytes:
        """Serialize header + payload; optionally zlib/LZ77-compress."""
        checksum = zlib.crc32(bytes(self.payload))
        header = struct.pack(
            _HEADER_FMT,
            _MAGIC,
            self.layout.encode("utf-8").ljust(_LAYOUT_BYTES, b"\0"),
            len(self.payload),
            self.uuid,
            checksum,
        )
        raw = header + bytes(self.payload)
        if compress:
            return b"PMFZ" + zlib.compress(raw, level=6)
        return raw

    @classmethod
    def from_bytes(cls, data: bytes, expected_layout: Optional[str] = None) -> "PMImage":
        """Deserialize and validate an image.

        Raises:
            InvalidImageError: on bad magic, truncated data, checksum
                mismatch, or (when ``expected_layout`` is given) a layout
                name mismatch — the simulated equivalent of the program
                aborting on an invalid pool file.
        """
        if data[:4] == b"PMFZ" and data[4:8] != _MAGIC[4:8]:
            try:
                data = zlib.decompress(data[4:])
            except zlib.error as exc:
                raise InvalidImageError(f"corrupt compressed image: {exc}") from exc
        if len(data) < IMAGE_HEADER_SIZE:
            raise InvalidImageError(f"image truncated: {len(data)} bytes")
        magic, layout_raw, size, uuid, checksum = struct.unpack(
            _HEADER_FMT, data[:IMAGE_HEADER_SIZE]
        )
        if magic != _MAGIC:
            raise InvalidImageError(f"bad magic {magic!r}")
        payload = data[IMAGE_HEADER_SIZE:]
        if len(payload) != size:
            raise InvalidImageError(
                f"payload size mismatch: header says {size}, got {len(payload)}"
            )
        if zlib.crc32(payload) != checksum:
            raise InvalidImageError("payload checksum mismatch")
        layout = layout_raw.rstrip(b"\0").decode("utf-8", errors="replace")
        if expected_layout is not None and layout != expected_layout:
            raise InvalidImageError(
                f"layout mismatch: image is {layout!r}, expected {expected_layout!r}"
            )
        image = cls(layout=layout, payload=bytearray(payload), uuid=uuid)
        return image

    def validate(self, expected_layout: Optional[str] = None) -> None:
        """Round-trip validation used by the pool-open path."""
        PMImage.from_bytes(self.to_bytes(), expected_layout=expected_layout)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def content_hash(self) -> str:
        """SHA-256 of layout + payload (PMFuzz's image dedup key, Sec. 4.5)."""
        return sha256_hex(self.layout.encode("utf-8") + b"\0" + bytes(self.payload))

    def __len__(self) -> int:
        return len(self.payload)
