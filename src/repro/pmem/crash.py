"""Crash-state extraction policies.

When a PM program fails, the persistent state that survives depends on
which cache lines had reached the media.  The simulator distinguishes:

* **STRICT** — only data persisted by an explicit flush + fence survives.
  This is the guaranteed state and is what PMFuzz's crash-image generator
  uses (failures placed at ordering points, Section 3.2).
* **EVICTED** — some subset of pending (dirty or flushed-unfenced) lines
  additionally reached the media via cache eviction.  Real hardware may
  produce any of these states; the XFDetector-like checker uses them to
  reason about whether a recovery path could observe unordered data.

``crash_states`` enumerates representative weaker states deterministically
so detection remains reproducible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.pmem.persistence import CACHE_LINE, PersistenceDomain


@dataclass(frozen=True)
class SnapshotPlan:
    """Which fence / store indices to capture during a single execution.

    Threaded from :class:`~repro.core.crashgen.CrashImageGenerator`
    through ``Executor.run`` → ``Workload.run`` down to
    :meth:`PersistenceDomain.plan_snapshots`.  Frozen and module-level so
    it pickles across the fork-server protocol if it ever needs to.
    """

    fences: Tuple[int, ...] = ()
    stores: Tuple[int, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.fences or self.stores)


@dataclass(frozen=True)
class CrashSnapshot:
    """A materialized strict crash image harvested from a single pass.

    Attributes:
        kind: ``"fence"`` or ``"store"``.
        index: the fence index / store index of the capture point.
        fences_done: fences completed at capture time — exactly the fence
            count a dedicated re-execution crashing at this point would
            have reported, which the generator needs to charge the
            virtual-time cost model identically.
        image: the full media contents at the capture instant.
    """

    kind: str
    index: int
    fences_done: int
    image: bytes = field(repr=False)


class CrashPolicy(enum.Enum):
    """How much unordered data may survive a crash."""

    STRICT = "strict"  #: media only (guaranteed state)
    ALL_PENDING = "all_pending"  #: every pending line evicted (other extreme)


def strict_snapshot(domain: PersistenceDomain) -> bytes:
    """Return the guaranteed-persistent contents at this instant."""
    return domain.persisted_view()


def snapshot_with_lines(domain: PersistenceDomain, lines: Sequence[int]) -> bytes:
    """Return a crash state where the given pending lines also persisted."""
    media = bytearray(domain.persisted_view())
    volatile = domain.volatile_view()
    for line in lines:
        start = line * CACHE_LINE
        end = min(start + CACHE_LINE, domain.size)
        media[start:end] = volatile[start:end]
    return bytes(media)


def crash_states(
    domain: PersistenceDomain, policy: CrashPolicy = CrashPolicy.STRICT
) -> Iterator[bytes]:
    """Yield representative crash states under ``policy``.

    STRICT yields one state (the media).  ALL_PENDING additionally yields
    the state where every pending line persisted, plus one state per
    single pending line — a deterministic, linear-size sample of the
    exponential space of eviction outcomes (sufficient to expose
    single-variable ordering violations such as a commit flag persisting
    before its data).
    """
    yield strict_snapshot(domain)
    if policy is CrashPolicy.STRICT:
        return
    pending: List[int] = sorted(domain.pending_lines())
    if not pending:
        return
    yield snapshot_with_lines(domain, pending)
    if len(pending) > 1:
        for line in pending:
            yield snapshot_with_lines(domain, [line])
