"""Simulated persistent-memory hardware substrate.

This package stands in for the Intel Optane DC Persistent Memory modules
and the x86 persistence primitives (CLWB/SFENCE) used by the paper.  It
models:

* a byte-addressable persistence domain with a volatile cache in front of
  the persistent media (:mod:`repro.pmem.persistence`),
* PM image files with headers, UUIDs and checksums, saved with LZ77/zlib
  compression (:mod:`repro.pmem.image`), and
* crash-state extraction — which bytes survive a failure at any given
  point in the execution (:mod:`repro.pmem.crash`).
"""

from repro.pmem.crash import CrashPolicy, crash_states
from repro.pmem.image import IMAGE_HEADER_SIZE, PMImage
from repro.pmem.persistence import (
    CACHE_LINE,
    LineState,
    PersistenceDomain,
    TraceEvent,
    TraceEventKind,
)

__all__ = [
    "CACHE_LINE",
    "IMAGE_HEADER_SIZE",
    "CrashPolicy",
    "LineState",
    "PMImage",
    "PersistenceDomain",
    "TraceEvent",
    "TraceEventKind",
    "crash_states",
]
