"""Durability auditor: crash-state enumeration for every durable store.

The repo's durable protocols — campaign checkpoints, fleet corpus sync,
the corpus database, the serve submission journal, the scrubber's
quarantine, the rotating trace sinks — all commit state through the
handful of filesystem primitives named by :mod:`repro._vfs`.  This
package turns that seam into an auditor:

1. :class:`~repro.audit.trace.TracingVFS` records the exact ordered
   mutation stream one run of each protocol performs;
2. :class:`~repro.audit.states.CrashStateEnumerator` materializes every
   legal post-crash view of that stream — each prefix cut, a torn tail
   for the final write, and drops of operations POSIX permits to
   reorder past an un-fsynced boundary;
3. for every state, the component's *real* recovery entry point runs
   and a set of typed :class:`~repro.audit.invariants.RecoveryInvariant`
   checks decide whether recovery restored the protocol's contract
   (exactly-once visibility, no half-published entries, idempotence).

``python -m repro audit --component all`` drives the whole thing; a
non-empty violation list exits 1 and leaves a replayable crash-state
bundle under the output directory.
"""

from repro.audit.invariants import RecoveryInvariant, Violation
from repro.audit.runner import AuditReport, DurabilityAuditor
from repro.audit.states import CrashState, CrashStateEnumerator
from repro.audit.trace import FsOp, TracingVFS

__all__ = [
    "AuditReport",
    "CrashState",
    "CrashStateEnumerator",
    "DurabilityAuditor",
    "FsOp",
    "RecoveryInvariant",
    "TracingVFS",
    "Violation",
]
