"""Typed per-component recovery invariants and their violations.

A :class:`RecoveryInvariant` is a named predicate over a recovered
crash state: given the state's root directory, the protocol's setup
context, and whatever the recovery entry point returned, it yields
``None`` (holds) or a one-line detail string (violated).  The auditor
wraps violated checks into :class:`Violation` records, which are what
``python -m repro audit`` reports and bundles.

Also here: the byte-exact directory-tree snapshot the generic
*recovery-idempotence* check compares — running a component's recovery
twice must leave the tree byte-identical to running it once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional


@dataclass(frozen=True)
class RecoveryInvariant:
    """One named recovery property of a durable protocol."""

    name: str
    description: str
    check: Callable[[str, dict, object], Optional[str]] = \
        field(compare=False)


@dataclass(frozen=True)
class Violation:
    """One invariant that failed to hold in one crash state."""

    component: str
    state_id: str
    invariant: str
    detail: str

    def render(self) -> str:
        return (f"{self.component}/{self.state_id}: "
                f"{self.invariant}: {self.detail}")


# ----------------------------------------------------------------------
# Byte-exact tree identity (the idempotence check's equality)
# ----------------------------------------------------------------------
def snapshot_tree(root: str) -> Dict[str, bytes]:
    """Map of relpath -> file bytes for every regular file under root.

    Directories appear as ``path/`` -> ``b""`` entries so an empty
    directory created or removed by a second recovery pass still
    breaks identity.
    """
    tree: Dict[str, bytes] = {}
    for dirpath, dirnames, filenames in os.walk(root):
        rel = os.path.relpath(dirpath, root)
        if rel != ".":
            tree[rel + os.sep] = b""
        for name in filenames:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as fh:
                tree[os.path.relpath(path, root)] = fh.read()
    return tree


def diff_trees(before: Dict[str, bytes],
               after: Dict[str, bytes]) -> Optional[str]:
    """One-line description of the first difference, or None."""
    for path in sorted(set(before) | set(after)):
        if path not in after:
            return f"{path} disappeared on the second recovery pass"
        if path not in before:
            return f"{path} appeared on the second recovery pass"
        if before[path] != after[path]:
            return (f"{path} changed bytes on the second recovery pass "
                    f"({len(before[path])}B -> {len(after[path])}B)")
    return None
