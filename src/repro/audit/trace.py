"""Filesystem-operation interposition: record what a protocol writes.

:class:`TracingVFS` implements the :mod:`repro._vfs` seam: every
primitive performs the real operation (the protocol under audit runs to
completion against a scratch directory) *and* appends an :class:`FsOp`
to the trace.  Paths are recorded relative to the audit root so the
trace can later be replayed into a fresh copy of the initial tree —
the mechanism :class:`~repro.audit.states.CrashStateEnumerator` uses to
materialize crash states.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

from repro._vfs import OsVFS

#: Operation kinds a trace may contain (the seam's primitive set).
OP_KINDS = ("write", "append", "fsync", "replace", "rename", "link",
            "unlink", "mkdir", "fsync_dir")

#: Kinds that mutate a directory's *entries* (vs a file's content).
NAMESPACE_KINDS = ("replace", "rename", "link", "unlink")


@dataclass(frozen=True)
class FsOp:
    """One recorded filesystem mutation.

    ``path``/``dest`` are audit-root-relative.  ``data`` carries the
    payload of ``write``/``append`` ops so the enumerator can replay
    them (and tear them) into materialized crash states.
    """

    index: int
    kind: str
    path: str
    dest: Optional[str] = None
    data: Optional[bytes] = None

    def describe(self) -> str:
        """One-line human rendering for reports and bundles."""
        if self.kind in ("write", "append"):
            return (f"{self.index:3d} {self.kind}({self.path}, "
                    f"{len(self.data or b'')}B)")
        if self.dest is not None:
            return f"{self.index:3d} {self.kind}({self.path} -> {self.dest})"
        return f"{self.index:3d} {self.kind}({self.path})"

    @property
    def parent(self) -> str:
        """Directory whose entries this op mutates (namespace ops)."""
        return os.path.dirname(self.path)

    @property
    def dest_parent(self) -> Optional[str]:
        return os.path.dirname(self.dest) if self.dest is not None else None

    @property
    def crosses_directories(self) -> bool:
        """True for a rename/replace whose src and dst parents differ —
        the op whose two directory updates can reach disk independently
        (the lost-file bug class)."""
        return (self.kind in ("replace", "rename")
                and self.dest is not None
                and self.parent != self.dest_parent)


class TracingVFS(OsVFS):
    """Perform-and-record implementation of the VFS seam.

    Only operations on paths under ``root`` are recorded; anything
    outside (there should be nothing — protocols are confined to their
    scratch directory) is performed but left out of the trace.
    """

    name = "tracing"

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.ops: List[FsOp] = []

    # ------------------------------------------------------------------
    def _rel(self, path: str) -> Optional[str]:
        rel = os.path.relpath(os.path.abspath(path), self.root)
        if rel == ".." or rel.startswith(".." + os.sep):
            return None
        return rel

    def _record(self, kind: str, path: str, dest: Optional[str] = None,
                data: Optional[bytes] = None) -> None:
        rel = self._rel(path)
        rel_dest = self._rel(dest) if dest is not None else None
        if rel is None or (dest is not None and rel_dest is None):
            return
        self.ops.append(FsOp(index=len(self.ops), kind=kind, path=rel,
                             dest=rel_dest, data=data))

    # -- seam primitives: perform, then record -------------------------
    def write_bytes(self, path: str, data: bytes) -> None:
        super().write_bytes(path, data)
        self._record("write", path, data=bytes(data))

    def append_bytes(self, path: str, data: bytes) -> None:
        super().append_bytes(path, data)
        self._record("append", path, data=bytes(data))

    def fsync(self, path: str) -> None:
        super().fsync(path)
        self._record("fsync", path)

    def replace(self, src: str, dst: str) -> None:
        super().replace(src, dst)
        self._record("replace", src, dest=dst)

    def rename(self, src: str, dst: str) -> None:
        super().rename(src, dst)
        self._record("rename", src, dest=dst)

    def link(self, src: str, dst: str) -> None:
        super().link(src, dst)
        self._record("link", src, dest=dst)

    def unlink(self, path: str) -> None:
        super().unlink(path)
        self._record("unlink", path)

    def mkdir(self, path: str) -> None:
        super().mkdir(path)
        self._record("mkdir", path)

    def fsync_dir(self, path: str) -> bool:
        ok = super().fsync_dir(path)
        self._record("fsync_dir", path)
        return ok
