"""The durability auditor: trace, enumerate, recover, verify, report.

For each component the auditor

1. builds the durable baseline (``setup``) and snapshots it,
2. runs the protocol once under :class:`~repro.audit.trace.TracingVFS`,
3. enumerates every legal crash state of the recorded op trace
   (deterministically budget-sampled when asked),
4. materializes each state, runs the component's real recovery entry
   point against it, evaluates the typed invariants, and runs recovery
   a *second* time to check byte-exact idempotence,
5. keeps a replayable bundle for every violating state and reports.

Everything runs under the process's real wall clock and the default
OS VFS except the single traced protocol run — auditing never touches
a campaign's virtual clock, RNG streams, or ``comparable()`` stats.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro._vfs import install_vfs
from repro.audit.invariants import Violation, diff_trees, snapshot_tree
from repro.audit.protocols import COMPONENTS, build_protocol
from repro.audit.states import CrashStateEnumerator
from repro.audit.trace import TracingVFS

#: Name of the per-violation manifest inside a bundle directory.
BUNDLE_MANIFEST = "manifest.json"


@dataclass
class ComponentAudit:
    """Everything one component's audit produced."""

    component: str
    ops_recorded: int = 0
    states_enumerated: int = 0
    states_checked: int = 0
    violations: List[Violation] = field(default_factory=list)
    bundle_dirs: List[str] = field(default_factory=list)
    trace_lines: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class AuditReport:
    """The full audit outcome across the requested components."""

    results: List[ComponentAudit] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def total_violations(self) -> int:
        return sum(len(r.violations) for r in self.results)

    def render(self, max_violations: int = 10) -> str:
        """The one-screen audit report."""
        lines = ["durability audit",
                 "================"]
        for r in self.results:
            verdict = "ok" if r.ok else f"{len(r.violations)} VIOLATIONS"
            lines.append(f"  {r.component:<11} {r.ops_recorded:3d} ops  "
                         f"{r.states_enumerated:4d} crash states  "
                         f"{r.states_checked:4d} checked  {verdict}")
        shown = 0
        for r in self.results:
            for v in r.violations:
                if shown < max_violations:
                    lines.append(f"  ! {v.render()}")
                shown += 1
        if shown > max_violations:
            lines.append(f"  … and {shown - max_violations} more")
        for r in self.results:
            if r.bundle_dirs:
                lines.append(f"  {len(r.bundle_dirs)} replayable "
                             f"{r.component} bundles under "
                             f"{os.path.dirname(r.bundle_dirs[0])}")
        lines.append(f"verdict: "
                     f"{'CLEAN' if self.ok else 'ORDERING BUGS FOUND'} "
                     f"({self.total_violations} violations across "
                     f"{len(self.results)} components)")
        return "\n".join(lines)


class DurabilityAuditor:
    """Drives the audit for one or more components.

    Args:
        out_dir: scratch/output directory; violating crash states are
            preserved under ``<out_dir>/<component>/violations/``.
        budget: max crash states checked per component (0 = exhaustive),
            selected deterministically and evenly across the state list.
        bus: optional :class:`~repro.observe.bus.TraceBus`; one
            ``audit`` event is emitted per component.
    """

    def __init__(self, out_dir: str, budget: int = 0, bus=None) -> None:
        self.out_dir = os.path.abspath(out_dir)
        self.budget = budget
        self.bus = bus

    # ------------------------------------------------------------------
    def audit(self, components: Optional[Sequence[str]] = None) \
            -> AuditReport:
        report = AuditReport()
        for name in (components or COMPONENTS):
            report.results.append(self.audit_component(name))
        return report

    def audit_component(self, name: str) -> ComponentAudit:
        protocol = build_protocol(name)
        result = ComponentAudit(component=name)
        comp_dir = os.path.join(self.out_dir, name)
        if os.path.exists(comp_dir):
            shutil.rmtree(comp_dir)
        base = os.path.join(comp_dir, "base")
        snapshot = os.path.join(comp_dir, "snapshot")
        os.makedirs(base)

        ctx = protocol.setup(base)
        shutil.copytree(base, snapshot)

        tracer = TracingVFS(base)
        old = install_vfs(tracer)
        try:
            protocol.run(base, ctx)
        finally:
            install_vfs(old)
        result.ops_recorded = len(tracer.ops)
        result.trace_lines = [op.describe() for op in tracer.ops]

        enum = CrashStateEnumerator(tracer.ops)
        states = enum.enumerate()
        result.states_enumerated = len(states)
        selected = enum.sample(states, self.budget)

        work = os.path.join(comp_dir, "work")
        for state in selected:
            result.states_checked += 1
            enum.materialize(state, snapshot, work)
            violations = self._check_state(protocol, state, work, ctx)
            if violations:
                result.violations.extend(violations)
                result.bundle_dirs.append(self._write_bundle(
                    protocol, enum, state, snapshot, comp_dir, violations))
        if os.path.exists(work):
            shutil.rmtree(work)
        # The traced base run and pristine snapshot are only needed for
        # bundling; drop them on a clean component to keep out_dir small.
        if result.ok:
            shutil.rmtree(comp_dir, ignore_errors=True)
        if self.bus is not None:
            self.bus.emit("audit", 0.0, component=name,
                          ops=result.ops_recorded,
                          states=result.states_enumerated,
                          checked=result.states_checked,
                          violations=len(result.violations))
        return result

    # ------------------------------------------------------------------
    def _check_state(self, protocol, state, work: str,
                     ctx: dict) -> List[Violation]:
        violations: List[Violation] = []

        def violated(invariant: str, detail: str) -> None:
            violations.append(Violation(
                component=protocol.name, state_id=state.state_id,
                invariant=invariant, detail=detail))

        try:
            recovered = protocol.recover(work, ctx)
        except Exception as exc:
            violated("recovery-completes",
                     f"recovery raised {type(exc).__name__}: {exc}")
            return violations
        for invariant in protocol.invariants:
            try:
                detail = invariant.check(work, ctx, recovered)
            except Exception as exc:
                detail = (f"invariant check crashed: "
                          f"{type(exc).__name__}: {exc}")
            if detail is not None:
                violated(invariant.name, detail)
        # Generic invariant: recovery is idempotent — a second pass over
        # an already-recovered tree must change nothing, byte for byte.
        before = snapshot_tree(work)
        try:
            protocol.recover(work, ctx)
        except Exception as exc:
            violated("recovery-idempotent",
                     f"second recovery raised {type(exc).__name__}: {exc}")
        else:
            drift = diff_trees(before, snapshot_tree(work))
            if drift is not None:
                violated("recovery-idempotent", drift)
        return violations

    def _write_bundle(self, protocol, enum, state, snapshot: str,
                      comp_dir: str,
                      violations: List[Violation]) -> str:
        """Preserve a replayable copy of one violating crash state."""
        bundle = os.path.join(comp_dir, "violations", state.state_id)
        # Re-materialize from the pristine snapshot: the working copy
        # has been mutated by two recovery passes, and the bundle must
        # hold the *pre-recovery* crash state.
        enum.materialize(state, snapshot, os.path.join(bundle, "state"))
        manifest = {
            "component": protocol.name,
            "state_id": state.state_id,
            "description": state.describe(enum.ops),
            "cut": state.cut,
            "dropped": list(state.dropped),
            "torn": list(state.torn) if state.torn else None,
            "half": list(state.half) if state.half else None,
            "trace": [op.describe() for op in enum.ops],
            "violations": [v.render() for v in violations],
            "replay": ("state/ holds the materialized pre-recovery crash "
                       "state; point the component's recovery entry point "
                       "at it (see DESIGN.md section 13) to reproduce"),
        }
        with open(os.path.join(bundle, BUNDLE_MANIFEST), "w",
                  encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return bundle
