"""The durable protocols under audit, one :class:`AuditProtocol` each.

Every component follows the same shape:

* ``setup(root)`` builds the durable baseline state (this runs *before*
  tracing; the baseline is the snapshot every crash state starts from)
  and returns a context dict of names/keys the checks need;
* ``run(root, ctx)`` performs one representative pass of the protocol's
  real production code — this is what runs under
  :class:`~repro.audit.trace.TracingVFS` and produces the op trace;
* ``recover(root, ctx)`` invokes the component's *real* recovery entry
  point against a materialized crash state;
* ``invariants`` are the typed per-component
  :class:`~repro.audit.invariants.RecoveryInvariant` checks.

Everything is deterministic — fixed payloads, fixed campaign ids,
pinned mtimes — so the same component and budget always enumerate the
same states and render the same report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro._util import atomic_write_bytes, pack_checksummed
from repro.audit.invariants import RecoveryInvariant

#: Component names ``python -m repro audit --component`` accepts.
COMPONENTS = ("checkpoint", "corpus", "corpusdb", "serve", "storage",
              "sink")


@dataclass
class AuditProtocol:
    """One durable protocol wired for auditing."""

    name: str
    description: str
    setup: Callable[[str], dict]
    run: Callable[[str, dict], None]
    recover: Callable[[str, dict], object]
    invariants: List[RecoveryInvariant] = field(default_factory=list)


# ----------------------------------------------------------------------
# checkpoint: write-tmp+fsync+rename with .prev rotation
# ----------------------------------------------------------------------
def _checkpoint_protocol() -> AuditProtocol:
    from repro.resilience.checkpoint import (FORMAT_VERSION,
                                             read_checkpoint_with_fallback,
                                             rotate_previous,
                                             write_checkpoint)

    name = "campaign.ckpt"

    def setup(root: str) -> dict:
        write_checkpoint(os.path.join(root, name),
                         {"version": FORMAT_VERSION, "round": 1,
                          "blob": "x" * 512})
        return {"name": name}

    def run(root: str, ctx: dict) -> None:
        path = os.path.join(root, name)
        rotate_previous(path)
        write_checkpoint(path, {"version": FORMAT_VERSION, "round": 2,
                                "blob": "y" * 512})

    def recover(root: str, ctx: dict):
        # Raises CheckpointError when both primary and .prev are
        # unusable — the runner records that as a violation.
        return read_checkpoint_with_fallback(os.path.join(root, name))

    def check_one_round(root: str, ctx: dict, result) -> Optional[str]:
        if not isinstance(result, dict) or result.get("round") not in (1, 2):
            return (f"recovered payload is neither the old nor the new "
                    f"checkpoint: {result!r}")
        return None

    return AuditProtocol(
        name="checkpoint",
        description="campaign checkpoint write + .prev rotation",
        setup=setup, run=run, recover=recover,
        invariants=[RecoveryInvariant(
            "exactly-one-checkpoint",
            "recovery always loads exactly the old or the new snapshot, "
            "never a torn one and never neither",
            check_one_round)])


# ----------------------------------------------------------------------
# corpus: fleet shared-corpus publish + scrubber recovery
# ----------------------------------------------------------------------
def _corpus_protocol() -> AuditProtocol:
    from repro.core.storage import (CORPUS_ENTRY_MAGIC, CORPUS_ENTRY_SUFFIX,
                                    CorpusScrubber)

    seeds = ("1111aaaa", "2222bbbb")
    new = "3333cccc"

    def entry_blob(tag: str) -> bytes:
        return pack_checksummed(CORPUS_ENTRY_MAGIC,
                                f"payload-{tag}".encode("ascii") * 16)

    def setup(root: str) -> dict:
        corpus = os.path.join(root, "corpus")
        os.makedirs(corpus)
        os.makedirs(os.path.join(root, "quarantine"))
        for tag in seeds:
            with open(os.path.join(corpus, tag + CORPUS_ENTRY_SUFFIX),
                      "wb") as fh:
                fh.write(entry_blob(tag))
        return {"seeds": seeds, "new": new}

    def run(root: str, ctx: dict) -> None:
        corpus = os.path.join(root, "corpus")
        atomic_write_bytes(os.path.join(corpus, new + CORPUS_ENTRY_SUFFIX),
                           entry_blob(new))

    def scrubber(root: str) -> CorpusScrubber:
        return CorpusScrubber(os.path.join(root, "corpus"),
                              os.path.join(root, "quarantine"),
                              tmp_grace=-1.0)

    def recover(root: str, ctx: dict):
        return scrubber(root).scrub()

    def check_seeds(root: str, ctx: dict, result) -> Optional[str]:
        s = scrubber(root)
        for tag in seeds:
            path = os.path.join(root, "corpus", tag + CORPUS_ENTRY_SUFFIX)
            reason = s.verify_file(path)
            if reason is not None:
                return f"pre-existing entry {tag} damaged or lost: {reason}"
        return None

    def check_no_half(root: str, ctx: dict, result) -> Optional[str]:
        s = scrubber(root)
        corpus = os.path.join(root, "corpus")
        for fname in sorted(os.listdir(corpus)):
            if fname.endswith(".tmp"):
                return f"orphaned temp file survived recovery: {fname}"
            if not fname.endswith(CORPUS_ENTRY_SUFFIX):
                continue
            reason = s.verify_file(os.path.join(corpus, fname))
            if reason is not None:
                return f"half-published entry visible after scrub: " \
                       f"{fname} ({reason})"
        return None

    return AuditProtocol(
        name="corpus",
        description="fleet shared-corpus entry publish + scrub recovery",
        setup=setup, run=run, recover=recover,
        invariants=[
            RecoveryInvariant(
                "seeds-preserved",
                "entries durable before the run survive every crash",
                check_seeds),
            RecoveryInvariant(
                "no-half-published",
                "after scrubbing, every visible entry verifies and no "
                "orphaned temp files remain",
                check_no_half)])


# ----------------------------------------------------------------------
# corpusdb: journaled publish / compact / retire + scrub_database
# ----------------------------------------------------------------------
def _corpusdb_protocol() -> AuditProtocol:
    from repro.corpusdb.db import (CorpusDatabase, CorpusDBPaths, entry_key)
    from repro.corpusdb.journal import IntentJournal
    from repro.corpusdb.scrub import scrub_database
    from repro.errors import CorpusCorruptionError

    def payload_for(i: int) -> dict:
        data = f"seed-input-{i}".encode("ascii")
        image = f"seed-image-{i}".encode("ascii") * 8
        return {"key": entry_key(data, image), "data": data, "image": image}

    def setup(root: str) -> dict:
        db = CorpusDatabase.open(os.path.join(root, "db"))
        keys = []
        for i, stamp in enumerate((1000.0, 2000.0, 3000.0)):
            payload = payload_for(i)
            db.publish(payload)
            # Pinned mtimes make the compactor's oldest-first selection
            # identical on every audit run.
            os.utime(db.hot_path(payload["key"]), (stamp, stamp))
            keys.append(payload["key"])
        new = payload_for(99)
        return {"keys": keys, "new": new}

    def open_paths(root: str) -> CorpusDatabase:
        return CorpusDatabase(CorpusDBPaths(os.path.join(root, "db")))

    def run(root: str, ctx: dict) -> None:
        db = open_paths(root)
        db.publish(ctx["new"])
        # Four hot entries, limit two: the two oldest seeds move cold.
        db.compact(hot_limit=2)
        db.retire(ctx["keys"][2])

    def recover(root: str, ctx: dict):
        report, _ = scrub_database(os.path.join(root, "db"), verify=True,
                                   tmp_grace=-1.0, take_lock=False)
        return report

    def check_compacted(root: str, ctx: dict, result) -> Optional[str]:
        db = open_paths(root)
        for key in ctx["keys"][:2]:
            if db.find(key) is None:
                return (f"entry {key[:12]}… lost across the hot->cold "
                        f"move (neither tier holds it after recovery)")
        return None

    def check_journal_empty(root: str, ctx: dict, result) -> Optional[str]:
        pending = IntentJournal(os.path.join(root, "db", "journal")).pending()
        if pending:
            return f"{len(pending)} intents still pending after replay"
        return None

    def check_no_duplicates(root: str, ctx: dict, result) -> Optional[str]:
        db = open_paths(root)
        hot = set(db._tier_keys(db.paths.hot))
        cold = set(db._tier_keys(db.paths.cold))
        both = hot & cold
        if both:
            return (f"{len(both)} entries visible in both tiers after "
                    f"recovery: {sorted(both)[0][:12]}…")
        return None

    def check_visible_healthy(root: str, ctx: dict, result) -> Optional[str]:
        if result is not None and getattr(result, "residual", None):
            return f"undetected corruption after repair: {result.residual}"
        db = open_paths(root)
        for key in [ctx["new"]["key"]] + ctx["keys"]:
            if db.find(key) is None:
                continue  # an absent entry is a legal crash outcome
            try:
                db.get(key)
            except CorpusCorruptionError as exc:
                return f"visible entry {key[:12]}… is damaged: {exc}"
        return None

    return AuditProtocol(
        name="corpusdb",
        description="corpus database publish/compact/retire + scrub",
        setup=setup, run=run, recover=recover,
        invariants=[
            RecoveryInvariant(
                "compacted-never-lost",
                "a hot->cold move can duplicate but never lose an entry",
                check_compacted),
            RecoveryInvariant(
                "journal-drained",
                "journal replay resolves every pending intent",
                check_journal_empty),
            RecoveryInvariant(
                "exactly-once-tiers",
                "no entry is visible in both tiers after recovery",
                check_no_duplicates),
            RecoveryInvariant(
                "visible-entries-healthy",
                "every entry recovery leaves visible loads cleanly",
                check_visible_healthy)])


# ----------------------------------------------------------------------
# serve: submission journal + terminal marker + intent commit
# ----------------------------------------------------------------------
def _serve_protocol() -> AuditProtocol:
    from repro.serve.journal import SubmissionJournal
    from repro.serve.state import ServePaths

    cid = "tenant-c000001"
    acked = "acked"  # durable witness that the client saw the 2xx

    def paths_for(root: str) -> ServePaths:
        return ServePaths(os.path.join(root, "serve"))

    def setup(root: str) -> dict:
        paths = paths_for(root)
        paths.make_dirs()
        os.makedirs(paths.campaign_dir(cid))
        return {"cid": cid}

    def run(root: str, ctx: dict) -> None:
        paths = paths_for(root)
        journal = SubmissionJournal(paths.journal)
        intent = journal.append(cid, {"workload": "demo", "budget": 60})
        # Model the acknowledged HTTP accept: once this witness is
        # durable, the daemon has promised the campaign exists.
        atomic_write_bytes(os.path.join(paths.root, acked),
                           cid.encode("ascii"))
        paths.write_retired(cid)
        journal.commit(intent)

    def recover(root: str, ctx: dict):
        paths = paths_for(root)
        journal = SubmissionJournal(paths.journal)
        pending = [c for _, c, _ in journal.recover_pending()]
        return {"pending": pending, "terminal": paths.terminal_state(cid)}

    def check_never_forgotten(root: str, ctx: dict,
                              result) -> Optional[str]:
        paths = paths_for(root)
        if not os.path.exists(os.path.join(paths.root, acked)):
            return None  # never acknowledged: nothing was promised
        if not isinstance(result, dict):
            return f"recovery returned {result!r}"
        if cid in result["pending"] or result["terminal"] is not None:
            return None
        return ("acknowledged campaign forgotten: intent committed but "
                "no terminal artifact is durable")

    def check_no_damaged_intents(root: str, ctx: dict,
                                 result) -> Optional[str]:
        journal = SubmissionJournal(paths_for(root).journal)
        for _, c, _ in journal.pending():
            if c is None:
                return "damaged intent still present after recovery"
        return None

    return AuditProtocol(
        name="serve",
        description="serve submission journal + terminal-marker commit",
        setup=setup, run=run, recover=recover,
        invariants=[
            RecoveryInvariant(
                "accepted-never-forgotten",
                "once acceptance is durable, every crash recovers to a "
                "pending or terminal campaign — never to nothing",
                check_never_forgotten),
            RecoveryInvariant(
                "damaged-intents-dropped",
                "recovery removes unreadable intents",
                check_no_damaged_intents)])


# ----------------------------------------------------------------------
# storage: claim-by-move quarantine of damaged entries
# ----------------------------------------------------------------------
def _storage_protocol() -> AuditProtocol:
    from repro.core.storage import (CORPUS_ENTRY_MAGIC, CORPUS_ENTRY_SUFFIX,
                                    CorpusScrubber)

    healthy = ("aaaa0000", "bbbb1111")
    damaged = "cccc2222"

    def setup(root: str) -> dict:
        corpus = os.path.join(root, "corpus")
        os.makedirs(corpus)
        os.makedirs(os.path.join(root, "quarantine"))
        blobs = {}
        for tag in healthy:
            blob = pack_checksummed(CORPUS_ENTRY_MAGIC,
                                    f"ok-{tag}".encode("ascii") * 16)
            blobs[tag] = blob
            with open(os.path.join(corpus, tag + CORPUS_ENTRY_SUFFIX),
                      "wb") as fh:
                fh.write(blob)
        bad = b"this is not a checksummed container at all"
        blobs[damaged] = bad
        with open(os.path.join(corpus, damaged + CORPUS_ENTRY_SUFFIX),
                  "wb") as fh:
            fh.write(bad)
        return {"blobs": blobs}

    def scrubber(root: str) -> CorpusScrubber:
        return CorpusScrubber(os.path.join(root, "corpus"),
                              os.path.join(root, "quarantine"),
                              tmp_grace=-1.0)

    def run(root: str, ctx: dict) -> None:
        scrubber(root).scrub()

    def recover(root: str, ctx: dict):
        return scrubber(root).scrub()

    def check_not_lost(root: str, ctx: dict, result) -> Optional[str]:
        name = damaged + CORPUS_ENTRY_SUFFIX
        locations = []
        for sub in ("corpus", "quarantine"):
            try:
                locations += [n for n in os.listdir(os.path.join(root, sub))
                              if n == name or n.startswith(name + ".dup")]
            except OSError:
                pass
        if not locations:
            return ("damaged entry vanished: the quarantine move lost it "
                    "instead of parking it")
        return None

    def check_healthy_intact(root: str, ctx: dict, result) -> Optional[str]:
        for tag in healthy:
            path = os.path.join(root, "corpus", tag + CORPUS_ENTRY_SUFFIX)
            try:
                with open(path, "rb") as fh:
                    if fh.read() != ctx["blobs"][tag]:
                        return f"healthy entry {tag} bytes changed"
            except OSError:
                return f"healthy entry {tag} missing after recovery"
        return None

    def check_corpus_clean(root: str, ctx: dict, result) -> Optional[str]:
        s = scrubber(root)
        corpus = os.path.join(root, "corpus")
        for fname in sorted(os.listdir(corpus)):
            if fname.endswith(CORPUS_ENTRY_SUFFIX) and \
                    s.verify_file(os.path.join(corpus, fname)) is not None:
                return f"damaged entry {fname} still visible after scrub"
        return None

    return AuditProtocol(
        name="storage",
        description="scrubber claim-by-move quarantine of damaged entries",
        setup=setup, run=run, recover=recover,
        invariants=[
            RecoveryInvariant(
                "damaged-never-lost",
                "quarantining parks an entry; no crash point deletes it",
                check_not_lost),
            RecoveryInvariant(
                "healthy-untouched",
                "healthy entries are byte-identical across any crash",
                check_healthy_intact),
            RecoveryInvariant(
                "corpus-clean-after-scrub",
                "no damaged entry stays visible once recovery ran",
                check_corpus_clean)])


# ----------------------------------------------------------------------
# sink: rotating JSONL trace shards + tolerant merge
# ----------------------------------------------------------------------
def _sink_protocol() -> AuditProtocol:
    from repro.observe.events import TraceEvent
    from repro.observe.sink import JsonlTraceSink, merge_shards, shard_name

    rotate_bytes = 256

    def events(lo: int, hi: int) -> list:
        return [TraceEvent(kind="exec", vtime=float(i), seq=i, member=-1,
                           payload={"n": i}) for i in range(lo, hi)]

    def sink_for(root: str) -> JsonlTraceSink:
        return JsonlTraceSink(os.path.join(root, "trace", shard_name(-1)),
                              rotate_bytes=rotate_bytes)

    def setup(root: str) -> dict:
        sink_for(root).write_events(events(0, 4))
        return {"base": list(range(4)), "all": list(range(12))}

    def run(root: str, ctx: dict) -> None:
        sink = sink_for(root)
        sink.write_events(events(4, 8))   # grows past rotate_bytes...
        sink.write_events(events(8, 12))  # ...so this batch rotates first

    def recover(root: str, ctx: dict):
        merged, skipped = merge_shards(os.path.join(root, "trace"))
        return {"seqs": [e.seq for e in merged], "skipped": skipped}

    def check_durable_visible(root: str, ctx: dict,
                              result) -> Optional[str]:
        missing = [s for s in ctx["base"] if s not in result["seqs"]]
        if missing:
            return (f"events durable before the run are missing from the "
                    f"merge: seqs {missing}")
        return None

    def check_consistent(root: str, ctx: dict, result) -> Optional[str]:
        seqs = result["seqs"]
        if len(seqs) != len(set(seqs)):
            return "merged timeline contains duplicate (member, seq) events"
        stray = [s for s in seqs if s not in ctx["all"]]
        if stray:
            return f"merged timeline invented events: seqs {stray}"
        if seqs != sorted(seqs):
            return f"merged timeline out of order: {seqs}"
        return None

    return AuditProtocol(
        name="sink",
        description="rotating JSONL trace shards + tolerant shard merge",
        setup=setup, run=run, recover=recover,
        invariants=[
            RecoveryInvariant(
                "durable-events-visible",
                "an fsynced batch survives any later crash, including "
                "one mid-rotation",
                check_durable_visible),
            RecoveryInvariant(
                "merge-consistent",
                "the merged timeline is deduplicated, ordered, and "
                "contains only events that were written",
                check_consistent)])


# ----------------------------------------------------------------------
_BUILDERS: Dict[str, Callable[[], AuditProtocol]] = {
    "checkpoint": _checkpoint_protocol,
    "corpus": _corpus_protocol,
    "corpusdb": _corpusdb_protocol,
    "serve": _serve_protocol,
    "storage": _storage_protocol,
    "sink": _sink_protocol,
}


def build_protocol(name: str) -> AuditProtocol:
    """The :class:`AuditProtocol` for one component name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise ValueError(f"unknown audit component {name!r}; known: "
                         f"{', '.join(COMPONENTS)}") from None
