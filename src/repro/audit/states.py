"""Crash-state enumeration: every legal post-crash view of one trace.

The persistence model (DESIGN.md §13) is the standard POSIX one used by
ALICE-style checkers, specialized to the seam's primitives:

* A ``write``/``append``'s content is *pinned* (guaranteed on disk
  after a crash) once a later ``fsync`` of the same path appears in the
  surviving prefix.  Until then the crash may drop it entirely, or —
  for the final write of a prefix — persist a *torn* tail.
* A namespace op (``replace``/``rename``/``link``/``unlink``) is
  pinned once a later ``fsync_dir`` of its parent directory appears.
  An unpinned namespace op may be reordered past anything and dropped
  whole; a same-directory rename is atomic (all-or-nothing).
* A **cross-directory** rename/replace updates two directories whose
  blocks reach disk independently: each half is pinned only by an
  ``fsync_dir`` of *its* directory, so besides the whole-drop there are
  two half-states — the destination insertion lost (the file vanishes:
  the lost-entry bug class) and the source removal lost (the file is
  visible under both names).

For a trace of N ops the enumerator yields, deterministically and in a
stable order:

* every prefix cut ``p000`` … ``p{N}`` (one crash state per recorded
  op, plus the completed run as a sanity state);
* for each cut ending in a write/append, one torn-tail state per
  fraction in :data:`TORN_FRACTIONS` (the torn-write offsets discipline
  the checkpoint fuzz tests established);
* for each cut, a single-drop state per unpinned op, the two half-drop
  states for each unpinned cross-directory rename, and one
  drop-everything-unpinned state.

States are *materialized* by replaying the surviving ops into a fresh
copy of the pre-run snapshot with cascade-skip semantics: an op whose
input a dropped op was supposed to produce simply does not happen,
exactly as it could not have happened on the real disk.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.audit.trace import FsOp

#: Damage fractions for torn final writes — same discipline as
#: ``tests/resilience/test_checkpoint_torn.py``.
TORN_FRACTIONS = (0.0, 0.01, 0.05, 0.5, 0.999)

#: Half-drop labels for cross-directory renames.
LOSE_DST = "lose-dst"  #: destination insertion lost -> file vanishes
LOSE_SRC = "lose-src"  #: source removal lost -> file under both names


@dataclass(frozen=True)
class CrashState:
    """One legal post-crash filesystem state, as a recipe.

    ``cut`` ops survive; ``dropped`` indices among them do not; ``torn``
    (op index, fraction) truncates the final write's payload; ``half``
    (op index, :data:`LOSE_DST` | :data:`LOSE_SRC`) keeps only one side
    of a cross-directory rename.
    """

    state_id: str
    cut: int
    dropped: Tuple[int, ...] = ()
    torn: Optional[Tuple[int, float]] = None
    half: Optional[Tuple[int, str]] = None

    def describe(self, ops: Sequence[FsOp]) -> str:
        bits = [f"crash after op {self.cut - 1}" if self.cut else
                "crash before any op"]
        for k in self.dropped:
            bits.append(f"drop un-fsynced {ops[k].describe().strip()}")
        if self.torn is not None:
            k, frac = self.torn
            bits.append(f"tear {ops[k].describe().strip()} at {frac:g}")
        if self.half is not None:
            k, side = self.half
            bits.append(f"{side} of {ops[k].describe().strip()}")
        return "; ".join(bits)


class CrashStateEnumerator:
    """Deterministic enumeration and materialization for one trace."""

    def __init__(self, ops: Sequence[FsOp]) -> None:
        self.ops = list(ops)

    # ------------------------------------------------------------------
    # The persistence model
    # ------------------------------------------------------------------
    def _pinned(self, k: int, cut: int) -> bool:
        """Is op ``k`` guaranteed durable in the prefix ``ops[:cut]``?"""
        op = self.ops[k]
        if op.kind in ("fsync", "fsync_dir", "mkdir"):
            return True  # nothing to lose / not modeled as droppable
        later = self.ops[k + 1:cut]
        if op.kind in ("write", "append"):
            return any(o.kind == "fsync" and o.path == op.path
                       for o in later)
        # Namespace op: pinned by a later fsync of every parent whose
        # entries it changed.  A link touches only the destination
        # directory; a rename touches both (for the cross-dir case both
        # halves must be pinned for the whole op to be safe).
        if op.kind == "link":
            dirs = {op.dest_parent}
        else:
            dirs = {op.parent}
            if op.dest is not None:
                dirs.add(op.dest_parent)
        return all(any(o.kind == "fsync_dir" and o.path == d for o in later)
                   for d in dirs)

    def _half_unpinned(self, k: int, cut: int, side: str) -> bool:
        """Is one half of cross-dir rename ``k`` unpinned at ``cut``?"""
        op = self.ops[k]
        target_dir = op.dest_parent if side == LOSE_DST else op.parent
        return not any(o.kind == "fsync_dir" and o.path == target_dir
                       for o in self.ops[k + 1:cut])

    def _invisible(self, k: int, cut: int) -> bool:
        """Would dropping op ``k`` be unobservable at ``cut``?

        A write whose file is later renamed away, replaced over, or
        unlinked within the prefix leaves no trace either way; skipping
        such drops removes duplicate states without weakening coverage.
        """
        op = self.ops[k]
        if op.kind not in ("write", "append"):
            return False
        for o in self.ops[k + 1:cut]:
            if o.kind in ("replace", "rename") and o.path == op.path:
                return False  # content travels with the rename: visible
            if o.kind == "unlink" and o.path == op.path:
                return True
            if o.kind == "write" and o.path == op.path:
                return True  # overwritten in place before the crash
            if o.kind in ("replace", "rename") and o.dest == op.path:
                return True  # renamed over before the crash
        return False

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def enumerate(self) -> List[CrashState]:
        """Every crash state, in a stable, deterministic order."""
        states: List[CrashState] = []
        n = len(self.ops)
        for cut in range(n + 1):
            states.append(CrashState(state_id=f"p{cut:03d}", cut=cut))
            if cut > 0:
                last = self.ops[cut - 1]
                if last.kind in ("write", "append") and last.data:
                    for j, frac in enumerate(TORN_FRACTIONS):
                        states.append(CrashState(
                            state_id=f"p{cut:03d}-t{j}", cut=cut,
                            torn=(cut - 1, frac)))
            unpinned = [k for k in range(cut)
                        if not self._pinned(k, cut)
                        and not self._invisible(k, cut)]
            for k in unpinned:
                states.append(CrashState(
                    state_id=f"p{cut:03d}-d{k:03d}", cut=cut, dropped=(k,)))
                if self.ops[k].crosses_directories:
                    for side, tag in ((LOSE_DST, "ld"), (LOSE_SRC, "ls")):
                        if self._half_unpinned(k, cut, side):
                            states.append(CrashState(
                                state_id=f"p{cut:03d}-{tag}{k:03d}",
                                cut=cut, half=(k, side)))
            if len(unpinned) > 1:
                states.append(CrashState(
                    state_id=f"p{cut:03d}-dall", cut=cut,
                    dropped=tuple(unpinned)))
        return states

    @staticmethod
    def sample(states: List[CrashState],
               budget: int) -> List[CrashState]:
        """Deterministic evenly-spaced selection of ``budget`` states.

        ``budget <= 0`` means exhaustive.  The same (trace, budget)
        always selects the same states — the audit's reproducibility
        contract.
        """
        if budget <= 0 or budget >= len(states):
            return list(states)
        if budget == 1:
            return [states[-1]]
        span = len(states) - 1
        picked = sorted({round(i * span / (budget - 1))
                         for i in range(budget)})
        return [states[i] for i in picked]

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self, state: CrashState, snapshot_dir: str,
                    target_dir: str) -> None:
        """Build ``state`` on disk from the pre-run ``snapshot_dir``."""
        if os.path.exists(target_dir):
            shutil.rmtree(target_dir)
        shutil.copytree(snapshot_dir, target_dir)
        for k in range(state.cut):
            if k in state.dropped:
                continue
            self._apply(self.ops[k], state, target_dir)

    def _apply(self, op: FsOp, state: CrashState, root: str) -> None:
        """Replay one op with cascade-skip tolerance.

        Any OSError — typically a missing source because an earlier op
        was dropped — means the op could not have happened on the real
        disk either; it is skipped, and everything depending on *its*
        output cascades the same way.
        """
        path = os.path.join(root, op.path)
        dest = os.path.join(root, op.dest) if op.dest is not None else None
        data = op.data
        if state.torn is not None and state.torn[0] == op.index:
            data = data[:int(len(data) * state.torn[1])]
        try:
            if op.kind in ("write", "append"):
                mode = "wb" if op.kind == "write" else "ab"
                with open(path, mode) as fh:
                    fh.write(data or b"")
            elif op.kind in ("replace", "rename"):
                if state.half is not None and state.half[0] == op.index:
                    if state.half[1] == LOSE_DST:
                        os.remove(path)  # removal persisted, insertion lost
                    else:
                        shutil.copyfile(path, dest)  # insertion only
                else:
                    os.replace(path, dest)
            elif op.kind == "link":
                os.link(path, dest)
            elif op.kind == "unlink":
                os.remove(path)
            elif op.kind == "mkdir":
                os.makedirs(path, exist_ok=True)
            # fsync / fsync_dir: ordering constraints, not content.
        except OSError:
            pass
