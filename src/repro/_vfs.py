"""The filesystem-operation seam every durable protocol writes through.

Each of this repo's durable stores — campaign checkpoints, the fleet's
shared corpus, the corpus database, the serve submission journal, the
scrubber's quarantine — ultimately commits state with a handful of
primitive filesystem mutations: write bytes, fsync, rename/replace,
hardlink, unlink, directory fsync.  This module names those primitives
once, behind a process-global *VFS* object, so that:

* production code calls one audited implementation (:class:`OsVFS`,
  a thin veneer over ``os``/``open``), and
* the durability auditor (:mod:`repro.audit`) can interpose a tracing
  implementation that records the exact ordered mutation stream a
  protocol performs — the input to systematic crash-state enumeration —
  without monkeypatching ``os`` or changing any call site.

The seam is deliberately tiny and synchronous.  Installing a VFS swaps
a single module-level reference; the default is :data:`OS_VFS` and the
hot paths pay one attribute load over calling ``os`` directly.
"""

from __future__ import annotations

import os
from typing import Optional


class OsVFS:
    """The real filesystem: each primitive maps to one libc-level op.

    The primitives are intentionally *finer-grained* than convenience
    helpers like ``atomic_write_bytes``: crash-state enumeration needs
    to cut between a write and its fsync, or between a rename and the
    parent-directory fsync that makes it durable, so each of those is
    its own call through the seam.
    """

    name = "os"

    # -- file content --------------------------------------------------
    def write_bytes(self, path: str, data: bytes) -> None:
        """Create (or truncate) ``path`` and write ``data`` (no fsync)."""
        with open(path, "wb") as fh:
            fh.write(data)
            fh.flush()

    def append_bytes(self, path: str, data: bytes) -> None:
        """Append ``data`` to ``path``, creating it if absent (no fsync)."""
        with open(path, "ab") as fh:
            fh.write(data)
            fh.flush()

    def fsync(self, path: str) -> None:
        """Force ``path``'s *content* to stable storage."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- namespace ops -------------------------------------------------
    def replace(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` over ``dst`` (``os.replace``)."""
        os.replace(src, dst)

    def rename(self, src: str, dst: str) -> None:
        """Rename without overwrite semantics (``os.rename``)."""
        os.rename(src, dst)

    def link(self, src: str, dst: str) -> None:
        """Hardlink ``src`` at ``dst`` (``os.link``)."""
        os.link(src, dst)

    def unlink(self, path: str) -> None:
        """Remove one directory entry (``os.remove``)."""
        os.remove(path)

    def mkdir(self, path: str) -> None:
        """``os.makedirs(path, exist_ok=True)``."""
        os.makedirs(path, exist_ok=True)

    def fsync_dir(self, path: str) -> bool:
        """Force ``path``'s *directory entries* to stable storage.

        Best effort: returns False on platforms whose directories
        cannot be opened (the rename stays atomic either way; only its
        crash-durability ordering weakens).
        """
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return False
        try:
            os.fsync(fd)
        except OSError:
            return False
        finally:
            os.close(fd)
        return True


#: The default (and usually only) VFS.
OS_VFS = OsVFS()

#: Process-global active VFS.  Swapped only by the durability auditor.
_current: OsVFS = OS_VFS


def current_vfs() -> OsVFS:
    """The VFS all durable protocols are writing through right now."""
    return _current


def install_vfs(vfs: Optional[OsVFS]):
    """Install ``vfs`` (None restores :data:`OS_VFS`); returns the old one.

    The auditor brackets each traced protocol run with
    ``old = install_vfs(tracer)`` / ``install_vfs(old)``; production
    code never calls this.
    """
    global _current
    old = _current
    _current = vfs if vfs is not None else OS_VFS
    return old
