"""Shared-memory ring transport for the fork-server worker protocol.

The pickled-pipe protocol (:mod:`repro.isolation.protocol`) pays one
kernel round-trip per frame *and* streams every payload byte through the
pipe buffer.  This module moves the payload into an anonymous shared
``mmap`` created before the fork, so parent and worker exchange frames
by memcpy; the existing pipes are kept as the *signal* channel — every
frame is announced by a one-byte token:

* ``b"R"`` — the frame's payload is in the ring (written completely,
  CRC-stamped, and published by advancing the ring's tail *before* the
  token is sent);
* ``b"P"`` — the payload follows on the pipe in the legacy wire format
  (the fallback for frames larger than the ring, and the whole-channel
  fallback on platforms without anonymous shared mmap).

Torn-frame safety comes from that ordering: a worker SIGKILLed at any
point before its token byte leaves the kernel has published nothing —
the parent sees pipe EOF (``PipeClosed`` → ``WorkerDeath``), never a
partial frame.  The CRC over the payload is the belt-and-braces check
against ring-accounting bugs; a mismatch is a ``ProtocolError``, which
the pool also converts into a typed worker death.

The rings are strict SPSC: the job ring is written only by the parent
and read only by the worker, the result ring the reverse, and the
request/response protocol guarantees at most one frame in flight per
ring — head/tail are plain 8-byte counters, no atomics needed.
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
import zlib
from typing import Any, Optional

from repro.isolation.protocol import (ProtocolError, _read_exact, _write_all,
                                      read_frame, write_frame,
                                      write_frame_bytes)

#: Default per-direction ring capacity.  Sized for a full *batch* of
#: replies (each carries a serialized PM image, ~256 KiB on the stock
#: workloads, times ``batch_execs``): anonymous mmap pages are
#: demand-allocated, so unused capacity costs address space, not RSS.
DEFAULT_RING_BYTES = 8 << 20

_COUNTERS = struct.Struct("<QQ")  # head (bytes read), tail (bytes written)
_FRAME = struct.Struct("<II")  # payload length, crc32

_TOKEN_RING = b"R"
_TOKEN_PIPE = b"P"


def ring_available() -> bool:
    """Can this platform back a ring with anonymous shared mmap?"""
    try:
        probe = mmap.mmap(-1, mmap.PAGESIZE)
        probe.close()
        return True
    except (OSError, ValueError, OverflowError):  # pragma: no cover
        return False


class ShmRing:
    """One single-producer single-consumer byte ring over anonymous mmap.

    Monotonic head/tail counters live in the first 16 bytes of the map;
    payload bytes wrap around the remaining ``capacity``.  Created in
    the parent before ``os.fork`` so both processes share the pages.
    """

    HEADER = _COUNTERS.size

    def __init__(self, capacity: int = DEFAULT_RING_BYTES) -> None:
        if capacity <= _FRAME.size:
            raise ValueError(f"ring capacity {capacity} is too small")
        self.capacity = capacity
        self._mm = mmap.mmap(-1, self.HEADER + capacity)

    def close(self) -> None:
        """Unmap this process's view (the peer's mapping is unaffected)."""
        try:
            self._mm.close()
        except (BufferError, ValueError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    def try_write(self, payload: bytes) -> bool:
        """Publish one frame; False if it does not fit right now."""
        need = _FRAME.size + len(payload)
        head, tail = _COUNTERS.unpack_from(self._mm, 0)
        if need > self.capacity - (tail - head):
            return False
        self._put(tail, _FRAME.pack(len(payload), zlib.crc32(payload)))
        self._put(tail + _FRAME.size, payload)
        # Publish by advancing the tail only after the payload is fully
        # in place; the reader is only told to look via the pipe token,
        # which the caller sends after this returns.
        struct.pack_into("<Q", self._mm, 8, tail + need)
        return True

    def read(self) -> bytes:
        """Consume the one announced frame; verifies length and CRC."""
        head, tail = _COUNTERS.unpack_from(self._mm, 0)
        if tail - head < _FRAME.size:
            raise ProtocolError("ring announces a frame but holds none")
        length, crc = _FRAME.unpack(self._get(head, _FRAME.size))
        if _FRAME.size + length > tail - head:
            raise ProtocolError(
                f"ring frame header announces {length} bytes with only "
                f"{tail - head - _FRAME.size} available")
        payload = self._get(head + _FRAME.size, length)
        if zlib.crc32(payload) != crc:
            raise ProtocolError("ring frame payload fails its CRC")
        struct.pack_into("<Q", self._mm, 0, head + _FRAME.size + length)
        return payload

    # ------------------------------------------------------------------
    def _put(self, pos: int, data: bytes) -> None:
        off = pos % self.capacity
        first = min(len(data), self.capacity - off)
        base = self.HEADER
        self._mm[base + off: base + off + first] = data[:first]
        if first < len(data):
            self._mm[base: base + len(data) - first] = data[first:]

    def _get(self, pos: int, n: int) -> bytes:
        off = pos % self.capacity
        first = min(n, self.capacity - off)
        base = self.HEADER
        out = self._mm[base + off: base + off + first]
        if first < n:
            out += self._mm[base: base + n - first]
        return out


class Channel:
    """Bidirectional frame channel: pipe signaling + optional rings.

    With no rings attached this is exactly the legacy pipe protocol
    (every frame length-prefixed on the fd); with rings attached the
    pipes carry tokens and the rings carry payloads, falling back to
    the pipe wire format per-frame when a payload outgrows the ring.
    """

    __slots__ = ("recv_fd", "send_fd", "recv_ring", "send_ring")

    def __init__(self, recv_fd: int, send_fd: int,
                 recv_ring: Optional[ShmRing] = None,
                 send_ring: Optional[ShmRing] = None) -> None:
        self.recv_fd = recv_fd
        self.send_fd = send_fd
        self.recv_ring = recv_ring
        self.send_ring = send_ring

    @property
    def transport(self) -> str:
        return "ring" if self.send_ring is not None else "pipe"

    # ------------------------------------------------------------------
    def send(self, obj: Any) -> None:
        if self.send_ring is None:
            write_frame(self.send_fd, obj)
            return
        blob = pickle.dumps(obj, protocol=4)
        if self.send_ring.try_write(blob):
            _write_all(self.send_fd, _TOKEN_RING)
        else:
            _write_all(self.send_fd, _TOKEN_PIPE)
            write_frame_bytes(self.send_fd, blob)

    def recv(self, deadline: Optional[float] = None) -> Any:
        if self.recv_ring is None:
            return read_frame(self.recv_fd, deadline=deadline)
        token = _read_exact(self.recv_fd, 1, deadline)
        if token == _TOKEN_PIPE:
            return read_frame(self.recv_fd, deadline=deadline)
        if token != _TOKEN_RING:
            raise ProtocolError(f"unknown transport token {token!r}")
        blob = self.recv_ring.read()
        try:
            return pickle.loads(blob)
        except Exception as exc:
            raise ProtocolError(
                f"ring frame payload does not unpickle: {exc}") from exc

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close this side's fds and unmap its ring views."""
        for fd in (self.recv_fd, self.send_fd):
            try:
                os.close(fd)
            except OSError:
                pass
        for ring in (self.recv_ring, self.send_ring):
            if ring is not None:
                ring.close()
