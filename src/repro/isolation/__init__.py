"""Fork-server worker isolation (the literal Section-4.7 / AFL++ layer).

Public surface:

* :func:`~repro.isolation.backend.create_backend` — backend selection
  with graceful in-process fallback;
* :class:`~repro.isolation.backend.InProcessBackend` /
  :class:`~repro.isolation.backend.ForkServerBackend` — the two
  execution backends behind the supervisor;
* :class:`~repro.isolation.pool.ForkWorkerPool` — the raw worker pool
  (fork, dispatch, watchdog, recycle, reap).
"""

from repro.isolation.backend import (ExecutionBackend, ForkServerBackend,
                                     InProcessBackend, ISOLATION_MODES,
                                     create_backend, fork_unavailable_reason)
from repro.isolation.pool import (ForkWorkerPool, WatchdogExpired,
                                  WorkerDeath)

__all__ = [
    "ExecutionBackend",
    "ForkServerBackend",
    "ForkWorkerPool",
    "InProcessBackend",
    "ISOLATION_MODES",
    "WatchdogExpired",
    "WorkerDeath",
    "create_backend",
    "fork_unavailable_reason",
]
