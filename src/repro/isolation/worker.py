"""The child side of the fork server: one worker's job loop.

A worker is forked from the campaign process, inherits the fully
constructed :class:`~repro.fuzz.executor.Executor` (workload factory,
cost model, bug injector — no pickling of campaign state, exactly like
AFL++'s fork server inheriting the initialized target), applies its
resource ceiling, and then services ``job`` / ``batch`` frames until the
parent closes the pipe or sends ``shutdown``.

Three deliberate asymmetries with in-process execution:

* ``executor.env_faults`` is cleared in the child — the *parent* draws
  the injected-fault stream before dispatching (see
  ``Executor._env_check``), so the fault RNG never diverges between
  backends.
* after every job the worker reports the bug injector's *per-job*
  ``triggered`` set (cleared before each job), because that is the one
  piece of cross-run process state the campaign reads back after
  fuzzing; the parent merges exactly the jobs it consumes, so a
  speculatively executed batch job the parent later discards leaves no
  trace in the campaign's trigger records — identical to in-process
  execution, where the discarded job never runs at all.
* a ``batch`` frame executes N jobs back-to-back and answers with one
  frame of N replies — the Section-4.7 dispatch cost (frame round-trip
  + result serialization) is paid once per batch instead of once per
  execution.
"""

from __future__ import annotations

import os
import sys
import traceback
from typing import Optional, Union

from repro.errors import ReproError
from repro.isolation.protocol import PipeClosed
from repro.isolation.ring import Channel
from repro.pmem.image import PMImage


def apply_rss_limit(limit_bytes: Optional[int]) -> None:
    """Cap the worker's address space (``RLIMIT_AS``).

    Linux does not enforce ``RLIMIT_RSS``, so the address-space limit is
    the practical ceiling: an unbounded allocation inside the target
    turns into a ``MemoryError`` (contained by the executor as a harness
    fault) or, for allocations the interpreter cannot survive, a worker
    death the pool triages.  Silently skipped where unsupported.
    """
    if not limit_bytes:
        return
    try:
        import resource
        resource.setrlimit(resource.RLIMIT_AS, (limit_bytes, limit_bytes))
    except (ImportError, ValueError, OSError):
        pass


def _aux(executor) -> dict:
    """Per-job sideband data the parent folds back into its own state."""
    injector = executor.injector
    triggered = getattr(injector, "triggered", None)
    return {"triggered": set(triggered) if triggered else None}


def _run_job(executor, job_kind: str, image_bytes: bytes, data: bytes,
             kwargs: dict) -> tuple:
    """Execute one job; returns its complete reply frame payload."""
    injector = executor.injector
    triggered = getattr(injector, "triggered", None)
    if triggered is not None:
        # Per-job attribution: the reply carries only the bugs *this*
        # job fired, so the parent can merge consumed batch jobs and
        # discard speculative ones without cross-contamination.
        triggered.clear()
    try:
        if job_kind == "raw":
            result = executor.run_raw_image(image_bytes, data)
        else:
            image = PMImage.from_bytes(image_bytes)
            result = executor.run(image, data, **kwargs)
        return ("ok", result, _aux(executor))
    except ReproError as exc:
        # Harness-level signal; re-raised verbatim in the parent so
        # the supervisor classifies it exactly as it would in-process.
        return ("err", exc, _aux(executor))


def _as_channel(job: Union[int, Channel],
                result: Optional[int]) -> Channel:
    """Accept either a Channel or the legacy (job_fd, result_fd) pair."""
    if isinstance(job, Channel):
        return job
    return Channel(recv_fd=job, send_fd=result)


def worker_loop(executor, job: Union[int, Channel],
                result: Optional[int] = None) -> None:
    """Service jobs until EOF or an explicit shutdown frame."""
    executor.env_faults = None  # the parent draws the fault stream
    channel = _as_channel(job, result)
    while True:
        try:
            msg = channel.recv()
        except PipeClosed:
            return
        tag = msg[0]
        if tag == "shutdown":
            return
        if tag == "batch":
            channel.send(("batch",
                          [_run_job(executor, *job_msg)
                           for job_msg in msg[1]]))
            continue
        _, job_kind, image_bytes, data, kwargs = msg
        channel.send(_run_job(executor, job_kind, image_bytes, data, kwargs))


def worker_main(executor, job: Union[int, Channel],
                result: Optional[int] = None,
                rss_limit_bytes: Optional[int] = None) -> "NoReturn":  # noqa: F821
    """Post-fork entry point; never returns into the parent's code."""
    exit_code = 0
    try:
        apply_rss_limit(rss_limit_bytes)
        worker_loop(executor, job, result)
    except BaseException:  # noqa: BLE001 — a dying worker must not re-enter
        exit_code = 1
        try:
            sys.stderr.write(traceback.format_exc())
            sys.stderr.flush()
        except Exception:
            pass
    finally:
        os._exit(exit_code)
