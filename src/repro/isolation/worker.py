"""The child side of the fork server: one worker's job loop.

A worker is forked from the campaign process, inherits the fully
constructed :class:`~repro.fuzz.executor.Executor` (workload factory,
cost model, bug injector — no pickling of campaign state, exactly like
AFL++'s fork server inheriting the initialized target), applies its
resource ceiling, and then services ``job`` frames until the parent
closes the pipe or sends ``shutdown``.

Two deliberate asymmetries with in-process execution:

* ``executor.env_faults`` is cleared in the child — the *parent* draws
  the injected-fault stream before dispatching (see
  ``Executor._env_check``), so the fault RNG never diverges between
  backends.
* after every job the worker reports the bug injector's cumulative
  ``triggered`` set, because that is the one piece of cross-run process
  state the campaign reads back after fuzzing; the parent merges it so
  the real-bugs pipeline sees identical trigger records under either
  backend.
"""

from __future__ import annotations

import os
import sys
import traceback
from typing import Optional

from repro.errors import ReproError
from repro.isolation.protocol import PipeClosed, read_frame, write_frame
from repro.pmem.image import PMImage


def apply_rss_limit(limit_bytes: Optional[int]) -> None:
    """Cap the worker's address space (``RLIMIT_AS``).

    Linux does not enforce ``RLIMIT_RSS``, so the address-space limit is
    the practical ceiling: an unbounded allocation inside the target
    turns into a ``MemoryError`` (contained by the executor as a harness
    fault) or, for allocations the interpreter cannot survive, a worker
    death the pool triages.  Silently skipped where unsupported.
    """
    if not limit_bytes:
        return
    try:
        import resource
        resource.setrlimit(resource.RLIMIT_AS, (limit_bytes, limit_bytes))
    except (ImportError, ValueError, OSError):
        pass


def _aux(executor) -> dict:
    """Per-job sideband data the parent folds back into its own state."""
    injector = executor.injector
    triggered = getattr(injector, "triggered", None)
    return {"triggered": set(triggered) if triggered else None}


def worker_loop(executor, job_fd: int, result_fd: int) -> None:
    """Service jobs until EOF or an explicit shutdown frame."""
    executor.env_faults = None  # the parent draws the fault stream
    while True:
        try:
            msg = read_frame(job_fd)
        except PipeClosed:
            return
        if msg[0] == "shutdown":
            return
        _, job_kind, image_bytes, data, kwargs = msg
        try:
            if job_kind == "raw":
                result = executor.run_raw_image(image_bytes, data)
            else:
                image = PMImage.from_bytes(image_bytes)
                result = executor.run(image, data, **kwargs)
            reply = ("ok", result, _aux(executor))
        except ReproError as exc:
            # Harness-level signal; re-raised verbatim in the parent so
            # the supervisor classifies it exactly as it would in-process.
            reply = ("err", exc, _aux(executor))
        write_frame(result_fd, reply)


def worker_main(executor, job_fd: int, result_fd: int,
                rss_limit_bytes: Optional[int] = None) -> "NoReturn":  # noqa: F821
    """Post-fork entry point; never returns into the parent's code."""
    exit_code = 0
    try:
        apply_rss_limit(rss_limit_bytes)
        worker_loop(executor, job_fd, result_fd)
    except BaseException:  # noqa: BLE001 — a dying worker must not re-enter
        exit_code = 1
        try:
            sys.stderr.write(traceback.format_exc())
            sys.stderr.flush()
        except Exception:
            pass
    finally:
        os._exit(exit_code)
