"""Execution backends: *where* a test case runs, behind one seam.

The campaign loop (engine → supervisor) never calls the raw
:class:`~repro.fuzz.executor.Executor` directly any more; it calls an
:class:`ExecutionBackend`.  Two implementations exist:

* :class:`InProcessBackend` — the historical behavior: the executor
  runs in the campaign process.  Zero overhead, but a genuinely runaway
  target (true infinite loop, unbounded allocation) wedges the whole
  campaign, because virtual time cannot interrupt real execution.
* :class:`ForkServerBackend` — the paper's Section-4.7 / AFL++ fork
  server made literal: every execution happens in a forked worker
  subprocess behind a length-prefixed pipe, guarded by a wall-clock
  watchdog (SIGKILL + reap on deadline) and an RSS ceiling.  Results
  are bit-identical to in-process execution for well-behaved targets;
  misbehaving ones are converted into the campaign's existing failure
  taxonomy (:class:`~repro.errors.ExecTimeoutError`,
  :class:`~repro.errors.WorkerCrashError`) with a crash-triage bundle
  on disk, so the supervisor's retry/quarantine/timeout accounting
  applies unchanged.

:func:`create_backend` is the selection point, with graceful
degradation: asking for ``fork`` on a platform without ``os.fork``
falls back to in-process execution and *reports why*, instead of
failing the campaign.
"""

from __future__ import annotations

import os
import sys
from collections import deque
from typing import Callable, Deque, Optional, Sequence, Tuple

from repro.core.storage import TriageStore
from repro.errors import ExecTimeoutError, FuzzerError, WorkerCrashError
from repro.fuzz.executor import ExecResult, Executor
from repro.isolation.pool import ForkWorkerPool, WatchdogExpired, WorkerDeath
from repro.observe.bus import NULL_BUS
from repro.pmem.image import PMImage

#: Backend names accepted by ``--isolation`` / ``create_backend``.
ISOLATION_MODES = ("fork", "none")


class ExecutionBackend:
    """Interface between the supervisor and test-case execution."""

    name = "?"
    stats = None  #: optional FuzzStats for backend-level counters
    #: Trace hook points (attached by the engine, else inert): worker
    #: SIGKILLs and deaths are reported as ``worker_kill`` events.
    trace = NULL_BUS
    vclock_fn = None
    #: How many executions one worker dispatch may carry (1 = no batching).
    batch_execs = 1

    def run(self, image: PMImage, data: bytes, **kwargs) -> ExecResult:
        raise NotImplementedError

    def run_raw_image(self, image_bytes: bytes, data: bytes) -> ExecResult:
        raise NotImplementedError

    def plan(self, jobs: Sequence[tuple]) -> None:
        """Advise the backend of the jobs the caller will request next.

        Each job is a ``(job_kind, image_bytes, data, kwargs)`` tuple in
        the exact order the caller intends to run them.  Backends that
        batch use the plan to ship several jobs per worker dispatch; the
        default backend ignores it (a no-op for in-process execution).
        """

    def discard_plan(self) -> None:
        """Drop any outstanding plan and speculative results."""

    def close(self) -> None:
        """Release backend resources (workers respawn lazily on reuse)."""

    def describe(self) -> dict:
        """Backend configuration for checkpoints and triage metadata."""
        return {"backend": self.name}


class InProcessBackend(ExecutionBackend):
    """Run test cases in the campaign process (no isolation)."""

    name = "none"

    def __init__(self, executor: Executor) -> None:
        self.executor = executor

    def run(self, image: PMImage, data: bytes, **kwargs) -> ExecResult:
        return self.executor.run(image, data, **kwargs)

    def run_raw_image(self, image_bytes: bytes, data: bytes) -> ExecResult:
        return self.executor.run_raw_image(image_bytes, data)


class ForkServerBackend(ExecutionBackend):
    """Run every test case in a forked, watchdogged worker subprocess."""

    name = "fork"

    def __init__(
        self,
        executor: Executor,
        workers: int = 1,
        wall_timeout: float = 10.0,
        rss_limit_bytes: Optional[int] = None,
        max_execs_per_worker: int = 256,
        triage: Optional[TriageStore] = None,
        stats=None,
        campaign_info: Optional[Callable[[], dict]] = None,
        batch_execs: int = 8,
        transport: str = "auto",
    ) -> None:
        self.executor = executor
        self.pool = ForkWorkerPool(
            executor, workers=workers, wall_timeout=wall_timeout,
            rss_limit_bytes=rss_limit_bytes,
            max_execs_per_worker=max_execs_per_worker,
            transport=transport)
        self.wall_timeout = wall_timeout
        self.triage = triage
        self.stats = stats
        self.campaign_info = campaign_info or (lambda: {})
        self.batch_execs = max(1, int(batch_execs))
        #: Jobs the engine has announced for the current round, in order.
        self._plan: Deque[tuple] = deque()
        #: Speculatively executed (job, reply) pairs awaiting consumption.
        self._pending: Deque[Tuple[tuple, tuple]] = deque()

    # ------------------------------------------------------------------
    def run(self, image: PMImage, data: bytes, **kwargs) -> ExecResult:
        # The parent draws the injected-fault stream (identical order to
        # in-process execution); the child's injector is disarmed.
        self.executor._env_check()
        return self._dispatch("run", image.to_bytes(), bytes(data), kwargs)

    def run_raw_image(self, image_bytes: bytes, data: bytes) -> ExecResult:
        self.executor._env_check()
        return self._dispatch("raw", bytes(image_bytes), bytes(data), {})

    # ------------------------------------------------------------------
    # Batching: plan → speculative batch dispatch → ordered consumption
    # ------------------------------------------------------------------
    def plan(self, jobs: Sequence[tuple]) -> None:
        self.discard_plan()
        self._plan.extend(jobs)

    def discard_plan(self) -> None:
        self._plan.clear()
        self._pending.clear()

    def _obtain(self, job: tuple) -> tuple:
        """Return the reply for ``job``, batching when the plan matches.

        A job that matches the head of the speculative-result queue is
        answered from it; a job that matches the head of the plan pulls
        the next ``batch_execs`` planned jobs into one worker dispatch
        (the extra replies are queued for the following calls).  A job
        matching neither — crash-image re-executions interleave with the
        planned children mid-round — simply passes through as a single
        dispatch; speculation stays parked until the planned order
        resumes.  Execution is deterministic per job tuple, so a parked
        reply is interchangeable with a fresh one, and replies the
        caller never consumes are dropped by :meth:`discard_plan` with
        their sideband state unmerged — exactly as if those jobs had
        never run.
        """
        if self._pending and self._pending[0][0] == job:
            return self._pending.popleft()[1]
        if self.batch_execs > 1 and self._plan and self._plan[0] == job:
            batch = [self._plan.popleft()
                     for _ in range(min(self.batch_execs, len(self._plan)))]
            replies = self.pool.submit_batch(batch)
            self._pending.extend(zip(batch, replies))
            self._pending.popleft()
            return replies[0]
        if self._plan and self._plan[0] == job:
            self._plan.popleft()
        return self.pool.submit(*job)

    def _dispatch(self, job_kind: str, image_bytes: bytes, data: bytes,
                  kwargs: dict) -> ExecResult:
        try:
            reply = self._obtain((job_kind, image_bytes, data, kwargs))
        except WatchdogExpired as exc:
            self._count("watchdog_kills")
            self._emit_kill("watchdog", exc.exit_detail)
            self._write_triage("watchdog-timeout", image_bytes, data, kwargs,
                               exit_detail=exc.exit_detail,
                               error=str(exc))
            raise ExecTimeoutError(
                f"wall-clock watchdog SIGKILLed the worker after "
                f"{exc.deadline_s:.3f}s ({exc.exit_detail})",
                site="exec-hang") from exc
        except WorkerDeath as exc:
            self._count("worker_crashes")
            self._emit_kill("worker-death", exc.exit_detail)
            self._write_triage("worker-death", image_bytes, data, kwargs,
                               exit_detail=exc.exit_detail,
                               error=str(exc))
            raise WorkerCrashError(
                f"isolation worker died mid-execution ({exc.exit_detail})",
                exit_detail=exc.exit_detail) from exc
        finally:
            self._sync_pool_counters()
        tag, payload, aux = reply
        self._merge_aux(aux)
        if tag == "err":
            raise payload  # a ReproError raised inside the worker
        return payload

    # ------------------------------------------------------------------
    def _merge_aux(self, aux: dict) -> None:
        triggered = aux.get("triggered")
        injector = self.executor.injector
        if triggered and injector is not None \
                and hasattr(injector, "triggered"):
            injector.triggered |= triggered

    def _count(self, attr: str, n: int = 1) -> None:
        if self.stats is not None:
            setattr(self.stats, attr, getattr(self.stats, attr) + n)

    def _emit_kill(self, reason: str, exit_detail: str = "") -> None:
        vtime = self.vclock_fn() if self.vclock_fn is not None else 0.0
        self.trace.emit("worker_kill", vtime, reason=reason,
                        exit_detail=exit_detail)

    def _sync_pool_counters(self) -> None:
        if self.stats is not None:
            self.stats.worker_recycles = self.pool.recycled

    def _write_triage(self, reason: str, image_bytes: bytes, data: bytes,
                      kwargs: dict, exit_detail: str = "",
                      error: str = "") -> Optional[str]:
        if self.triage is None:
            return None
        info = self.campaign_info() or {}
        meta = {
            "reason": reason,
            "exit_detail": exit_detail,
            "error": error,
            "wall_timeout": self.wall_timeout,
            "exec_kwargs": {k: v for k, v in kwargs.items()
                            if isinstance(v, (int, float, str, bool,
                                              type(None)))},
            "workload": info.get("workload", ""),
            "config": info.get("config", ""),
            "bugs": list(info.get("bugs", [])),
        }
        path = self.triage.write_bundle(reason, data, image_bytes, meta)
        self._count("triage_bundles")
        return path

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.discard_plan()
        self.pool.close()

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "workers": len(self.pool._workers),
            "wall_timeout": self.wall_timeout,
            "rss_limit_bytes": self.pool.rss_limit_bytes,
            "max_execs_per_worker": self.pool.max_execs_per_worker,
            "triage_dir": self.triage.root if self.triage else None,
            "batch_execs": self.batch_execs,
            "transport": self.pool.transport,
        }


# ----------------------------------------------------------------------
# Selection with graceful degradation
# ----------------------------------------------------------------------
def fork_unavailable_reason() -> str:
    """Why fork isolation cannot work here ('' = it can)."""
    if not hasattr(os, "fork"):
        return "os.fork is unavailable on this platform"
    if sys.platform in ("win32", "emscripten", "wasi"):
        return f"fork isolation is unsupported on {sys.platform}"
    return ""


def create_backend(
    isolation: Optional[str],
    executor: Executor,
    *,
    workers: int = 1,
    wall_timeout: float = 10.0,
    rss_limit_bytes: Optional[int] = None,
    max_execs_per_worker: int = 256,
    triage_dir: Optional[str] = None,
    stats=None,
    campaign_info: Optional[Callable[[], dict]] = None,
    batch_execs: int = 8,
    transport: str = "auto",
) -> Tuple[ExecutionBackend, str]:
    """Build the requested backend; returns ``(backend, fallback_reason)``.

    ``fallback_reason`` is non-empty when ``fork`` was requested but the
    platform cannot provide it — the returned backend is then the
    in-process one and the campaign *runs anyway* (graceful
    degradation), with the reason surfaced through
    ``FuzzStats.isolation_fallback``.
    """
    if isolation in (None, "", "none"):
        return InProcessBackend(executor), ""
    if isolation != "fork":
        raise FuzzerError(f"unknown isolation backend {isolation!r}; "
                          f"known: {', '.join(ISOLATION_MODES)}")
    reason = fork_unavailable_reason()
    if reason:
        return InProcessBackend(executor), reason
    triage = TriageStore(triage_dir) if triage_dir else None
    backend = ForkServerBackend(
        executor, workers=workers, wall_timeout=wall_timeout,
        rss_limit_bytes=rss_limit_bytes,
        max_execs_per_worker=max_execs_per_worker,
        triage=triage, stats=stats, campaign_info=campaign_info,
        batch_execs=batch_execs, transport=transport)
    return backend, ""
