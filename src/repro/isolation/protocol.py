"""Length-prefixed pipe frames for the fork-server worker protocol.

The parent and each worker speak a strict request/response protocol over
a pair of anonymous pipes: every message is one *frame* — a 4-byte
little-endian length followed by a pickled payload.  Pickle is safe here
in the way it never is across a trust boundary: both ends of the pipe
are the same process image (the worker is forked from the campaign), so
the bytes on the wire are self-to-self.

Reads take an optional absolute deadline (``time.monotonic`` domain);
this is the mechanism the parent's wall-clock watchdog is built on — a
worker that stops producing bytes past the deadline raises
:class:`FrameDeadline` and gets SIGKILLed by the pool.
"""

from __future__ import annotations

import os
import pickle
import select
import struct
import time
from typing import Any, Optional

_LEN = struct.Struct("<I")

#: Sanity ceiling on one frame (a whole PM image fits in a few MB).
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(Exception):
    """The byte stream violated the framing protocol."""


class PipeClosed(ProtocolError):
    """EOF mid-frame: the peer is gone (worker death / parent exit)."""


class FrameDeadline(ProtocolError):
    """The absolute deadline expired before a complete frame arrived."""


def write_frame(fd: int, obj: Any) -> None:
    """Pickle ``obj`` and write it as one length-prefixed frame."""
    write_frame_bytes(fd, pickle.dumps(obj, protocol=4))


def write_frame_bytes(fd: int, blob: bytes) -> None:
    """Write an already-pickled payload as one length-prefixed frame.

    Split out of :func:`write_frame` so the shared-memory ring transport
    (:mod:`repro.isolation.ring`) can fall back to the pipe wire format
    for oversized frames without pickling the object twice.
    """
    if len(blob) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(blob)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte ceiling")
    _write_all(fd, _LEN.pack(len(blob)) + blob)


def read_frame(fd: int, deadline: Optional[float] = None) -> Any:
    """Read one frame; blocks, or honors an absolute monotonic deadline.

    Raises:
        PipeClosed: EOF before a complete frame.
        FrameDeadline: ``deadline`` passed with the frame incomplete.
        ProtocolError: an impossible length prefix or undecodable payload.
    """
    (length,) = _LEN.unpack(_read_exact(fd, _LEN.size, deadline))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame header announces {length} bytes")
    blob = _read_exact(fd, length, deadline)
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise ProtocolError(f"frame payload does not unpickle: {exc}") \
            from exc


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, n: int, deadline: Optional[float]) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FrameDeadline(f"deadline expired with {n - len(buf)} "
                                    "bytes outstanding")
            readable, _, _ = select.select([fd], [], [], remaining)
            if not readable:
                continue  # loop re-checks the deadline
        chunk = os.read(fd, n - len(buf))
        if not chunk:
            raise PipeClosed(f"EOF with {n - len(buf)} bytes outstanding")
        buf += chunk
    return bytes(buf)
