"""Fork-server worker pool: real process isolation for test execution.

:class:`ForkWorkerPool` owns N worker subprocesses, each forked from the
campaign process with the executor already constructed (the AFL++ fork
server of Section 4.7: fork-after-init, so per-execution startup cost is
one pipe round-trip, not an interpreter launch).  Jobs are dispatched
round-robin; every dispatch is guarded by a *wall-clock* watchdog — a
worker that fails to produce a complete result frame by the deadline is
SIGKILLed and reaped, which is the only mechanism that can stop a
genuinely runaway target (a true infinite loop, unbounded allocation,
recursion blowout) that virtual time can never interrupt.

Frames travel over the shared-memory ring transport
(:mod:`repro.isolation.ring`) wherever anonymous shared mmap exists,
falling back to the legacy pickled-pipe protocol otherwise (and
per-frame, for payloads larger than the ring).  :meth:`submit_batch`
amortizes the dispatch round-trip over N jobs on one worker.

Workers are recycled after a configurable number of executions (leak
hygiene, AFL++'s ``AFL_FORKSRV_INIT``-style periodic re-fork) and after
any abnormal exit.  The pool reports *what* happened (deadline expiry,
death with decoded exit status); mapping that onto the campaign's error
taxonomy and triage bundles is the backend's job.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from typing import List, Optional, Sequence, Tuple

from repro.isolation.protocol import (FrameDeadline, PipeClosed,
                                      ProtocolError)
from repro.isolation.ring import (DEFAULT_RING_BYTES, Channel, ShmRing,
                                  ring_available)
from repro.isolation.worker import worker_main

#: Transport names accepted by ``ForkWorkerPool(transport=...)``.
TRANSPORTS = ("auto", "ring", "pipe")


class WorkerUnavailableError(RuntimeError):
    """The pool cannot fork workers on this platform."""


class WorkerDeath(Exception):
    """A worker died before delivering its result frame."""

    def __init__(self, exit_detail: str) -> None:
        super().__init__(exit_detail or "worker died")
        self.exit_detail = exit_detail


class WatchdogExpired(Exception):
    """The wall-clock deadline passed; the worker was SIGKILLed."""

    def __init__(self, deadline_s: float, exit_detail: str) -> None:
        super().__init__(f"no result within {deadline_s:.3f}s wall clock")
        self.deadline_s = deadline_s
        self.exit_detail = exit_detail


def describe_wait_status(status: int) -> str:
    """Human-readable decoding of an ``os.waitpid`` status word."""
    if os.WIFSIGNALED(status):
        sig = os.WTERMSIG(status)
        try:
            name = signal.Signals(sig).name
        except ValueError:
            name = f"signal {sig}"
        return f"killed by {name}"
    if os.WIFEXITED(status):
        return f"exited with status {os.WEXITSTATUS(status)}"
    return f"wait status {status}"


class _Worker:
    __slots__ = ("pid", "channel", "execs")

    def __init__(self, pid: int, channel: Channel) -> None:
        self.pid = pid
        self.channel = channel  # parent-side endpoint
        self.execs = 0


class ForkWorkerPool:
    """N forked workers behind a round-robin job dispatcher.

    Args:
        executor: the campaign executor the forked children inherit.
        workers: pool size (workers are forked lazily, on first use).
        wall_timeout: per-job wall-clock deadline in real seconds.
        rss_limit_bytes: per-worker address-space ceiling (None = off).
        max_execs_per_worker: recycle a worker after this many jobs.
        shutdown_grace: seconds to wait for a graceful exit before
            escalating to SIGKILL.
        transport: ``"ring"`` (shared-memory frames), ``"pipe"`` (the
            legacy pickled-pipe protocol) or ``"auto"`` (ring wherever
            anonymous shared mmap works — graceful fallback, recorded
            in :attr:`transport`).
        ring_bytes: per-direction ring capacity for the ring transport.
    """

    def __init__(
        self,
        executor,
        workers: int = 1,
        wall_timeout: float = 10.0,
        rss_limit_bytes: Optional[int] = None,
        max_execs_per_worker: int = 256,
        shutdown_grace: float = 2.0,
        transport: str = "auto",
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        if not hasattr(os, "fork"):
            raise WorkerUnavailableError("os.fork is unavailable")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; "
                             f"known: {', '.join(TRANSPORTS)}")
        self.executor = executor
        self.wall_timeout = wall_timeout
        self.rss_limit_bytes = rss_limit_bytes
        self.max_execs_per_worker = max_execs_per_worker
        self.shutdown_grace = shutdown_grace
        self.ring_bytes = ring_bytes
        if transport == "auto":
            transport = "ring" if ring_available() else "pipe"
        elif transport == "ring" and not ring_available():  # pragma: no cover
            transport = "pipe"
        #: The resolved transport every spawned worker uses.
        self.transport = transport
        self._workers: List[Optional[_Worker]] = [None] * workers
        self._next = 0
        self.spawned = 0
        self.recycled = 0

    # ------------------------------------------------------------------
    # Spawning and reaping
    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        job_r, job_w = os.pipe()
        result_r, result_w = os.pipe()
        job_ring = result_ring = None
        if self.transport == "ring":
            try:
                job_ring = ShmRing(self.ring_bytes)
                result_ring = ShmRing(self.ring_bytes)
            except (OSError, ValueError):  # pragma: no cover - no shm
                if job_ring is not None:
                    job_ring.close()
                job_ring = result_ring = None
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:
            # Child: keep only this worker's ends.  Closing the
            # parent-side ends of every sibling is what makes EOF a
            # reliable death signal — otherwise a surviving sibling
            # would hold a dead worker's write end open forever.
            try:
                os.close(job_w)
                os.close(result_r)
                for sibling in self._workers:
                    if sibling is not None:
                        for fd in (sibling.channel.recv_fd,
                                   sibling.channel.send_fd):
                            try:
                                os.close(fd)
                            except OSError:
                                pass
                channel = Channel(recv_fd=job_r, send_fd=result_w,
                                  recv_ring=job_ring, send_ring=result_ring)
                worker_main(self.executor, channel,
                            rss_limit_bytes=self.rss_limit_bytes)
            finally:
                os._exit(1)  # worker_main never returns; belt and braces
        os.close(job_r)
        os.close(result_w)
        self.spawned += 1
        channel = Channel(recv_fd=result_r, send_fd=job_w,
                          recv_ring=result_ring, send_ring=job_ring)
        return _Worker(pid=pid, channel=channel)

    def _kill_and_reap(self, slot: int) -> str:
        """SIGKILL the worker in ``slot``, reap it, return exit detail."""
        worker = self._workers[slot]
        self._workers[slot] = None
        if worker is None:
            return ""
        try:
            os.kill(worker.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        worker.channel.close()
        try:
            _, status = os.waitpid(worker.pid, 0)
        except ChildProcessError:
            return "already reaped"
        return describe_wait_status(status)

    def _retire(self, slot: int) -> None:
        """Gracefully recycle the worker in ``slot`` (EOF, wait, kill)."""
        worker = self._workers[slot]
        self._workers[slot] = None
        if worker is None:
            return
        worker.channel.close()  # job-pipe EOF tells the child to exit
        deadline = time.monotonic() + self.shutdown_grace
        while time.monotonic() < deadline:
            try:
                pid, _ = os.waitpid(worker.pid, os.WNOHANG)
            except ChildProcessError:
                break
            if pid:
                break
            time.sleep(0.01)
        else:
            try:
                os.kill(worker.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            try:
                os.waitpid(worker.pid, 0)
            except ChildProcessError:
                pass
        self.recycled += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _checkout(self) -> Tuple[int, _Worker]:
        """Pick the next round-robin slot, spawning lazily."""
        slot = self._next
        self._next = (self._next + 1) % len(self._workers)
        worker = self._workers[slot]
        if worker is None:
            worker = self._workers[slot] = self._spawn()
        return slot, worker

    def _account(self, slot: int, worker: _Worker, execs: int) -> None:
        worker.execs += execs
        if worker.execs >= self.max_execs_per_worker:
            self._retire(slot)

    def submit(self, job_kind: str, image_bytes: bytes, data: bytes,
               kwargs: dict) -> tuple:
        """Run one job on the next worker; returns the reply frame.

        Raises:
            WatchdogExpired: no complete result by the wall deadline
                (the worker has been SIGKILLed and reaped).
            WorkerDeath: the worker died mid-job (already reaped).
        """
        slot, worker = self._checkout()
        try:
            worker.channel.send(("job", job_kind, image_bytes,
                                 bytes(data), kwargs))
        except OSError:
            raise WorkerDeath(self._kill_and_reap(slot)) from None
        deadline = time.monotonic() + self.wall_timeout
        try:
            reply = worker.channel.recv(deadline=deadline)
        except FrameDeadline:
            detail = self._kill_and_reap(slot)
            raise WatchdogExpired(self.wall_timeout, detail) from None
        except (PipeClosed, ProtocolError) as exc:
            detail = self._kill_and_reap(slot)
            raise WorkerDeath(detail or str(exc)) from None
        self._account(slot, worker, 1)
        return reply

    def submit_batch(self, jobs: Sequence[tuple]) -> List[tuple]:
        """Run N jobs back-to-back on one worker; returns their replies.

        Each job is a ``(job_kind, image_bytes, data, kwargs)`` tuple.
        The whole batch shares one frame round-trip and one wall-clock
        deadline of ``wall_timeout * len(jobs)``; a hang anywhere in the
        batch therefore still trips the watchdog, and a worker death
        loses the batch as a unit (the caller re-dispatches singly).

        Raises:
            WatchdogExpired / WorkerDeath: as :meth:`submit`.
        """
        if not jobs:
            return []
        if len(jobs) == 1:
            kind, image_bytes, data, kwargs = jobs[0]
            return [self.submit(kind, image_bytes, data, kwargs)]
        slot, worker = self._checkout()
        frame = ("batch", [(kind, image_bytes, bytes(data), kwargs)
                           for kind, image_bytes, data, kwargs in jobs])
        try:
            worker.channel.send(frame)
        except OSError:
            raise WorkerDeath(self._kill_and_reap(slot)) from None
        budget = self.wall_timeout * len(jobs)
        deadline = time.monotonic() + budget
        try:
            reply = worker.channel.recv(deadline=deadline)
        except FrameDeadline:
            detail = self._kill_and_reap(slot)
            raise WatchdogExpired(budget, detail) from None
        except (PipeClosed, ProtocolError) as exc:
            detail = self._kill_and_reap(slot)
            raise WorkerDeath(detail or str(exc)) from None
        if (not isinstance(reply, tuple) or reply[0] != "batch"
                or len(reply[1]) != len(jobs)):
            detail = self._kill_and_reap(slot)
            raise WorkerDeath(detail or "malformed batch reply")
        self._account(slot, worker, len(jobs))
        return list(reply[1])

    # ------------------------------------------------------------------
    @property
    def live_workers(self) -> int:
        return sum(1 for w in self._workers if w is not None)

    def close(self) -> None:
        """Retire every live worker (the pool respawns lazily on use)."""
        for slot in range(len(self._workers)):
            if self._workers[slot] is not None:
                self._retire(slot)
                self.recycled -= 1  # closing is not a recycle event

    def __del__(self) -> None:  # best effort: never leak children
        try:
            self.close()
        except Exception:
            pass
