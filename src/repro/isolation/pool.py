"""Fork-server worker pool: real process isolation for test execution.

:class:`ForkWorkerPool` owns N worker subprocesses, each forked from the
campaign process with the executor already constructed (the AFL++ fork
server of Section 4.7: fork-after-init, so per-execution startup cost is
one pipe round-trip, not an interpreter launch).  Jobs are dispatched
round-robin over a length-prefixed pipe protocol; every dispatch is
guarded by a *wall-clock* watchdog — a worker that fails to produce a
complete result frame by the deadline is SIGKILLed and reaped, which is
the only mechanism that can stop a genuinely runaway target (a true
infinite loop, unbounded allocation, recursion blowout) that virtual
time can never interrupt.

Workers are recycled after a configurable number of executions (leak
hygiene, AFL++'s ``AFL_FORKSRV_INIT``-style periodic re-fork) and after
any abnormal exit.  The pool reports *what* happened (deadline expiry,
death with decoded exit status); mapping that onto the campaign's error
taxonomy and triage bundles is the backend's job.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from typing import List, Optional

from repro.isolation.protocol import (FrameDeadline, PipeClosed,
                                      ProtocolError, read_frame, write_frame)
from repro.isolation.worker import worker_main


class WorkerUnavailableError(RuntimeError):
    """The pool cannot fork workers on this platform."""


class WorkerDeath(Exception):
    """A worker died before delivering its result frame."""

    def __init__(self, exit_detail: str) -> None:
        super().__init__(exit_detail or "worker died")
        self.exit_detail = exit_detail


class WatchdogExpired(Exception):
    """The wall-clock deadline passed; the worker was SIGKILLed."""

    def __init__(self, deadline_s: float, exit_detail: str) -> None:
        super().__init__(f"no result within {deadline_s:.3f}s wall clock")
        self.deadline_s = deadline_s
        self.exit_detail = exit_detail


def describe_wait_status(status: int) -> str:
    """Human-readable decoding of an ``os.waitpid`` status word."""
    if os.WIFSIGNALED(status):
        sig = os.WTERMSIG(status)
        try:
            name = signal.Signals(sig).name
        except ValueError:
            name = f"signal {sig}"
        return f"killed by {name}"
    if os.WIFEXITED(status):
        return f"exited with status {os.WEXITSTATUS(status)}"
    return f"wait status {status}"


class _Worker:
    __slots__ = ("pid", "result_fd", "job_fd", "execs")

    def __init__(self, pid: int, result_fd: int, job_fd: int) -> None:
        self.pid = pid
        self.result_fd = result_fd  # parent reads results here
        self.job_fd = job_fd  # parent writes jobs here
        self.execs = 0


class ForkWorkerPool:
    """N forked workers behind a round-robin job dispatcher.

    Args:
        executor: the campaign executor the forked children inherit.
        workers: pool size (workers are forked lazily, on first use).
        wall_timeout: per-job wall-clock deadline in real seconds.
        rss_limit_bytes: per-worker address-space ceiling (None = off).
        max_execs_per_worker: recycle a worker after this many jobs.
        shutdown_grace: seconds to wait for a graceful exit before
            escalating to SIGKILL.
    """

    def __init__(
        self,
        executor,
        workers: int = 1,
        wall_timeout: float = 10.0,
        rss_limit_bytes: Optional[int] = None,
        max_execs_per_worker: int = 256,
        shutdown_grace: float = 2.0,
    ) -> None:
        if not hasattr(os, "fork"):
            raise WorkerUnavailableError("os.fork is unavailable")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.executor = executor
        self.wall_timeout = wall_timeout
        self.rss_limit_bytes = rss_limit_bytes
        self.max_execs_per_worker = max_execs_per_worker
        self.shutdown_grace = shutdown_grace
        self._workers: List[Optional[_Worker]] = [None] * workers
        self._next = 0
        self.spawned = 0
        self.recycled = 0

    # ------------------------------------------------------------------
    # Spawning and reaping
    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        job_r, job_w = os.pipe()
        result_r, result_w = os.pipe()
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:
            # Child: keep only this worker's ends.  Closing the
            # parent-side ends of every sibling is what makes EOF a
            # reliable death signal — otherwise a surviving sibling
            # would hold a dead worker's write end open forever.
            try:
                os.close(job_w)
                os.close(result_r)
                for sibling in self._workers:
                    if sibling is not None:
                        for fd in (sibling.result_fd, sibling.job_fd):
                            try:
                                os.close(fd)
                            except OSError:
                                pass
                worker_main(self.executor, job_r, result_w,
                            self.rss_limit_bytes)
            finally:
                os._exit(1)  # worker_main never returns; belt and braces
        os.close(job_r)
        os.close(result_w)
        self.spawned += 1
        return _Worker(pid=pid, result_fd=result_r, job_fd=job_w)

    def _close_fds(self, worker: _Worker) -> None:
        for fd in (worker.result_fd, worker.job_fd):
            try:
                os.close(fd)
            except OSError:
                pass

    def _kill_and_reap(self, slot: int) -> str:
        """SIGKILL the worker in ``slot``, reap it, return exit detail."""
        worker = self._workers[slot]
        self._workers[slot] = None
        if worker is None:
            return ""
        try:
            os.kill(worker.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        self._close_fds(worker)
        try:
            _, status = os.waitpid(worker.pid, 0)
        except ChildProcessError:
            return "already reaped"
        return describe_wait_status(status)

    def _retire(self, slot: int) -> None:
        """Gracefully recycle the worker in ``slot`` (EOF, wait, kill)."""
        worker = self._workers[slot]
        self._workers[slot] = None
        if worker is None:
            return
        self._close_fds(worker)  # job-pipe EOF tells the child to exit
        deadline = time.monotonic() + self.shutdown_grace
        while time.monotonic() < deadline:
            try:
                pid, _ = os.waitpid(worker.pid, os.WNOHANG)
            except ChildProcessError:
                break
            if pid:
                break
            time.sleep(0.01)
        else:
            try:
                os.kill(worker.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            try:
                os.waitpid(worker.pid, 0)
            except ChildProcessError:
                pass
        self.recycled += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def submit(self, job_kind: str, image_bytes: bytes, data: bytes,
               kwargs: dict) -> tuple:
        """Run one job on the next worker; returns the reply frame.

        Raises:
            WatchdogExpired: no complete result by the wall deadline
                (the worker has been SIGKILLed and reaped).
            WorkerDeath: the worker died mid-job (already reaped).
        """
        slot = self._next
        self._next = (self._next + 1) % len(self._workers)
        worker = self._workers[slot]
        if worker is None:
            worker = self._workers[slot] = self._spawn()
        try:
            write_frame(worker.job_fd, ("job", job_kind, image_bytes,
                                        bytes(data), kwargs))
        except OSError:
            raise WorkerDeath(self._kill_and_reap(slot)) from None
        deadline = time.monotonic() + self.wall_timeout
        try:
            reply = read_frame(worker.result_fd, deadline=deadline)
        except FrameDeadline:
            detail = self._kill_and_reap(slot)
            raise WatchdogExpired(self.wall_timeout, detail) from None
        except (PipeClosed, ProtocolError) as exc:
            detail = self._kill_and_reap(slot)
            raise WorkerDeath(detail or str(exc)) from None
        worker.execs += 1
        if worker.execs >= self.max_execs_per_worker:
            self._retire(slot)
        return reply

    # ------------------------------------------------------------------
    @property
    def live_workers(self) -> int:
        return sum(1 for w in self._workers if w is not None)

    def close(self) -> None:
        """Retire every live worker (the pool respawns lazily on use)."""
        for slot in range(len(self._workers)):
            if self._workers[slot] is not None:
                self._retire(slot)
                self.recycled -= 1  # closing is not a recycle event

    def __del__(self) -> None:  # best effort: never leak children
        try:
            self.close()
        except Exception:
            pass
