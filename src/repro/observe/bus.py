"""The bounded trace bus: where every layer reports what it did.

One :class:`TraceBus` per writer (solo campaign, fleet member, fleet
supervisor).  Emitting is cheap and bounded:

* a disabled bus (no trace directory configured) rejects events on the
  first branch — the campaign pays one attribute load and a compare;
* ``exec`` events — the high-rate kind — are *sampled* 1-in-N
  (``--trace-sample``), everything else is always kept;
* kept events buffer in a bounded ring (:class:`collections.deque` with
  ``maxlen``); if the writer cannot drain fast enough the *oldest*
  buffered events are dropped and counted, never blocking the campaign;
* the ring drains to the JSONL sink every ``flush_every`` events and on
  :meth:`close`.

The bus never touches campaign state and draws no campaign randomness
(sampling is a modulo counter), so tracing on vs off cannot perturb a
seeded campaign — the determinism contract the test suite enforces.

The sequence counter and sampling phase are checkpointable
(:meth:`getstate` / :meth:`setstate`): a member resumed from its
checkpoint replays the interrupted tail with identical ``(member, seq)``
labels, which is what lets the shard merge deduplicate the replay.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.observe.events import TraceEvent
from repro.observe.sink import JsonlTraceSink

DEFAULT_RING = 4096
DEFAULT_FLUSH_EVERY = 256


class TraceBus:
    """Bounded, sampled event buffer draining to a JSONL sink."""

    def __init__(
        self,
        sink: Optional[JsonlTraceSink] = None,
        sink_factory: Optional[Callable[[], JsonlTraceSink]] = None,
        member: int = -1,
        sample: int = 1,
        ring: int = DEFAULT_RING,
        flush_every: int = DEFAULT_FLUSH_EVERY,
    ) -> None:
        if sample < 1:
            raise ValueError(f"trace sample must be >= 1, got {sample}")
        self._sink = sink
        #: Lazy sink construction: a fleet member's shard path depends on
        #: its member index, which is assigned after engine construction.
        self._sink_factory = sink_factory
        self.member = member
        self.sample = sample
        self.flush_every = max(1, flush_every)
        self.enabled = sink is not None or sink_factory is not None
        self._ring: deque = deque(maxlen=max(1, ring))
        self._seq = 0
        self._exec_count = 0
        self.dropped = 0  #: ring overflows (oldest event evicted)
        self.sampled_out = 0  #: exec events skipped by the sampling knob

    # ------------------------------------------------------------------
    def emit(self, kind: str, vtime: float, **payload) -> None:
        """Record one event (or cheaply do nothing when disabled)."""
        if not self.enabled:
            return
        if kind == "exec":
            self._exec_count += 1
            if (self._exec_count - 1) % self.sample:
                self.sampled_out += 1
                return
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(TraceEvent(kind=kind, vtime=vtime, seq=self._seq,
                                     member=self.member, payload=payload))
        self._seq += 1
        if len(self._ring) >= min(self.flush_every, self._ring.maxlen):
            self.flush()

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Drain the ring to the sink (constructing it lazily)."""
        if not self._ring:
            return
        sink = self._resolve_sink()
        if sink is None:
            return
        events = list(self._ring)
        self._ring.clear()
        sink.write_events(events)

    def close(self) -> None:
        self.flush()

    def _resolve_sink(self) -> Optional[JsonlTraceSink]:
        if self._sink is None and self._sink_factory is not None:
            self._sink = self._sink_factory()
            self._sink_factory = None
        return self._sink

    # ------------------------------------------------------------------
    # Checkpoint support (replay-identical sequence labels)
    # ------------------------------------------------------------------
    def getstate(self):
        return (self._seq, self._exec_count)

    def setstate(self, state) -> None:
        self._seq, self._exec_count = state


#: A shared inert bus for layers constructed without tracing.  Emitting
#: on it is a no-op; it is never enabled and holds no buffer.
NULL_BUS = TraceBus()
