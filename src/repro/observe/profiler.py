"""Per-stage profiling: where does campaign time actually go?

The engine charges every piece of work to a named stage — ``mutate``,
``execute``, ``crashgen`` (crash-image generation), ``sync``,
``checkpoint`` — in two currencies:

* **virtual time** (the Figure-13 axis) is charged always; it is a pure
  function of the seeded campaign and lands in the deterministic
  metrics snapshot;
* **wall-clock time** is only measured under ``--profile`` (the timer
  syscalls are not free) and lands in the host-dependent snapshot.

Stages listed in ``host_only`` (by default just ``checkpoint``) are an
exception: their cadence is an operational choice — a campaign with
checkpointing enabled must produce stats bit-identical to the same
campaign without it — so they are never charged to the deterministic
snapshot and are only observed at all under ``--profile``.

:func:`render_profile` turns a snapshot into the flame-style breakdown
the ``--profile`` flag prints: one bar per stage, widths proportional
to the stage's share.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.observe.metrics import MetricsRegistry

#: Metric-name prefixes the profiler owns.
STAGE_VTIME_PREFIX = "stage_vtime/"
STAGE_WALL_PREFIX = "stage_wall/"
STAGE_CALLS_PREFIX = "stage_calls/"

_BAR_WIDTH = 40


class StageProfiler:
    """Accumulates per-stage vtime (always) and wall time (opt-in)."""

    def __init__(self, registry: MetricsRegistry,
                 wall_enabled: bool = False,
                 host_only: Sequence[str] = ("checkpoint",)) -> None:
        self.registry = registry
        self.wall_enabled = wall_enabled
        self.host_only = frozenset(host_only)
        self._vtime: Dict[str, object] = {}
        self._wall: Dict[str, object] = {}
        self._calls: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _vtime_gauge(self, stage: str):
        gauge = self._vtime.get(stage)
        if gauge is None:
            gauge = self.registry.gauge(STAGE_VTIME_PREFIX + stage)
            self._vtime[stage] = gauge
        return gauge

    def add_vtime(self, stage: str, vseconds: float) -> None:
        """Charge virtual seconds to a stage (deterministic)."""
        if stage in self.host_only:
            return
        self._vtime_gauge(stage).add(vseconds)

    def count_call(self, stage: str, n: int = 1) -> None:
        counter = self._calls.get(stage)
        if counter is None:
            host = stage in self.host_only
            if host and not self.wall_enabled:
                return
            counter = self.registry.counter(STAGE_CALLS_PREFIX + stage,
                                            host_dependent=host)
            self._calls[stage] = counter
        counter.inc(n)

    # ------------------------------------------------------------------
    def stage(self, name: str) -> "_StageTimer":
        """Context manager timing one stage pass (wall clock, opt-in)."""
        return _StageTimer(self, name)

    def _add_wall(self, stage: str, seconds: float) -> None:
        gauge = self._wall.get(stage)
        if gauge is None:
            gauge = self.registry.gauge(STAGE_WALL_PREFIX + stage,
                                        host_dependent=True)
            self._wall[stage] = gauge
        gauge.add(seconds)


class _StageTimer:
    __slots__ = ("profiler", "name", "_start")

    def __init__(self, profiler: StageProfiler, name: str) -> None:
        self.profiler = profiler
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_StageTimer":
        self.profiler.count_call(self.name)
        if self.profiler.wall_enabled:
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self.profiler.wall_enabled:
            self.profiler._add_wall(self.name,
                                    time.perf_counter() - self._start)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _stage_rows(snapshot: dict, prefix: str) -> List[tuple]:
    rows = [(name[len(prefix):], value)
            for name, value in snapshot.items()
            if name.startswith(prefix) and isinstance(value, (int, float))]
    rows.sort(key=lambda r: (-r[1], r[0]))
    return rows


def render_profile(metrics: dict, metrics_host: Optional[dict] = None,
                   title: str = "per-stage breakdown") -> str:
    """Flame-style text breakdown from metric snapshots.

    Virtual-time shares come from the deterministic snapshot; wall-clock
    shares (when ``--profile`` collected them) from the host snapshot.
    """
    lines = [f"== {title} =="]
    for label, snap, prefix, unit in (
            ("virtual time", metrics or {}, STAGE_VTIME_PREFIX, "vs"),
            ("wall clock", metrics_host or {}, STAGE_WALL_PREFIX, "s")):
        rows = _stage_rows(snap, prefix)
        if not rows:
            continue
        total = sum(v for _, v in rows) or 1.0
        lines.append(f"-- {label} ({total:.4f}{unit} attributed) --")
        for stage, value in rows:
            share = value / total
            bar = "#" * max(1, int(share * _BAR_WIDTH))
            calls = ((metrics or {}).get(STAGE_CALLS_PREFIX + stage)
                     or (metrics_host or {}).get(STAGE_CALLS_PREFIX + stage))
            calls_text = f" x{calls}" if calls else ""
            lines.append(f"{stage:12s} {value:10.4f}{unit} "
                         f"{share:6.1%} {bar}{calls_text}")
    if len(lines) == 1:
        lines.append("(no stage data collected)")
    return "\n".join(lines)
