"""Campaign observability: structured tracing, metrics, profiling, live
monitor.

The layer every evaluation figure is read off of:

* :mod:`repro.observe.events` / :mod:`repro.observe.bus` /
  :mod:`repro.observe.sink` — the typed trace stream: bounded ring,
  sampling, rotating crash-safe JSONL shards, deterministic merge;
* :mod:`repro.observe.metrics` — the register-once metrics registry
  snapshotted into :class:`~repro.fuzz.stats.FuzzStats`;
* :mod:`repro.observe.profiler` — per-stage vtime/wall attribution and
  the ``--profile`` breakdown;
* :mod:`repro.observe.monitor` / :mod:`repro.observe.report` — the live
  ``status.json`` tail and the post-hoc campaign report.

The contract with the rest of the system: **observability is a no-op
for determinism**.  Nothing here touches campaign state or campaign
randomness; a seeded campaign's ``comparable()`` stats are bit-identical
with tracing on or off (regression-tested in ``tests/observe``).
"""

from repro.observe.bus import NULL_BUS, TraceBus
from repro.observe.events import EVENT_KINDS, TraceEvent
from repro.observe.metrics import (MetricsRegistry,
                                   merge_metric_snapshots)
from repro.observe.monitor import (StatusWriter, monitor_loop, read_status,
                                   render_status, status_snapshot)
from repro.observe.profiler import StageProfiler, render_profile
from repro.observe.report import render_html_report, render_report
from repro.observe.sink import JsonlTraceSink, merge_shards, read_events

__all__ = [
    "EVENT_KINDS", "TraceEvent", "TraceBus", "NULL_BUS",
    "JsonlTraceSink", "read_events", "merge_shards",
    "MetricsRegistry", "merge_metric_snapshots",
    "StageProfiler", "render_profile",
    "StatusWriter", "status_snapshot", "read_status", "render_status",
    "monitor_loop", "render_report", "render_html_report",
]
