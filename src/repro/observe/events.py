"""Typed trace events: the vocabulary of the campaign event stream.

Every layer of the campaign — engine, supervised executor, fork-server
backend, corpus syncer, fleet supervisor, two-stage pipeline — reports
what it does as :class:`TraceEvent` records on a
:class:`~repro.observe.bus.TraceBus`.  The kinds are a closed set
(:data:`EVENT_KINDS`): an unknown kind is a programming error and is
rejected at emit time, so the downstream report renderer can rely on the
vocabulary.

Events are plain data.  They never feed back into campaign decisions,
which is what makes the whole observability layer determinism-neutral:
a campaign with tracing on and a campaign with tracing off make exactly
the same RNG draws and cover exactly the same paths.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

#: The closed vocabulary of the trace stream.
EVENT_KINDS = frozenset({
    "exec",            # one test-case execution (sampled via --trace-sample)
    "new_path",        # coverage-interesting test case saved to the queue
    "crash",           # SEGFAULT outcome / crash-triage bundle written
    "sync_epoch",      # fleet epoch boundary: published / imported counts
    "worker_kill",     # watchdog SIGKILL, worker death, member kill/retire
    "fault_injected",  # environment fault absorbed by the supervisor
    "checkpoint",      # campaign state snapshotted to disk
    "stage_enter",     # pipeline / profiling stage opened
    "stage_exit",      # pipeline / profiling stage closed
    "corpusdb",        # corpus-database activity: warm-start / sync / flush
    "degraded",        # a subsystem gave up; the campaign continues without
    "audit",           # durability-audit result for one component
})


@dataclass(frozen=True)
class TraceEvent:
    """One structured event on the campaign trace stream."""

    kind: str
    vtime: float  #: virtual-clock instant (campaign time, not wall time)
    seq: int  #: per-member monotonic sequence number (dedup key on merge)
    member: int = -1  #: fleet member index (-1 = solo / supervisor)
    payload: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {self.kind!r}; "
                             f"known: {sorted(EVENT_KINDS)}")

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """One compact, key-sorted JSON line (the sink format)."""
        record = {"kind": self.kind, "vtime": self.vtime, "seq": self.seq,
                  "member": self.member}
        record.update(self.payload)
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        """Parse one sink line; raises ValueError on damage.

        The torn tail a SIGKILLed writer leaves behind surfaces here as
        a ValueError, which the tolerant reader skips.
        """
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"undecodable trace line: {exc}") from exc
        if not isinstance(record, dict):
            raise ValueError("trace line is not a JSON object")
        try:
            kind = record.pop("kind")
            vtime = float(record.pop("vtime"))
            seq = int(record.pop("seq"))
            member = int(record.pop("member", -1))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"trace line missing/bad header field: {exc}") \
                from exc
        return cls(kind=kind, vtime=vtime, seq=seq, member=member,
                   payload=record)

    @property
    def dedup_key(self):
        """Identity under the replay-after-restart contract.

        A member SIGKILLed mid-epoch resumes from its checkpoint and
        replays the interrupted tail bit-for-bit, re-emitting byte-
        identical events with the same (member, seq); the deterministic
        shard merge keeps one copy.
        """
        return (self.member, self.seq)
