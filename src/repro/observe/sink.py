"""Rotating, crash-safe JSONL trace sinks and their tolerant readers.

Write side
----------
:class:`JsonlTraceSink` appends complete JSON lines and flushes on every
drain, so a SIGKILL can tear at most the final line — never an earlier
one (appends are sequential).  When a shard exceeds ``rotate_bytes`` it
is renamed to ``<name>.<n>`` and a fresh file continues the stream; the
reader stitches rotations back together in order.

Read side
---------
:func:`read_events` skips undecodable lines (the torn tail a kill leaves
behind, or a line damaged by bit rot) instead of failing: a crashed
fleet member's shard must still merge into the campaign report.
:func:`merge_shards` combines per-member shards deterministically —
dedup by ``(member, seq)`` (a restarted member re-emits its replayed
tail byte-for-byte), then sort by ``(vtime, member, seq)`` — so the
merged timeline is a pure function of the shard contents, never of
read order.
"""

from __future__ import annotations

import os
import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro._util import replace_durable
from repro._vfs import current_vfs
from repro.observe.events import TraceEvent

#: Shard file name for one trace writer (member -1 = solo campaign).
_SHARD_RE = re.compile(r"^trace-(solo|supervisor|m(\d+))\.jsonl(\.\d+)?$")


def shard_name(member: int) -> str:
    """Canonical shard file name for one writer."""
    if member < 0:
        return "trace-solo.jsonl"
    return f"trace-m{member}.jsonl"


class JsonlTraceSink:
    """Append-only JSONL writer with size-based rotation."""

    def __init__(self, path: str,
                 rotate_bytes: Optional[int] = None) -> None:
        self.path = path
        self.rotate_bytes = rotate_bytes
        self.lines_written = 0
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)

    # ------------------------------------------------------------------
    def write_events(self, events: Iterable[TraceEvent]) -> None:
        """Append a batch of events; one flush per batch, not per line."""
        lines = [event.to_json() for event in events]
        if not lines:
            return
        self._maybe_rotate()
        vfs = current_vfs()
        data = ("\n".join(lines) + "\n").encode("utf-8")
        vfs.append_bytes(self.path, data)
        vfs.fsync(self.path)
        self.lines_written += len(lines)

    def _maybe_rotate(self) -> None:
        if self.rotate_bytes is None:
            return
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size < self.rotate_bytes:
            return
        # Number the rotation one past the *highest* existing suffix,
        # never into a hole: a crash (or cleanup) that removed `.2`
        # while `.3` survived must not make the next rotation `.2` —
        # the merge order (rotations oldest-first by number) would put
        # newer events before older ones.
        n = 0
        directory = os.path.dirname(os.path.abspath(self.path))
        base = os.path.basename(self.path)
        try:
            for name in os.listdir(directory):
                if name.startswith(base + "."):
                    suffix = name[len(base) + 1:]
                    if suffix.isdigit():
                        n = max(n, int(suffix))
        except OSError:
            pass
        replace_durable(self.path, f"{self.path}.{n + 1}")


# ----------------------------------------------------------------------
# Tolerant readers
# ----------------------------------------------------------------------
def read_events(path: str) -> Tuple[List[TraceEvent], int]:
    """Read one shard file; returns ``(events, skipped_lines)``.

    Damaged lines — the torn tail of a SIGKILLed writer, or anything
    else that fails to parse — are counted and skipped, never fatal.
    A missing file reads as empty.
    """
    events: List[TraceEvent] = []
    skipped = 0
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(TraceEvent.from_json(line))
                except ValueError:
                    skipped += 1
    except OSError:
        pass
    return events, skipped


def _rotation_order(name: str) -> Tuple[int, int]:
    """Sort key putting ``x.jsonl.1`` before ``x.jsonl.2`` before
    ``x.jsonl`` (rotations are older than the live file)."""
    match = _SHARD_RE.match(name)
    suffix = match.group(3) if match else None
    return (0, int(suffix[1:])) if suffix else (1, 0)


def shard_files(trace_dir: str) -> List[str]:
    """Every shard (and rotation) under a trace directory, in merge
    order: grouped per writer, rotations first, oldest first."""
    try:
        names = os.listdir(trace_dir)
    except OSError:
        return []
    matched = [n for n in names if _SHARD_RE.match(n)]
    matched.sort(key=lambda n: (n.split(".jsonl")[0], _rotation_order(n)))
    return [os.path.join(trace_dir, n) for n in matched]


def merge_shards(trace_dir: str) -> Tuple[List[TraceEvent], int]:
    """Deterministically merge every shard under ``trace_dir``.

    Returns ``(events, skipped_lines)``.  Duplicate ``(member, seq)``
    pairs — the replayed tail of a killed-and-resumed member — collapse
    to their first occurrence; the result is sorted by
    ``(vtime, member, seq)`` so the merged timeline never depends on
    file-system listing order.
    """
    seen: Dict[tuple, TraceEvent] = {}
    skipped = 0
    for path in shard_files(trace_dir):
        events, bad = read_events(path)
        skipped += bad
        for event in events:
            seen.setdefault(event.dedup_key, event)
    merged = sorted(seen.values(),
                    key=lambda e: (e.vtime, e.member, e.seq))
    return merged, skipped
