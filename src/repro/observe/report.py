"""Post-hoc campaign reports from the trace directory.

``python -m repro report <dir>`` merges the per-member JSONL shards
(deterministically, torn tails tolerated — see
:mod:`repro.observe.sink`), reconstructs the coverage-over-time curve
from ``new_path`` events, lays the fault / worker-kill / checkpoint /
sync-epoch events on a timeline, and renders either a terminal report
or a self-contained HTML page.  A campaign whose fleet member was
SIGKILLed mid-write still reports: the member's torn tail is skipped
and its replayed events deduplicate against the pre-kill ones.
"""

from __future__ import annotations

import html as _html
import json
from typing import Dict, List, Optional, Tuple

from repro.observe.events import TraceEvent
from repro.observe.monitor import read_status, status_files
from repro.observe.sink import merge_shards

#: Event kinds drawn on the incident timeline, with their glyphs.
TIMELINE_KINDS = (
    ("fault_injected", "F"),
    ("worker_kill", "K"),
    ("crash", "C"),
    ("checkpoint", "·"),
    ("sync_epoch", "S"),
)

_TIMELINE_WIDTH = 64


def coverage_curve(events: List[TraceEvent]) -> List[Tuple[float, int]]:
    """Fleet-wide coverage-over-time from ``new_path`` events.

    Each ``new_path`` event carries the emitting member's cumulative
    ``pm_paths``; the fleet curve takes, at each instant, the sum of the
    latest per-member values — an upper-bound union proxy (exact union
    needs the slot sets, which live in the merged stats, not the
    stream).  For a solo campaign this is exactly the member's curve.
    """
    latest: Dict[int, int] = {}
    curve: List[Tuple[float, int]] = []
    for event in events:
        if event.kind != "new_path":
            continue
        pm = event.payload.get("pm_paths")
        if pm is None:
            continue
        latest[event.member] = int(pm)
        curve.append((event.vtime, sum(latest.values())))
    return curve


def event_counts(events: List[TraceEvent]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def timeline_rows(events: List[TraceEvent],
                  width: int = _TIMELINE_WIDTH) -> List[Tuple[str, str]]:
    """One ``(label, track)`` row per incident kind, vtime-bucketed."""
    if not events:
        return []
    span = max(e.vtime for e in events) or 1.0
    rows: List[Tuple[str, str]] = []
    for kind, glyph in TIMELINE_KINDS:
        marks = [e.vtime for e in events if e.kind == kind]
        if not marks:
            continue
        track = [" "] * width
        for vtime in marks:
            slot = min(width - 1, int(vtime / span * width))
            track[slot] = glyph
        rows.append((f"{kind} ({len(marks)})", "".join(track)))
    return rows


# ----------------------------------------------------------------------
# Terminal report
# ----------------------------------------------------------------------
def render_report(trace_dir: str) -> str:
    """The terminal campaign report for one trace directory."""
    from repro.analysis.figures import sparkline

    events, skipped = merge_shards(trace_dir)
    statuses = [s for s in (read_status(p)
                            for p in status_files(trace_dir))
                if s is not None]
    lines = [f"== campaign report — {trace_dir} =="]
    if statuses:
        head = statuses[0]
        lines.append(f"workload/config   : "
                     f"{head.get('workload') or '?'} / "
                     f"{head.get('config') or '?'}")
        lines.append(f"members           : {len(statuses)} "
                     f"(executions {sum(s.get('executions', 0) for s in statuses)}, "
                     f"faults {sum(s.get('harness_faults', 0) for s in statuses)})")
    lines.append(f"trace events      : {len(events)} merged"
                 + (f", {skipped} damaged lines skipped (torn tails)"
                    if skipped else ""))
    if not events and not statuses:
        lines.append("nothing to report: no shards or status files found")
        return "\n".join(lines)

    curve = coverage_curve(events)
    if not curve and statuses:
        # Exec-only traces (heavy sampling) still get a curve from the
        # status samples.
        merged: List[Tuple[float, int]] = []
        for snap in statuses:
            merged.extend((float(t), int(p))
                          for t, p in snap.get("curve") or [])
        curve = sorted(merged)
    if curve:
        values = [paths for _, paths in curve]
        lines.append("-- PM path coverage over virtual time --")
        lines.append(f"{'':4s}{sparkline(values, max(values))} "
                     f"peak={max(values)} final={values[-1]} "
                     f"span=0.0..{curve[-1][0]:.3f}vs")
    rows = timeline_rows(events)
    if rows:
        lines.append("-- event timeline (virtual time, left=start) --")
        for label, track in rows:
            lines.append(f"{label:20s} |{track}|")
    counts = event_counts(events)
    if counts:
        lines.append("-- event counts --")
        lines.append("  ".join(f"{kind}={counts[kind]}"
                               for kind in sorted(counts)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML report
# ----------------------------------------------------------------------
def _svg_curve(curve: List[Tuple[float, int]],
               width: int = 640, height: int = 160) -> str:
    if not curve:
        return "<p>no coverage curve</p>"
    span = curve[-1][0] or 1.0
    peak = max(p for _, p in curve) or 1
    points = " ".join(
        f"{t / span * width:.1f},{height - p / peak * (height - 10):.1f}"
        for t, p in curve)
    return (f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'<polyline fill="none" stroke="#2b6cb0" stroke-width="2" '
            f'points="{points}"/></svg>')


def render_html_report(trace_dir: str) -> str:
    """Self-contained HTML variant of :func:`render_report`."""
    events, skipped = merge_shards(trace_dir)
    curve = coverage_curve(events)
    counts = event_counts(events)
    rows = timeline_rows(events)
    body = [f"<h1>Campaign report — {_html.escape(trace_dir)}</h1>",
            f"<p>{len(events)} events merged; {skipped} damaged lines "
            f"skipped.</p>",
            "<h2>PM path coverage over virtual time</h2>",
            _svg_curve(curve),
            "<h2>Event timeline</h2>"]
    if rows:
        body.append("<pre>")
        body.extend(f"{_html.escape(label):20s} |{_html.escape(track)}|"
                    for label, track in rows)
        body.append("</pre>")
    body.append("<h2>Event counts</h2><table border='1'>")
    body.append("<tr><th>kind</th><th>count</th></tr>")
    body.extend(f"<tr><td>{_html.escape(kind)}</td><td>{counts[kind]}</td>"
                f"</tr>" for kind in sorted(counts))
    body.append("</table>")
    statuses = [s for s in (read_status(p)
                            for p in status_files(trace_dir))
                if s is not None]
    if statuses:
        body.append("<h2>Final member status</h2><pre>")
        body.append(_html.escape(json.dumps(statuses, indent=2,
                                            sort_keys=True)))
        body.append("</pre>")
    return ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            "<title>campaign report</title></head><body>"
            + "\n".join(body) + "</body></html>")
