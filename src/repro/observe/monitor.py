"""Live campaign monitoring: atomic ``status.json`` + terminal tail.

The engine publishes a :func:`status_snapshot` of its
:class:`~repro.fuzz.stats.FuzzStats` to ``status.json`` every
``status_every`` virtual seconds, via the same write-tmp+fsync+rename
discipline as every other durable artifact — a reader never sees a torn
status file, only the previous complete one.

``python -m repro monitor <dir>`` tails the status files in a trace
directory (one per fleet member, one for a solo campaign) and redraws a
terminal summary; ``--once`` renders a single frame, which is what the
CI smoke test drives.
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Dict, List, Optional

from repro._util import atomic_write_bytes

STATUS_VERSION = 1

_STATUS_RE = re.compile(r"^status(-m\d+)?\.json$")


def status_name(member: int) -> str:
    return "status.json" if member < 0 else f"status-m{member}.json"


def status_snapshot(stats, vclock: float) -> dict:
    """JSON-friendly snapshot of one campaign's live statistics."""
    sample = stats.samples[-1] if stats.samples else None
    return {
        "version": STATUS_VERSION,
        "config": stats.config_name,
        "workload": stats.workload_name,
        "member": stats.member_index,
        "fleet_size": stats.fleet_size,
        "vtime": vclock,
        "executions": stats.executions,
        "execs_per_vsec": stats.executions / vclock if vclock else 0.0,
        "pm_paths": sample.pm_paths if sample else 0,
        "branch_edges": sample.branch_edges if sample else 0,
        "queue_size": sample.queue_size if sample else 0,
        "images": sample.images if sample else 0,
        "harness_faults": stats.harness_faults,
        "quarantined": stats.quarantined,
        "stop_reason": stats.stop_reason,
        "curve": [[s.vtime, s.pm_paths] for s in stats.samples],
        "metrics": stats.metrics,
        "metrics_host": stats.metrics_host,
        # Wall-clock stamp for staleness display only; never read back
        # into campaign state.
        "written_at": time.time(),
    }


class StatusWriter:
    """Publishes ``status.json`` atomically on a virtual-time cadence."""

    def __init__(self, path: str, every_vtime: float = 0.5) -> None:
        if every_vtime <= 0:
            raise ValueError("status cadence must be positive")
        self.path = path
        self.every_vtime = every_vtime
        self._next = 0.0
        self.writes = 0
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)

    def maybe_write(self, stats, vclock: float, force: bool = False) -> bool:
        if not force and vclock < self._next:
            return False
        self._next = vclock + self.every_vtime
        snapshot = status_snapshot(stats, vclock)
        blob = json.dumps(snapshot, sort_keys=True).encode("utf-8")
        # fsync=False: status is advisory (a monitor's view), and an
        # fsync per cadence tick would tax the campaign it watches; the
        # rename still guarantees readers never see a torn file.
        atomic_write_bytes(self.path, blob, fsync=False)
        self.writes += 1
        return True


# ----------------------------------------------------------------------
# Reader / terminal renderer
# ----------------------------------------------------------------------
def read_status(path: str, retries: int = 3,
                retry_delay: float = 0.02) -> Optional[dict]:
    """Load one status file; None when absent or unreadable.

    A JSON parse failure on an *existing* file is treated as a torn
    read from a concurrent writer — the engine publishes via atomic
    rename, but network and overlay filesystems do not all honor
    rename atomicity for readers — and retried a bounded number of
    times before giving up.  Every reader (``monitor``, ``report``,
    the serve daemon's status endpoint) shares this policy, so a torn
    read costs one stale frame, never a traceback.
    """
    for attempt in range(retries + 1):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except OSError:
            return None  # absent (campaign not started) — no retry
        except ValueError:
            if attempt >= retries:
                return None
            time.sleep(retry_delay)
    return None


def status_files(trace_dir: str) -> List[str]:
    try:
        names = sorted(n for n in os.listdir(trace_dir)
                       if _STATUS_RE.match(n))
    except OSError:
        return []
    return [os.path.join(trace_dir, n) for n in names]


def render_status(snapshots: List[dict]) -> str:
    """One terminal frame over every live status file."""
    from repro.analysis.figures import sparkline

    if not snapshots:
        return "no status files yet (campaign not started, or no " \
               "--trace-dir configured)"
    lines: List[str] = []
    header = snapshots[0]
    title = f"{header.get('workload') or '?'} / {header.get('config') or '?'}"
    lines.append(f"== campaign monitor — {title} ==")
    peak = max((s.get("pm_paths", 0) for s in snapshots), default=1)
    for snap in snapshots:
        member = snap.get("member", -1)
        who = "solo" if member < 0 else f"m{member}"
        curve = [int(p) for _, p in snap.get("curve") or []]
        age = time.time() - snap.get("written_at", time.time())
        status = snap.get("stop_reason") or "running"
        lines.append(
            f"{who:6s} vt={snap.get('vtime', 0.0):8.3f} "
            f"execs={snap.get('executions', 0):7d} "
            f"pm={snap.get('pm_paths', 0):5d} "
            f"edges={snap.get('branch_edges', 0):5d} "
            f"q={snap.get('queue_size', 0):4d} "
            f"faults={snap.get('harness_faults', 0):3d} "
            f"[{status}] ({age:.0f}s ago)")
        lines.append(f"{'':6s} {sparkline(curve, peak)}")
    return "\n".join(lines)


def wait_for_campaign(trace_dir: str, wait: float, out=None,
                      poll: float = 0.1, what: str = "status") -> bool:
    """Bounded retry-with-backoff until the campaign produces data.

    A monitor or report started *before* (or racing) the campaign sees
    a missing directory, no status files, or a half-written shard; this
    polls — backing off from ``poll`` up to 2 s — until either a
    readable status snapshot or a trace shard appears, printing one
    clear "waiting for campaign" line instead of failing.  Returns True
    when data showed up within ``wait`` seconds.
    """
    import sys

    from repro.observe.sink import shard_files

    out = out or sys.stdout

    def has_data() -> bool:
        if any(read_status(p) is not None for p in status_files(trace_dir)):
            return True
        return bool(shard_files(trace_dir))

    if has_data():
        return True
    if wait <= 0:
        return False
    deadline = time.monotonic() + wait
    print(f"waiting for campaign: no {what} under {trace_dir} yet "
          f"(retrying for up to {wait:.0f}s)", file=out, flush=True)
    delay = max(poll, 0.01)
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            print(f"waiting for campaign timed out after {wait:.0f}s: "
                  f"still no {what} under {trace_dir}", file=out,
                  flush=True)
            return False
        time.sleep(min(delay, remaining))
        delay = min(delay * 1.5, 2.0)
        if has_data():
            return True


def monitor_loop(trace_dir: str, interval: float = 1.0,
                 once: bool = False, max_frames: Optional[int] = None,
                 out=None, wait: float = 0.0) -> int:
    """Tail the status files; returns a shell exit status.

    ``once`` renders a single frame (CI smoke / scripting);
    ``max_frames`` bounds the loop for tests.  ``wait`` tolerates a
    campaign that has not started yet: up to that many wall seconds of
    bounded-backoff retry before the first frame, with a "waiting for
    campaign" message instead of an immediate failure.
    """
    import sys

    out = out or sys.stdout
    if wait > 0:
        wait_for_campaign(trace_dir, wait, out=out)
    frames = 0
    while True:
        snapshots = [s for s in (read_status(p)
                                 for p in status_files(trace_dir))
                     if s is not None]
        print(render_status(snapshots), file=out, flush=True)
        frames += 1
        if once or (max_frames is not None and frames >= max_frames):
            return 0 if snapshots else 1
        if snapshots and all(s.get("stop_reason") for s in snapshots):
            print("all campaigns stopped; exiting monitor", file=out)
            return 0
        time.sleep(interval)
