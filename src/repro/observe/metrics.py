"""The campaign metrics registry: counters, gauges, histograms.

Prometheus-shaped but process-local: each metric is registered once by
name, updated from the hot loop with plain attribute arithmetic, and
snapshotted into :class:`~repro.fuzz.stats.FuzzStats` so it survives
checkpoint/resume and flows through the fleet merge.

Two determinism classes, enforced at registration:

* **deterministic** metrics (the default) are pure functions of the
  seeded campaign — executions, per-stage *virtual* time,
  mutation-operator effectiveness, queue depth, coverage-map density.
  They land in ``FuzzStats.metrics`` and are part of the
  ``comparable()`` equivalence contracts (fork/none, trace on/off,
  kill/restart).
* **host-dependent** metrics — anything touching the wall clock — land
  in ``FuzzStats.metrics_host``, which ``comparable()`` excludes.

Snapshots are plain nested dicts (JSON-friendly, so ``status.json`` can
carry them verbatim) and merge deterministically across fleet members:
counters and histograms sum, gauges sum (a fleet gauge reads as the
fleet total).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Default histogram bucket upper bounds (seconds of virtual time —
#: execution costs cluster in the 1e-3..1e-1 band of the cost model).
DEFAULT_BUCKETS = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0)


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "host_dependent", "value")

    def __init__(self, name: str, host_dependent: bool = False) -> None:
        self.name = name
        self.host_dependent = host_dependent
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self):
        return self.value

    def restore(self, snap) -> None:
        self.value = snap

    def merge(self, snap) -> None:
        self.value += snap


class Gauge:
    """Last-set value."""

    __slots__ = ("name", "host_dependent", "value")

    def __init__(self, name: str, host_dependent: bool = False) -> None:
        self.name = name
        self.host_dependent = host_dependent
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def snapshot(self):
        return self.value

    def restore(self, snap) -> None:
        self.value = snap

    def merge(self, snap) -> None:
        self.value += snap


class Histogram:
    """Fixed-bucket histogram with count and sum."""

    __slots__ = ("name", "host_dependent", "buckets", "counts", "count",
                 "sum")

    def __init__(self, name: str, host_dependent: bool = False,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.host_dependent = host_dependent
        self.buckets = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self):
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "count": self.count, "sum": self.sum}

    def restore(self, snap) -> None:
        self.buckets = tuple(snap["buckets"])
        self.counts = list(snap["counts"])
        self.count = snap["count"]
        self.sum = snap["sum"]

    def merge(self, snap) -> None:
        if tuple(snap["buckets"]) != self.buckets:
            raise ValueError(f"histogram {self.name!r}: bucket mismatch")
        self.counts = [a + b for a, b in zip(self.counts, snap["counts"])]
        self.count += snap["count"]
        self.sum += snap["sum"]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Register-once metric store with deterministic snapshots."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _register(self, kind: str, name: str, host_dependent: bool,
                  **kwargs):
        existing = self._metrics.get(name)
        cls = _KINDS[kind]
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__.lower()}, not {kind}")
            if existing.host_dependent != host_dependent:
                raise ValueError(
                    f"metric {name!r} already registered with "
                    f"host_dependent={existing.host_dependent}")
            return existing
        metric = cls(name, host_dependent=host_dependent, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, host_dependent: bool = False) -> Counter:
        return self._register("counter", name, host_dependent)

    def gauge(self, name: str, host_dependent: bool = False) -> Gauge:
        return self._register("gauge", name, host_dependent)

    def histogram(self, name: str, host_dependent: bool = False,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register("histogram", name, host_dependent,
                              buckets=buckets)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # ------------------------------------------------------------------
    # Snapshot / restore / merge
    # ------------------------------------------------------------------
    def snapshot(self, host_dependent: bool = False) -> dict:
        """Key-sorted snapshot of one determinism class."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
            if metric.host_dependent == host_dependent
        }

    def restore(self, deterministic: Optional[dict],
                host: Optional[dict] = None) -> None:
        """Reload registered metrics from checkpoint snapshots.

        Snapshot keys with no registered metric are ignored (an old
        checkpoint may carry metrics this build no longer registers).
        """
        for snap in (deterministic or {}), (host or {}):
            for name, value in snap.items():
                metric = self._metrics.get(name)
                if metric is not None:
                    metric.restore(value)


def merge_metric_snapshots(snapshots: Sequence[dict]) -> dict:
    """Fold per-member metric snapshots into one fleet snapshot.

    Counters/gauges sum; histograms sum element-wise.  Purely a function
    of the inputs in the given order (the fleet merge passes members
    sorted by index), so the result is deterministic.
    """
    merged: dict = {}
    for snap in snapshots:
        for name, value in snap.items():
            if name not in merged:
                merged[name] = (dict(value) if isinstance(value, dict)
                                else value)
            elif isinstance(value, dict):
                base = merged[name]
                if tuple(base["buckets"]) != tuple(value["buckets"]):
                    raise ValueError(f"histogram {name!r}: bucket mismatch")
                base["counts"] = [a + b for a, b in zip(base["counts"],
                                                        value["counts"])]
                base["count"] += value["count"]
                base["sum"] += value["sum"]
            else:
                merged[name] += value
    return {name: merged[name] for name in sorted(merged)}
