"""The on-disk corpus database: tiers, compactor, listener, lock.

Layout under one database root (one database per workload)::

    <root>/DBMETA.json        format marker (version-checked on open)
    <root>/hot/<key>.entry    recently published entries
    <root>/cold/<key>.entry   compacted older entries
    <root>/journal/*.intent   write-ahead intents (see journal.py)
    <root>/quarantine/        damaged entries claimed by the scrubber
    <root>/MAINTENANCE.lock   held while a repair pass owns the store

Entries are content-addressed: the key is the SHA-256 of the framed
(test input, serialized PM image) pair, so the same discovery published
by two campaigns deduplicates to one file, and a misfiled entry is
detectable by re-hashing.  The entry container itself reuses the fleet
syncer's checksummed atomic format (:data:`CORPUS_ENTRY_MAGIC`), which
is what lets :class:`~repro.core.storage.CorpusScrubber` heal both
stores with the same code.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from typing import Dict, List, Optional

from repro._util import atomic_write_bytes, move_durable, \
    pack_checksummed, unpack_checksummed
from repro._vfs import current_vfs
from repro.core.storage import CORPUS_ENTRY_MAGIC, CORPUS_ENTRY_SUFFIX
from repro.errors import CorpusCorruptionError, CorpusDBError

#: On-disk format marker, bumped on incompatible layout changes.
DB_FORMAT_VERSION = 1

DB_META_NAME = "DBMETA.json"
DB_LOCK_NAME = "MAINTENANCE.lock"

#: A maintenance lock older than this is presumed abandoned (the repair
#: process died) and no longer blocks campaigns.
DEFAULT_LOCK_TTL_S = 900.0

#: Entries kept in the hot tier before the compactor moves the excess.
DEFAULT_HOT_LIMIT = 256


class CorpusDBPaths:
    """Filesystem layout of one corpus database."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.hot = os.path.join(root, "hot")
        self.cold = os.path.join(root, "cold")
        self.journal = os.path.join(root, "journal")
        self.quarantine = os.path.join(root, "quarantine")
        self.meta = os.path.join(root, DB_META_NAME)
        self.lock = os.path.join(root, DB_LOCK_NAME)

    def tier_dirs(self):
        return (self.hot, self.cold)


def entry_key(data: bytes, image_bytes: bytes) -> str:
    """Content address of one (input, image) discovery.

    Length-framed so ``(b"ab", b"c")`` and ``(b"a", b"bc")`` cannot
    collide.
    """
    h = hashlib.sha256()
    h.update(len(data).to_bytes(8, "little"))
    h.update(data)
    h.update(image_bytes)
    return h.hexdigest()


class CorpusDatabase:
    """One open corpus database.

    All I/O faults are drawn from the injector's *host* stream
    (:meth:`~repro.resilience.faults.EnvFaultInjector.check_host`):
    how often a campaign touches the shared database is a hosting
    choice, so the draws must never perturb the campaign-class fault
    stream.
    """

    def __init__(self, paths: CorpusDBPaths, env_faults=None) -> None:
        from repro.corpusdb.journal import IntentJournal

        self.paths = paths
        self.env_faults = env_faults
        self.journal = IntentJournal(paths.journal)

    # ------------------------------------------------------------------
    # Open / create
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, root: str, create: bool = True, env_faults=None,
             lock_ttl: float = DEFAULT_LOCK_TTL_S,
             ignore_lock: bool = False) -> "CorpusDatabase":
        """Open (and optionally create) the database at ``root``.

        Creation makes only the *leaf* directory: a database whose
        parent directory is gone is treated as *missing*, not silently
        recreated somewhere nothing else will ever look.

        Raises :class:`CorpusDBError` with ``reason`` "missing",
        "locked", or "format" — the degradation ladder's typed rungs.
        """
        paths = CorpusDBPaths(root)
        if not os.path.isdir(root):
            if not create:
                raise CorpusDBError(
                    f"corpus database missing at {root}", reason="missing")
            try:
                os.mkdir(root)
            except OSError as exc:
                raise CorpusDBError(
                    f"cannot create corpus database at {root}: {exc}",
                    reason="missing")
        if not ignore_lock and os.path.exists(paths.lock):
            try:
                age = time.time() - os.path.getmtime(paths.lock)
            except OSError:
                age = lock_ttl  # vanished between exists() and stat
            if age < lock_ttl:
                raise CorpusDBError(
                    f"corpus database at {root} is locked for maintenance",
                    reason="locked")
        if os.path.exists(paths.meta):
            try:
                with open(paths.meta, "r", encoding="utf-8") as fh:
                    meta = json.load(fh)
                version = int(meta["version"])
            except (OSError, ValueError, KeyError, TypeError) as exc:
                raise CorpusDBError(
                    f"unreadable corpus database metadata at {paths.meta}: "
                    f"{exc}", reason="format")
            if version != DB_FORMAT_VERSION:
                raise CorpusDBError(
                    f"corpus database format v{version} at {root}; this "
                    f"build speaks v{DB_FORMAT_VERSION}", reason="format")
        else:
            atomic_write_bytes(paths.meta, json.dumps({
                "format": "repro-corpusdb",
                "version": DB_FORMAT_VERSION,
                "entry_magic": CORPUS_ENTRY_MAGIC.decode("ascii").strip(),
            }, sort_keys=True).encode("ascii") + b"\n", fsync=False)
        for sub in (paths.hot, paths.cold, paths.journal, paths.quarantine):
            os.makedirs(sub, exist_ok=True)
        return cls(paths, env_faults=env_faults)

    # ------------------------------------------------------------------
    # Maintenance lock
    # ------------------------------------------------------------------
    def lock_maintenance(self) -> None:
        atomic_write_bytes(
            self.paths.lock,
            f"pid={os.getpid()} at={time.time():.0f}\n".encode("ascii"),
            fsync=False)

    def unlock_maintenance(self) -> None:
        try:
            os.remove(self.paths.lock)
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # Entry addressing
    # ------------------------------------------------------------------
    def hot_path(self, key: str) -> str:
        return os.path.join(self.paths.hot, key + CORPUS_ENTRY_SUFFIX)

    def cold_path(self, key: str) -> str:
        return os.path.join(self.paths.cold, key + CORPUS_ENTRY_SUFFIX)

    def find(self, key: str) -> Optional[str]:
        """Path of an entry in whichever tier holds it, else None."""
        for path in (self.hot_path(key), self.cold_path(key)):
            if os.path.exists(path):
                return path
        return None

    def _check(self, site: str) -> None:
        if self.env_faults is not None:
            self.env_faults.check_host(site)

    # ------------------------------------------------------------------
    # Core operations (each journaled; each a single atomic FS op)
    # ------------------------------------------------------------------
    def publish(self, payload: Dict) -> bool:
        """Durably add one entry; False if the key already exists."""
        key = payload["key"]
        self._check("corpusdb-publish")
        self._check("disk-full")
        if self.find(key) is not None:
            return False
        self._check("corpusdb-journal")
        intent = self.journal.begin("publish", key)
        blob = pack_checksummed(CORPUS_ENTRY_MAGIC,
                                pickle.dumps(payload, protocol=4))
        atomic_write_bytes(self.hot_path(key), blob)
        self.journal.commit(intent)
        return True

    def get(self, key: str) -> Dict:
        """Load one entry's payload.

        Raises :class:`CorpusCorruptionError` on a damaged entry (the
        caller quarantines it) and :class:`CorpusDBError` when the key
        is absent from both tiers.
        """
        self._check("corpusdb-read")
        path = self.find(key)
        if path is None:
            raise CorpusDBError(f"no corpus entry {key}", reason="missing")
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise CorpusCorruptionError(f"unreadable entry {key}: {exc}",
                                        entry=key)
        try:
            blob = unpack_checksummed(CORPUS_ENTRY_MAGIC, data,
                                      what=os.path.basename(path))
            payload = pickle.loads(blob)
        except (ValueError, pickle.UnpicklingError, EOFError) as exc:
            raise CorpusCorruptionError(f"damaged entry {key}: {exc}",
                                        entry=key)
        return payload

    def retire(self, key: str) -> bool:
        """Journaled removal from both tiers; True if anything existed."""
        self._check("corpusdb-journal")
        intent = self.journal.begin("retire", key)
        removed = False
        vfs = current_vfs()
        for path in (self.hot_path(key), self.cold_path(key)):
            try:
                vfs.unlink(path)
                removed = True
            except FileNotFoundError:
                pass
        self.journal.commit(intent)
        return removed

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def _tier_keys(self, directory: str) -> List[str]:
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        return [n[:-len(CORPUS_ENTRY_SUFFIX)] for n in names
                if n.endswith(CORPUS_ENTRY_SUFFIX)]

    def keys(self) -> List[str]:
        """Sorted union of both tiers' entry keys."""
        self._check("corpusdb-read")
        return sorted(set(self._tier_keys(self.paths.hot))
                      | set(self._tier_keys(self.paths.cold)))

    def info(self) -> Dict:
        """Counts and sizes for ``corpusdb info`` and the bench."""
        hot = self._tier_keys(self.paths.hot)
        cold = self._tier_keys(self.paths.cold)
        total_bytes = 0
        for directory in self.paths.tier_dirs():
            try:
                for name in os.listdir(directory):
                    try:
                        total_bytes += os.path.getsize(
                            os.path.join(directory, name))
                    except OSError:
                        pass
            except OSError:
                pass
        try:
            quarantined = len([n for n in os.listdir(self.paths.quarantine)
                               if n.endswith(CORPUS_ENTRY_SUFFIX)])
        except OSError:
            quarantined = 0
        return {
            "root": self.paths.root,
            "hot": len(hot),
            "cold": len(cold),
            "entries": len(set(hot) | set(cold)),
            "bytes": total_bytes,
            "journal_pending": len(self.journal.pending()),
            "quarantined": quarantined,
        }

    # ------------------------------------------------------------------
    # Compaction (kill-safe at any instruction)
    # ------------------------------------------------------------------
    def compact(self, hot_limit: int = DEFAULT_HOT_LIMIT,
                max_moves: Optional[int] = None) -> int:
        """Move the oldest hot entries cold until ``hot_limit`` remain.

        Each move is journal intent → crash-safe tier move
        (:func:`~repro._util.move_durable`: link into the cold tier,
        fsync it, unlink the hot name) → intent commit, so a SIGKILL
        between any two instructions leaves either a completed move, a
        benign both-tiers duplicate the journal replay collapses, or an
        intent that :meth:`replay_journal` finishes.  A bare
        cross-directory ``os.replace`` here would let a crash persist
        the hot-side removal without the cold-side insertion and lose
        the entry — the exact ordering bug the durability auditor
        (:mod:`repro.audit`) enumerates.  The move is also the *claim*:
        of two racing compactors, exactly one performs it and the other
        observes ``FileNotFoundError``.
        """
        try:
            names = [n for n in os.listdir(self.paths.hot)
                     if n.endswith(CORPUS_ENTRY_SUFFIX)]
        except OSError:
            return 0
        excess = len(names) - max(0, hot_limit)
        if excess <= 0:
            return 0
        if max_moves is not None:
            excess = min(excess, max_moves)

        def age(name: str):
            try:
                return (os.path.getmtime(os.path.join(self.paths.hot, name)),
                        name)
            except OSError:
                return (float("inf"), name)

        moved = 0
        for name in sorted(names, key=age)[:excess]:
            key = name[:-len(CORPUS_ENTRY_SUFFIX)]
            self._check("corpusdb-compact")
            intent = self.journal.begin("compact", key)
            try:
                move_durable(self.hot_path(key), self.cold_path(key))
                moved += 1
            except FileNotFoundError:
                pass  # a racing compactor (or replay) claimed the move
            self.journal.commit(intent)
        return moved

    def replay_journal(self):
        """Heal interrupted operations; see :meth:`IntentJournal.replay`."""
        return self.journal.replay(self)


class CorpusListener:
    """Poll-based directory watcher: which keys appeared since last poll?

    The pub/sub half of the database: a publisher's atomic rename *is*
    the notification, and subscribers poll the tier listings — no
    daemon, no IPC, nothing that can wedge a campaign.  The seen-set is
    checkpointable so a resumed campaign does not re-import history.
    """

    def __init__(self, db: CorpusDatabase) -> None:
        self.db = db
        self._seen = set()

    def prime(self, keys) -> None:
        """Mark ``keys`` as already observed (warm-start did them)."""
        self._seen.update(keys)

    def poll(self) -> List[str]:
        """Sorted keys published since the previous poll."""
        fresh = [k for k in self.db.keys() if k not in self._seen]
        self._seen.update(fresh)
        return fresh

    def getstate(self):
        return set(self._seen)

    def setstate(self, state) -> None:
        self._seen = set(state)
