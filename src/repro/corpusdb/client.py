"""Engine-side corpus-database client: warm-start, pub/sub, degrade.

The client is to the corpus database what
:class:`~repro.orchestrate.sync.CorpusSyncer` is to the fleet's shared
corpus — the engine calls the same three hooks (``record_saved`` after
an interesting save, a periodic sync, a final flush) — but where the
syncer's peers live inside one supervised run, the database is shared
by *strangers*: other campaigns, possibly dead ones, possibly a repair
pass.  So every touch is wrapped in bounded retry-with-backoff, and a
persistently unusable database triggers the degradation ladder instead
of an error:

1. **healthy** — publish, poll, import;
2. **retrying** — an op failed, back off (wall-clock) and try again,
   up to ``max_retries`` attempts per op;
3. **skipping** — the op is abandoned for this sync round, the entry
   stays buffered, a failure strike is recorded;
4. **degraded** — ``degrade_threshold`` consecutive round failures (or
   an unopenable database: missing, locked, wrong format) permanently
   detaches the client; a ``degraded`` trace event is emitted, and the
   campaign finishes standalone with exit code 0.

Determinism: database sync happens on a fixed virtual-time cadence and
charges *zero* virtual cost (it models background I/O off the critical
path); imports are coverage-gated in sorted key order and all fault
draws use the injector's host stream — so two campaigns with the same
seed warm-started from byte-identical database contents produce
bit-identical :meth:`~repro.fuzz.stats.FuzzStats.comparable` stats.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, List, Optional

from repro.errors import (CorpusCorruptionError, CorpusDBError,
                          HarnessFaultError, ReproError)

#: Publish buffer bound: oldest entries are dropped first if the
#: database stays unreachable long enough to pile this many up.
MAX_PENDING = 512


class CorpusDBClient:
    """One campaign's connection to a shared corpus database.

    Args:
        path: database root directory (one per workload).
        every: virtual seconds between sync rounds (publish + poll).
        max_retries: per-operation I/O retry bound.
        backoff_s: initial wall-clock backoff, doubled per retry.
        degrade_threshold: consecutive failed rounds before the client
            permanently detaches.
    """

    def __init__(self, path: str, every: float = 0.5,
                 max_retries: int = 3, backoff_s: float = 0.002,
                 degrade_threshold: int = 3) -> None:
        self.path = path
        self.every = every
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.degrade_threshold = degrade_threshold

        self.engine = None
        self.db = None
        self.listener = None
        self.degraded = False
        self.degrade_reason = ""
        self._opened = False
        self._warm_started = False
        self._failed_rounds = 0
        self._pending: List[Dict] = []
        self._next_sync = 0.0

    # ------------------------------------------------------------------
    def attach(self, engine) -> None:
        """Bind to the engine (mirrors ``CorpusSyncer.attach``)."""
        self.engine = engine

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------
    def _degrade(self, reason: str, detail: str = "") -> None:
        if self.degraded:
            return
        self.degraded = True
        self.degrade_reason = reason
        self.db = None
        self.listener = None
        engine = self.engine
        if engine is None:
            return
        engine.stats.corpusdb_degraded = 1
        engine.metrics.counter("corpusdb/degraded").inc()
        engine.trace.emit("degraded", engine.vclock, component="corpusdb",
                          reason=reason, detail=detail[:200])

    def _io(self, op: str, fn):
        """Run one DB operation with bounded retry; None on give-up.

        Returns ``(ok, value)`` — callers must check ``ok`` because a
        legitimate result can be falsy.  Backoff sleeps are wall-clock
        (the campaign's virtual clock is never charged for contended
        shared storage) and the retry count is a host-dependent stat.
        """
        engine = self.engine
        delay = self.backoff_s
        last: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            try:
                return True, fn()
            except (CorpusCorruptionError, CorpusDBError):
                raise  # data damage / unusable DB: not retryable here
            except (ReproError, OSError) as exc:
                last = exc
                if attempt < self.max_retries:
                    if engine is not None:
                        engine.stats.corpusdb_retries += 1
                    time.sleep(delay)
                    delay *= 2
        self._failed_rounds += 1
        if self._failed_rounds >= self.degrade_threshold:
            self._degrade("faulting",
                          f"{op} kept failing after retries: {last}")
        return False, None

    # ------------------------------------------------------------------
    # Boot / warm start
    # ------------------------------------------------------------------
    def boot(self, engine) -> None:
        """Open the database and warm-start the queue from it.

        Called from ``FuzzEngine.setup`` and lazily after a checkpoint
        resume.  Never raises: an unusable database degrades.
        """
        self.attach(engine)
        if self._opened or self.degraded:
            return
        self._opened = True
        from repro.corpusdb.db import CorpusDatabase, CorpusListener
        try:
            ok, db = self._io("open", lambda: CorpusDatabase.open(
                self.path, env_faults=engine.env_faults))
            if not ok:
                return
        except CorpusDBError as exc:
            self._degrade(exc.reason, str(exc))
            return
        self.db = db
        self.listener = CorpusListener(db)
        restored = getattr(self, "_restored_seen", None)
        if restored is not None:
            self.listener.setstate(restored)
            self._restored_seen = None
        self._io("replay-journal", db.replay_journal)
        if self.db is None:  # replay failures may have degraded us
            return
        if self._warm_started:
            # Resumed from a checkpoint: history up to the snapshot is
            # already in the queue and in the restored seen-set; the
            # next poll picks up anything newer.
            return
        self._warm_started = True
        imported = self._import_new(warm=True)
        engine.stats.corpusdb_warm_start = imported
        engine.trace.emit("corpusdb", engine.vclock, action="warm_start",
                          imported=imported)

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def record_saved(self, entry, result) -> None:
        """Buffer one coverage-interesting save for the next publish.

        Image bytes are resolved now, fault-free, exactly like the
        fleet syncer — a republish after resume serializes the same
        entry, and the content address is stable.
        """
        if self.degraded or self.engine is None:
            return
        from repro.corpusdb.db import entry_key
        engine = self.engine
        image_id = entry.image_id or engine._seed_image_id
        image_bytes = engine.storage.store.raw_serialized(image_id)
        data = bytes(entry.data)
        self._pending.append({
            "key": entry_key(data, image_bytes),
            "data": data,
            "image_id": image_id,
            "image": image_bytes,
            "branch": list(result.branch_sparse),
            "pm": list(result.pm_sparse),
            "workload": engine.stats.workload_name,
            "config": engine.stats.config_name,
        })
        if len(self._pending) > MAX_PENDING:
            del self._pending[:len(self._pending) - MAX_PENDING]

    def maybe_sync(self, engine, force: bool = False) -> None:
        """One sync round (publish + poll-import) if the cadence is due."""
        if self.degraded:
            return
        if not self._opened:
            self.boot(engine)
            if self.degraded:
                return
        if not force and engine.vclock < self._next_sync:
            return
        self._next_sync = engine.vclock + self.every
        if self.db is None:
            return
        with engine.profiler.stage("corpusdb"):
            published = self._flush()
            imported = 0
            if not self.degraded:
                imported = self._import_new(warm=False)
        if published or imported:
            engine.trace.emit("corpusdb", engine.vclock, action="sync",
                              published=published, imported=imported)

    def final_flush(self, engine) -> None:
        """Publish whatever is still buffered at campaign end."""
        if self.degraded or self.db is None:
            return
        with engine.profiler.stage("corpusdb"):
            published = self._flush()
        if published:
            engine.trace.emit("corpusdb", engine.vclock, action="flush",
                              published=published)

    # ------------------------------------------------------------------
    # Publish / import
    # ------------------------------------------------------------------
    def _flush(self) -> int:
        engine = self.engine
        published = 0
        still_pending: List[Dict] = []
        for record in self._pending:
            if self.degraded:
                still_pending.append(record)
                continue
            try:
                ok, is_new = self._io(
                    "publish", lambda r=record: self.db.publish(r))
            except (CorpusDBError, CorpusCorruptionError):
                still_pending.append(record)
                continue
            if not ok:
                still_pending.append(record)
                continue
            self._failed_rounds = 0
            if self.listener is not None:
                self.listener.prime([record["key"]])
            if is_new:
                published += 1
                engine.stats.corpusdb_published += 1
                engine.metrics.counter("corpusdb/published").inc()
        self._pending = still_pending
        return published

    def _import_new(self, warm: bool) -> int:
        """Coverage-gated import of every not-yet-seen entry."""
        engine = self.engine
        stats = engine.stats
        try:
            ok, fresh = self._io("poll", self.listener.poll)
        except (CorpusDBError, CorpusCorruptionError):
            return 0
        if not ok or not fresh:
            return 0
        self._failed_rounds = 0
        imported = 0
        for key in fresh:
            payload = self._load_entry(key)
            if payload is None:
                continue
            if self._import_payload(payload):
                imported += 1
                stats.corpusdb_imported += 1
                engine.metrics.counter("corpusdb/imported").inc()
            else:
                stats.corpusdb_import_rejected += 1
        return imported

    def _load_entry(self, key: str) -> Optional[Dict]:
        engine = self.engine
        try:
            ok, payload = self._io("read", lambda: self.db.get(key))
        except CorpusCorruptionError as exc:
            # Self-healing import, same as the fleet path: quarantine by
            # claim-by-rename, count, never retry this entry.
            if self._quarantine(key, str(exc)):
                engine.stats.corpusdb_quarantined += 1
            return None
        except CorpusDBError:
            return None  # raced a retire/compact; gone is fine
        if not ok:
            return None
        if not isinstance(payload, dict) or "data" not in payload:
            if self._quarantine(key, "malformed payload"):
                engine.stats.corpusdb_quarantined += 1
            return None
        return payload

    def _quarantine(self, key: str, reason: str) -> bool:
        from repro.core.storage import CorpusScrubber
        path = self.db.find(key) if self.db is not None else None
        if path is None:
            return False
        import os
        scrubber = CorpusScrubber(os.path.dirname(path),
                                  self.db.paths.quarantine)
        return scrubber.quarantine(path, reason)

    def _import_payload(self, payload: Dict) -> bool:
        """Gate + merge one entry (the fleet syncer's import contract)."""
        from repro.pmem.image import PMImage
        engine = self.engine
        branch = payload.get("branch") or []
        pm = payload.get("pm") or []
        b_new_slot, b_new_bucket, _ = engine.branch_cov.classify(branch)
        p_new_slot, p_new_bucket, _ = engine.pm_cov.classify(pm)
        if not (b_new_slot or b_new_bucket or p_new_slot or p_new_bucket):
            return False
        image_id = payload.get("image_id") or ""
        image_bytes = payload.get("image")
        if image_bytes:
            try:
                engine.storage.store.put(PMImage.from_bytes(image_bytes))
            except HarnessFaultError:
                # Injected storage fault on the import path: this entry
                # is lost to the campaign, the draw already happened.
                return False
            except Exception as exc:
                if self._quarantine(payload.get("key", ""),
                                    f"bad image: {exc}"):
                    engine.stats.corpusdb_quarantined += 1
                return False
        engine.branch_cov.update(branch)
        engine.pm_cov.update(pm)
        engine.queue.add(payload["data"], image_id=image_id, favored=1,
                         created_at=engine.vclock)
        return True

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def getstate(self):
        return {
            "warm_started": self._warm_started,
            "degraded": self.degraded,
            "degrade_reason": self.degrade_reason,
            "failed_rounds": self._failed_rounds,
            "next_sync": self._next_sync,
            "pending": [dict(r) for r in self._pending],
            "seen": (self.listener.getstate()
                     if self.listener is not None else set()),
        }

    def setstate(self, state) -> None:
        self._warm_started = bool(state.get("warm_started"))
        self.degraded = bool(state.get("degraded"))
        self.degrade_reason = state.get("degrade_reason", "")
        self._failed_rounds = int(state.get("failed_rounds", 0))
        self._next_sync = float(state.get("next_sync", 0.0))
        self._pending = [dict(r) for r in state.get("pending", [])]
        self._restored_seen = set(state.get("seen", set()))
        # The database is reopened lazily on the next sync; the restored
        # seen-set is primed into the fresh listener then.
        self._opened = False
        self.db = None
        self.listener = None
