"""Write-ahead intent journal for the corpus database.

Every database mutation follows the same discipline:

1. write an *intent* record (atomic: write-tmp + fsync + rename);
2. perform the mutation, itself built from individually-safe atomic
   filesystem operations (``atomic_write_bytes`` for a publish,
   ``move_durable`` for a compaction move, ``unlink`` for a retire);
3. delete the intent.

A kill between any two steps leaves the store in a state
:meth:`IntentJournal.replay` can heal without knowing *where* the kill
landed: the intent names the operation and the key, and every
resolution is idempotent — replaying twice (or concurrently from two
campaigns) converges to the same committed state, because each step is
a rename/remove that exactly one replayer wins and the losers observe
as already done.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._util import atomic_write_bytes, move_durable, \
    pack_checksummed, unpack_checksummed
from repro._vfs import current_vfs

#: Container magic for intent records.
INTENT_MAGIC = b"PMFZCDBJ1\n"

#: Intent file suffix.
INTENT_SUFFIX = ".intent"

#: Operations the journal knows how to replay.
INTENT_OPS = ("publish", "compact", "retire")


@dataclass
class JournalReplayReport:
    """What one replay pass resolved."""

    completed: int = 0  #: interrupted operations finished forward
    rolled_back: int = 0  #: operations that never landed; intent dropped
    dropped_damaged: int = 0  #: unreadable/corrupt intent records removed
    by_op: Dict[str, int] = field(default_factory=dict)  #: op -> intents seen


class IntentJournal:
    """Directory of per-operation intent records.

    Intent files are named ``<op>-<key><suffix>`` — deterministic per
    (operation, entry), so two campaigns journaling the same publish
    write the same record and replay stays idempotent.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    # ------------------------------------------------------------------
    def _path(self, op: str, key: str) -> str:
        return os.path.join(self.directory, f"{op}-{key}{INTENT_SUFFIX}")

    def begin(self, op: str, key: str) -> str:
        """Durably record the intent to perform ``op`` on ``key``."""
        record = json.dumps({"op": op, "key": key},
                            sort_keys=True).encode("ascii")
        path = self._path(op, key)
        atomic_write_bytes(path, pack_checksummed(INTENT_MAGIC, record))
        return path

    def commit(self, path: str) -> None:
        """Drop a completed intent (idempotent)."""
        try:
            current_vfs().unlink(path)
        except FileNotFoundError:
            pass  # a concurrent replayer already committed it

    # ------------------------------------------------------------------
    def pending(self) -> List[Tuple[str, Optional[str], Optional[str]]]:
        """Sorted ``(path, op, key)`` for every pending intent.

        A record that cannot be read or verified yields
        ``(path, None, None)`` — the caller decides its fate (replay
        drops it: intents only *accelerate* recovery, the underlying
        operations are individually atomic, so a lost intent is safe).
        """
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        out: List[Tuple[str, Optional[str], Optional[str]]] = []
        for name in names:
            if not name.endswith(INTENT_SUFFIX):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as fh:
                    blob = unpack_checksummed(INTENT_MAGIC, fh.read(),
                                              what=name)
                record = json.loads(blob.decode("ascii"))
                op, key = record["op"], record["key"]
                if op not in INTENT_OPS or not isinstance(key, str):
                    raise ValueError(f"malformed intent record {record!r}")
            except (OSError, ValueError, KeyError, TypeError):
                out.append((path, None, None))
                continue
            out.append((path, op, key))
        return out

    # ------------------------------------------------------------------
    def replay(self, db) -> JournalReplayReport:
        """Resolve every pending intent against ``db``.

        * ``publish``: the entry write was atomic — if it landed (in
          either tier) the operation completed; otherwise the writer
          died before the rename and there is nothing to redo (an
          orphaned ``.tmp`` is the scrubber's job).
        * ``compact``: finish the hot→cold move if the entry is still
          hot; a kill mid-:func:`~repro._util.move_durable` left it
          cold already (possibly under both names — the leftover hot
          link is removed here).
        * ``retire``: remove the entry from both tiers.
        """
        report = JournalReplayReport()
        vfs = current_vfs()
        for path, op, key in self.pending():
            if op is None or key is None:
                try:
                    vfs.unlink(path)
                except OSError:
                    pass
                report.dropped_damaged += 1
                continue
            report.by_op[op] = report.by_op.get(op, 0) + 1
            if op == "publish":
                if db.find(key) is not None:
                    report.completed += 1
                else:
                    report.rolled_back += 1
            elif op == "compact":
                hot = db.hot_path(key)
                cold = db.cold_path(key)
                if os.path.exists(cold):
                    # The cold name landed; a crash between the durable
                    # move's fsync and its unlink can leave the hot
                    # hardlink behind — collapse the duplicate.
                    try:
                        vfs.unlink(hot)
                        vfs.fsync_dir(os.path.dirname(hot))
                    except OSError:
                        pass
                    report.completed += 1
                else:
                    try:
                        move_durable(hot, cold)
                        report.completed += 1
                    except FileNotFoundError:
                        # Neither tier holds it: the entry was retired
                        # (or quarantined) out from under the move.
                        report.rolled_back += 1
            elif op == "retire":
                removed_any = False
                for target in (db.hot_path(key), db.cold_path(key)):
                    try:
                        vfs.unlink(target)
                        removed_any = True
                    except FileNotFoundError:
                        pass
                report.completed += 1 if removed_any else 0
                report.rolled_back += 0 if removed_any else 1
            self.commit(path)
        return report
