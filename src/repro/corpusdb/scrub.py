"""Full-store scrub / self-repair / verification for the corpus DB.

Builds on :class:`~repro.core.storage.CorpusScrubber` (same container
format, same claim-by-rename quarantine, same ``.tmp`` age gate) and
adds what a *database* needs over a sync directory:

* journal replay first, so interrupted publishes/compactions are
  resolved before any entry is judged;
* **typed** damage reasons — ``wrong-magic`` / ``truncated`` /
  ``bit-flipped`` / ``unreadable`` / ``key-mismatch`` — refined beyond
  the checksum verdict by probing the pickled payload (a torn write
  cuts the pickle short, which ``pickle`` reports as truncation; a
  bit-flip keeps the length and garbles the content);
* an optional deep-verify pass (``corpusdb scrub --verify``) that
  re-reads every surviving entry, re-derives its content address, and
  reports anything still damaged — the "zero undetected corruption"
  gate the nightly soak asserts.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.storage import (CORPUS_ENTRY_MAGIC, CORPUS_ENTRY_SUFFIX,
                                DAMAGE_CHECKSUM, DAMAGE_TRUNCATED,
                                CorpusScrubber, ScrubReport, classify_damage)
from repro.corpusdb.db import CorpusDatabase, entry_key
from repro.corpusdb.journal import JournalReplayReport

#: Refinements produced here on top of the storage-layer labels.
DAMAGE_BIT_FLIPPED = "bit-flipped"
DAMAGE_KEY_MISMATCH = "key-mismatch"


def classify_entry_damage(data: Optional[bytes]) -> Optional[str]:
    """Typed verdict for one corpus entry's bytes (None = healthy).

    Refines the storage layer's ``checksum-mismatch`` by probing the
    pickled payload: a payload cut by a torn write fails to unpickle
    with a truncation error, while a same-length bit-flip either loads
    (content damage) or garbles mid-stream.
    """
    label = classify_damage(CORPUS_ENTRY_MAGIC, data)
    if label != DAMAGE_CHECKSUM:
        return label
    payload = data[len(CORPUS_ENTRY_MAGIC) + 65:]
    try:
        pickle.loads(payload)
    except EOFError:
        return DAMAGE_TRUNCATED
    except pickle.UnpicklingError as exc:
        if "truncated" in str(exc).lower():
            return DAMAGE_TRUNCATED
        return DAMAGE_BIT_FLIPPED
    except Exception:
        return DAMAGE_BIT_FLIPPED
    return DAMAGE_BIT_FLIPPED


@dataclass
class DBScrubReport:
    """What one database scrub (and optional verify) pass did."""

    replay: JournalReplayReport = field(default_factory=JournalReplayReport)
    tiers: Dict[str, ScrubReport] = field(default_factory=dict)
    #: "tier/name" -> typed damage label, across both tiers.
    typed_reasons: Dict[str, str] = field(default_factory=dict)
    verified: int = 0  #: entries that passed the deep-verify pass
    #: "tier/name" -> label for entries still damaged *after* repair —
    #: non-empty means undetected corruption leaked past the scrub.
    residual: Dict[str, str] = field(default_factory=dict)

    @property
    def scanned(self) -> int:
        return sum(r.scanned for r in self.tiers.values())

    @property
    def quarantined(self) -> int:
        return sum(r.quarantined for r in self.tiers.values())

    @property
    def cleaned_tmp(self) -> int:
        return sum(r.cleaned_tmp for r in self.tiers.values())

    @property
    def ok(self) -> bool:
        return not self.residual

    def summary(self) -> str:
        parts = [f"scanned={self.scanned}",
                 f"quarantined={self.quarantined}",
                 f"cleaned-tmp={self.cleaned_tmp}",
                 f"journal-completed={self.replay.completed}",
                 f"journal-rolled-back={self.replay.rolled_back}"]
        if self.verified or self.residual:
            parts.append(f"verified={self.verified}")
            parts.append(f"residual-damage={len(self.residual)}")
        return " ".join(parts)


def _read_or_none(path: str) -> Optional[bytes]:
    try:
        with open(path, "rb") as fh:
            return fh.read()
    except OSError:
        return None


def _scrub_tier(tier_name: str, tier_dir: str, quarantine_dir: str,
                tmp_grace: float,
                typed: Dict[str, str]) -> ScrubReport:
    scrubber = CorpusScrubber(tier_dir, quarantine_dir, tmp_grace=tmp_grace)
    report = ScrubReport()
    try:
        names = sorted(os.listdir(tier_dir))
    except OSError:
        return report
    now = time.time()
    for name in names:
        path = os.path.join(tier_dir, name)
        if name.endswith(".tmp"):
            if scrubber.maybe_clean_tmp(path, now):
                report.cleaned_tmp += 1
            continue
        if not name.endswith(CORPUS_ENTRY_SUFFIX):
            continue
        report.scanned += 1
        label = classify_entry_damage(_read_or_none(path))
        if label is None:
            report.healthy += 1
            continue
        report.reasons[name] = label
        typed[f"{tier_name}/{name}"] = label
        if scrubber.quarantine(path, label):
            report.quarantined += 1
        else:
            report.claimed_elsewhere += 1
    return report


def _deep_verify_entry(name: str, data: Optional[bytes]) -> Optional[str]:
    """Container check plus content-address check; None if clean."""
    label = classify_entry_damage(data)
    if label is not None:
        return label
    blob = data[len(CORPUS_ENTRY_MAGIC) + 65:]
    try:
        payload = pickle.loads(blob)
        key = payload["key"]
        derived = entry_key(bytes(payload["data"]),
                            bytes(payload.get("image") or b""))
    except Exception:
        return DAMAGE_BIT_FLIPPED
    stem = name[:-len(CORPUS_ENTRY_SUFFIX)]
    if key != stem or derived != stem:
        return DAMAGE_KEY_MISMATCH
    return None


def scrub_database(root: str, verify: bool = False,
                   tmp_grace: float = 60.0,
                   take_lock: bool = True) -> Tuple[DBScrubReport,
                                                    CorpusDatabase]:
    """Heal a corpus database; optionally deep-verify every survivor.

    Order matters: the journal is replayed *first* (finishing
    interrupted compaction moves and dropping dead publish intents),
    then each tier is scrubbed with typed quarantine, then — under
    ``verify`` — every surviving entry is re-read, its container
    re-checksummed and its content address re-derived.  Anything the
    verify pass finds is quarantined too and recorded in
    ``report.residual``; a non-empty residual is the "undetected
    corruption" signal the nightly soak gates on.

    The maintenance lock is held for the duration (default) so a
    campaign opening mid-repair degrades instead of importing from a
    store being rearranged under it.
    """
    db = CorpusDatabase.open(root, create=False)
    report = DBScrubReport()
    if take_lock:
        db.lock_maintenance()
    try:
        report.replay = db.replay_journal()
        for tier_name, tier_dir in (("hot", db.paths.hot),
                                    ("cold", db.paths.cold)):
            report.tiers[tier_name] = _scrub_tier(
                tier_name, tier_dir, db.paths.quarantine, tmp_grace,
                report.typed_reasons)
        if verify:
            # Repair round: anything the deep check catches beyond the
            # container checksum (e.g. a misfiled key) is quarantined
            # with its typed reason, same as the scrub round.
            for tier_name, tier_dir in (("hot", db.paths.hot),
                                        ("cold", db.paths.cold)):
                scrubber = CorpusScrubber(tier_dir, db.paths.quarantine,
                                          tmp_grace=tmp_grace)
                try:
                    names = sorted(os.listdir(tier_dir))
                except OSError:
                    continue
                for name in names:
                    if not name.endswith(CORPUS_ENTRY_SUFFIX):
                        continue
                    path = os.path.join(tier_dir, name)
                    label = _deep_verify_entry(name, _read_or_none(path))
                    if label is None:
                        continue
                    report.typed_reasons[f"{tier_name}/{name}"] = label
                    if scrubber.quarantine(path, label):
                        report.tiers[tier_name].quarantined += 1
            # Verification round: after all repair, every entry still in
            # the store must deep-verify clean; anything here leaked.
            for tier_name, tier_dir in (("hot", db.paths.hot),
                                        ("cold", db.paths.cold)):
                try:
                    names = sorted(os.listdir(tier_dir))
                except OSError:
                    continue
                for name in names:
                    if not name.endswith(CORPUS_ENTRY_SUFFIX):
                        continue
                    path = os.path.join(tier_dir, name)
                    label = _deep_verify_entry(name, _read_or_none(path))
                    if label is None:
                        report.verified += 1
                    else:
                        report.residual[f"{tier_name}/{name}"] = label
    finally:
        if take_lock:
            db.unlock_maintenance()
    return report, db
