"""Durable cross-campaign corpus database (ROADMAP item 3).

A persistent, content-addressed store of coverage-interesting test
cases shared by every campaign on the same workload.  Entries reuse the
fleet syncer's checksummed atomic container, live in a tiered hot/cold
layout, and every mutation (publish / retire / compact) is covered by a
write-ahead intent journal so a SIGKILL at any instruction is healed by
idempotent replay on the next open.  See DESIGN.md §11.

Layers:

* :mod:`repro.corpusdb.journal` — the write-ahead intent journal;
* :mod:`repro.corpusdb.db` — :class:`CorpusDatabase` (tiers, compactor,
  maintenance lock) and the poll-based :class:`CorpusListener`;
* :mod:`repro.corpusdb.scrub` — full-store scrub / verify with typed
  damage reasons;
* :mod:`repro.corpusdb.client` — the engine-side
  :class:`CorpusDBClient`: warm-start, mid-flight import, buffered
  publish, bounded retry, graceful degradation.
"""

from repro.corpusdb.client import CorpusDBClient
from repro.corpusdb.db import CorpusDatabase, CorpusDBPaths, CorpusListener
from repro.corpusdb.journal import IntentJournal, JournalReplayReport
from repro.corpusdb.scrub import DBScrubReport, scrub_database

__all__ = [
    "CorpusDBClient",
    "CorpusDBPaths",
    "CorpusDatabase",
    "CorpusListener",
    "DBScrubReport",
    "IntentJournal",
    "JournalReplayReport",
    "scrub_database",
]
