"""Cross-failure checking (XFDetector-like).

XFDetector reasons about "the program execution before and after the
failure": it takes the persistent state a failure left behind, re-runs
the program (recovery included), and checks that the post-failure
execution behaves correctly.

The reproduction does the same with the simulated stack.  For each crash
image of a test case it:

1. reopens the image the way the workload's driver does — which runs
   PMDK transaction recovery plus the workload's own recovery procedure
   (or *skips* it, under paper Bug 6's flag);
2. executes a small probe command sequence (post-failure execution);
3. runs the workload's structural consistency oracle.

A segmentation fault (NULL persistent pointer — paper Bugs 1-5), an
unrecoverable error, or an oracle violation is reported as a
crash-consistency finding attributed to the crash image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import CORRUPTION_ERRORS, ReproError
from repro.pmem.image import PMImage
from repro.workloads.base import Command, RunOutcome, Workload

#: Probe executed after recovery: one lookup, one insert, one lookup —
#: enough post-failure execution to dereference the recovered structure.
DEFAULT_PROBE: Sequence[Command] = (
    Command("g", 1),
    Command("i", 1, 7),
    Command("g", 1),
)


@dataclass
class CrashFinding:
    """One cross-failure finding for a specific crash image."""

    fence_index: Optional[int]
    outcome: RunOutcome
    violations: List[str] = field(default_factory=list)
    error: str = ""

    @property
    def is_bug(self) -> bool:
        """True when the post-failure behaviour is buggy."""
        return (self.outcome in (RunOutcome.SEGFAULT, RunOutcome.ERROR,
                                 RunOutcome.INVALID_IMAGE)
                or bool(self.violations))

    def describe(self) -> str:
        where = (f"crash@fence{self.fence_index}"
                 if self.fence_index is not None else "final image")
        if self.outcome is not RunOutcome.OK:
            return f"{where}: post-failure {self.outcome.value}: {self.error}"
        return f"{where}: " + "; ".join(self.violations)


class XFDetector:
    """Replays recovery + a probe on crash images and checks the oracle.

    Args:
        workload_factory: zero-argument callable returning a *fresh*
            workload instance with the configuration under test (fresh,
            because workloads may carry volatile state between runs).
        probe: post-failure command sequence.
    """

    def __init__(self, workload_factory, probe: Sequence[Command] = DEFAULT_PROBE,
                 injector=None):
        self.workload_factory = workload_factory
        self.probe = list(probe)
        self.injector = injector

    def check_image(self, image: PMImage,
                    fence_index: Optional[int] = None) -> CrashFinding:
        """Run the full post-failure pipeline on one image.

        When the detector was built with a bug injector (the synthetic
        bug evaluation), the post-failure execution runs under it too:
        the injected bug exists in the "binary", so it is present during
        recovery as well.
        """
        from repro.instrument.context import ExecutionContext, push_context

        workload: Workload = self.workload_factory()
        ctx = ExecutionContext(injector=self.injector, collect_trace=False)
        with push_context(ctx):
            result = workload.run(image, self.probe)
        finding = CrashFinding(fence_index=fence_index, outcome=result.outcome,
                               error=result.error)
        if result.outcome is RunOutcome.OK and result.final_image is not None:
            finding.violations = self._check_oracle(workload, result.final_image)
        return finding

    def _check_oracle(self, workload: Workload, image: PMImage) -> List[str]:
        try:
            pool = workload.open_for_inspection(image)
            return workload.check_consistency(pool)
        except (ReproError,) + CORRUPTION_ERRORS as exc:
            return [f"oracle raised: {type(exc).__name__}: {exc}"]

    def check_images(
        self,
        crash_images: Sequence[PMImage],
        fence_indices: Optional[Sequence[Optional[int]]] = None,
    ) -> List[CrashFinding]:
        """Check a batch of crash images; returns only buggy findings."""
        if fence_indices is None:
            fence_indices = [None] * len(crash_images)
        findings = []
        for image, fence in zip(crash_images, fence_indices):
            finding = self.check_image(image, fence_index=fence)
            if finding.is_bug:
                findings.append(finding)
        return findings
