"""Trace-based crash-consistency and performance checking (Pmemcheck-like).

Consumes the PM operation trace of a single execution (the event stream
the persistence domain emitted) and applies four rules:

``NOT_PERSISTED``
    A store was never covered by a flush + fence by the end of the
    execution — the classic missing-writeback bug.

``ORDER_HAZARD``
    A store executed while flushed-but-unfenced lines were outstanding
    from an unrelated site: the flush's intended ordering point is
    missing, so the two writes may persist in either order (the paper's
    "reorder PM writes" / missing-fence bugs).  Deliberately fence-free
    idioms (``*_nodrain`` sites) are exempt.

``NOT_LOGGED``
    A store inside a transaction hit a heap range that was neither
    snapshotted (``TX_ADD``) nor freshly allocated in that transaction —
    unrecoverable if the transaction fails (the missing-backup bugs and
    Example 2 of the paper).

``REDUNDANT_LOG`` / ``REDUNDANT_FLUSH``
    Performance violations: a ``TX_ADD`` whose range was already covered
    (PMDK's range-tree lookup found it — paper Bugs 8-12) or a flush of
    lines that held nothing dirty (paper Bug 7).

Library-internal traffic (undo log maintenance, allocator metadata, the
pool metadata block) is excluded, mirroring how the real Pmemcheck only
reports application-attributable violations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.pmem.persistence import CACHE_LINE, TraceEvent, TraceEventKind
from repro.pmdk.rangetree import RangeTree

#: Sites with these prefixes are library-internal and never reported.
_LIBRARY_PREFIXES = ("heap:", "tx:", "pool:")


class ViolationKind(enum.Enum):
    """Categories of reported violations."""

    NOT_PERSISTED = "not_persisted"
    ORDER_HAZARD = "order_hazard"
    NOT_LOGGED = "not_logged"
    REDUNDANT_LOG = "redundant_log"
    REDUNDANT_FLUSH = "redundant_flush"


#: Which kinds are performance (vs crash-consistency) violations.
PERFORMANCE_KINDS = frozenset(
    {ViolationKind.REDUNDANT_LOG, ViolationKind.REDUNDANT_FLUSH}
)


@dataclass(frozen=True)
class Violation:
    """One reported violation, attributed to a source site."""

    kind: ViolationKind
    site: str
    addr: int
    size: int
    seq: int
    message: str = ""

    @property
    def is_performance(self) -> bool:
        """True for performance violations, False for crash-consistency."""
        return self.kind in PERFORMANCE_KINDS


def _is_library(site: str) -> bool:
    return site.startswith(_LIBRARY_PREFIXES)


class Pmemcheck:
    """Analyzes one execution trace for violations.

    Args:
        heap_base: first heap offset of the pool; events below it target
            pool metadata / the undo log and are library-internal.
    """

    def __init__(self, heap_base: int) -> None:
        self.heap_base = heap_base

    # ------------------------------------------------------------------
    def analyze(self, trace: Iterable[TraceEvent],
                clean_shutdown: bool = True) -> List[Violation]:
        """Run all rules over ``trace`` and return deduplicated violations.

        Violations are deduplicated by (kind, site): the same buggy
        statement executing many times is one finding, as in the real
        tools' per-location reporting.

        Args:
            trace: the PM operation event stream of one execution.
            clean_shutdown: apply the end-of-execution NOT_PERSISTED rule.
                Pass False for traces that end in a simulated crash —
                in-flight dirty lines are expected there, and the crash
                image is judged by the cross-failure checker instead.
        """
        violations: List[Violation] = []
        # Per-line tracking: line -> (state, last store site/seq)
        line_state: Dict[int, str] = {}  # "dirty" | "flushed"
        line_site: Dict[int, Tuple[str, int]] = {}
        flush_site: Dict[int, str] = {}
        # Transaction tracking.
        in_tx = False
        covered = RangeTree()

        def lines_of(addr: int, size: int):
            if size <= 0:
                return range(0)
            return range(addr // CACHE_LINE, (addr + size - 1) // CACHE_LINE + 1)

        for ev in trace:
            if ev.kind is TraceEventKind.STORE:
                # Rule: ORDER_HAZARD — outstanding flushed-unfenced lines
                # from a foreign, fence-expecting site.
                for line, state in list(line_state.items()):
                    if state != "flushed":
                        continue
                    fsite = flush_site.get(line, "")
                    if (_is_library(fsite) or "nodrain" in fsite
                            or fsite == ev.site):
                        continue
                    violations.append(Violation(
                        ViolationKind.ORDER_HAZARD, fsite,
                        line * CACHE_LINE, CACHE_LINE, ev.seq,
                        f"store at {ev.site} while flush from {fsite} "
                        "awaits its fence",
                    ))
                    # Report once per line until the fence arrives.
                    line_state[line] = "flushed-reported"
                for line in lines_of(ev.addr, ev.size):
                    line_state[line] = "dirty"
                    line_site[line] = (ev.site, ev.seq)
                # Rule: NOT_LOGGED.
                if (in_tx and ev.addr >= self.heap_base
                        and not _is_library(ev.site)
                        and not covered.covers(ev.addr, ev.size)):
                    violations.append(Violation(
                        ViolationKind.NOT_LOGGED, ev.site, ev.addr, ev.size,
                        ev.seq,
                        "store inside transaction to an unlogged, "
                        "non-fresh range",
                    ))
            elif ev.kind is TraceEventKind.FLUSH:
                for line in lines_of(ev.addr, ev.size):
                    if line_state.get(line) == "dirty":
                        line_state[line] = "flushed"
                        flush_site[line] = ev.site
            elif ev.kind is TraceEventKind.FENCE:
                for line, state in list(line_state.items()):
                    if state in ("flushed", "flushed-reported"):
                        del line_state[line]
                        line_site.pop(line, None)
                        flush_site.pop(line, None)
            elif ev.kind is TraceEventKind.FLUSH_REDUNDANT:
                if not _is_library(ev.site):
                    violations.append(Violation(
                        ViolationKind.REDUNDANT_FLUSH, ev.site, ev.addr,
                        ev.size, ev.seq,
                        "flush of lines holding no dirty data",
                    ))
            elif ev.kind is TraceEventKind.TX_BEGIN:
                in_tx = True
                covered.clear()
            elif ev.kind in (TraceEventKind.TX_COMMIT, TraceEventKind.TX_ABORT):
                in_tx = False
                covered.clear()
            elif ev.kind is TraceEventKind.TX_ADD:
                covered.add(ev.addr, ev.size)
            elif ev.kind is TraceEventKind.TX_ADD_REDUNDANT:
                covered.add(ev.addr, ev.size)
                if not _is_library(ev.site):
                    violations.append(Violation(
                        ViolationKind.REDUNDANT_LOG, ev.site, ev.addr,
                        ev.size, ev.seq,
                        "TX_ADD of a range already snapshotted or "
                        "freshly allocated",
                    ))
            elif ev.kind is TraceEventKind.ALLOC:
                if in_tx:
                    covered.add(ev.addr, ev.size)

        # Rule: NOT_PERSISTED at end of execution.
        for line, state in (line_state.items() if clean_shutdown else ()):
            if state == "dirty":
                site, seq = line_site.get(line, ("", 0))
                if site and not _is_library(site):
                    violations.append(Violation(
                        ViolationKind.NOT_PERSISTED, site,
                        line * CACHE_LINE, CACHE_LINE, seq,
                        "store never flushed + fenced before shutdown",
                    ))
        return self._dedup(violations)

    @staticmethod
    def _dedup(violations: List[Violation]) -> List[Violation]:
        seen: Set[Tuple[ViolationKind, str]] = set()
        unique: List[Violation] = []
        for v in violations:
            key = (v.kind, v.site)
            if key not in seen:
                seen.add(key)
                unique.append(v)
        return unique
