"""Detection back-ends: the testing tools PMFuzz feeds test cases to.

Two checkers mirror the paper's back-ends (Figure 9, step ➎):

* :mod:`repro.detect.pmemcheck` — a trace-based checker in the style of
  Intel's Pmemcheck: consumes the PM operation trace of one execution
  and reports unpersisted stores, ordering hazards, unlogged stores
  inside transactions, and the redundant-flush / redundant-log
  *performance* violations.
* :mod:`repro.detect.xfdetector` — a cross-failure checker in the style
  of XFDetector: takes the crash images of an execution, replays the
  recovery + a probe on each, and reports segfaults, recovery failures
  and structural-consistency violations.

:mod:`repro.detect.report` aggregates both into one report per test case.
"""

from repro.detect.pmemcheck import Pmemcheck, Violation, ViolationKind
from repro.detect.report import BugReport, TestingTool
from repro.detect.xfdetector import XFDetector

__all__ = [
    "BugReport",
    "Pmemcheck",
    "TestingTool",
    "Violation",
    "ViolationKind",
    "XFDetector",
]
