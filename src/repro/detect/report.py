"""Combined testing tool: one test case in, one bug report out.

This is step ➎ of the paper's Figure 9: PMFuzz hands each saved test
case (input commands + PM image) to the back-end testing tools.  The
:class:`TestingTool` runs the full battery:

* execute the test case with tracing, feed the trace to Pmemcheck;
* check the resulting normal image against the workload's oracle;
* generate the test case's crash images (one per ordering point) and
  feed each to the XFDetector-style cross-failure check.

The report separates crash-consistency findings from performance
findings, matching the paper's bug taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import CORRUPTION_ERRORS, ReproError
from repro.instrument.context import ExecutionContext, push_context
from repro.pmem.image import PMImage
from repro.detect.pmemcheck import Pmemcheck, Violation
from repro.detect.xfdetector import CrashFinding, XFDetector
from repro.workloads.base import Command, RunOutcome, Workload


@dataclass
class BugReport:
    """Everything the battery found for one test case."""

    outcome: RunOutcome
    trace_violations: List[Violation] = field(default_factory=list)
    oracle_violations: List[str] = field(default_factory=list)
    crash_findings: List[CrashFinding] = field(default_factory=list)
    sites_hit: frozenset = frozenset()
    outputs: List[str] = field(default_factory=list)
    error: str = ""

    @property
    def crash_consistency_findings(self) -> List[str]:
        """All crash-consistency findings, rendered."""
        findings = [f"{v.kind.value} at {v.site}"
                    for v in self.trace_violations if not v.is_performance]
        findings.extend(f"oracle: {v}" for v in self.oracle_violations)
        findings.extend(f.describe() for f in self.crash_findings)
        if self.outcome in (RunOutcome.SEGFAULT, RunOutcome.ERROR):
            findings.append(f"execution {self.outcome.value}: {self.error}")
        return findings

    @property
    def performance_findings(self) -> List[str]:
        """All performance findings, rendered."""
        return [f"{v.kind.value} at {v.site}"
                for v in self.trace_violations if v.is_performance]

    @property
    def has_bug(self) -> bool:
        return bool(self.crash_consistency_findings or
                    self.performance_findings)


class TestingTool:
    """Runs the Pmemcheck + XFDetector battery on one test case."""


    __test__ = False  # not a pytest test class despite the name

    def __init__(self, workload_factory, max_crash_images: int = 16,
                 injector=None, weak_states: bool = False):
        self.workload_factory = workload_factory
        self.max_crash_images = max_crash_images
        self.injector = injector
        #: Also judge crash states under cache-eviction semantics: any
        #: subset of pending lines may have persisted.  Catches
        #: reordering bugs that strict ordering-point snapshots mask
        #: (e.g. a commit flag evicted before its payload).
        self.weak_states = weak_states

    def test(self, image: PMImage, commands: Sequence[Command],
             with_crash_images: bool = True) -> BugReport:
        """Execute (image, commands) and run the full detection battery."""
        workload: Workload = self.workload_factory()
        ctx = ExecutionContext(injector=self.injector)
        with push_context(ctx):
            result = workload.run(image, commands)
        from repro.pmdk.pool import PmemObjPool  # for heap geometry only

        heap_base = self._heap_base(image)
        pmemcheck = Pmemcheck(heap_base)
        report = BugReport(outcome=result.outcome,
                           sites_hit=frozenset(ctx.sites_hit),
                           outputs=list(result.outputs),
                           error=result.error)
        report.trace_violations = pmemcheck.analyze(
            ctx.trace, clean_shutdown=result.outcome is RunOutcome.OK
        )
        if result.outcome is RunOutcome.OK and result.final_image is not None:
            report.oracle_violations = self._oracle(result.final_image)
        if with_crash_images and result.outcome is RunOutcome.OK:
            report.crash_findings = self._cross_failure(
                image, commands, result.fence_count
            )
        return report

    # ------------------------------------------------------------------
    def _heap_base(self, image: PMImage) -> int:
        from repro.pmdk.pool import PmemObjPool
        from repro.pmdk.tx import TransactionLog

        # Pool geometry is static: metadata block + log region.
        return 64 + TransactionLog.region_size()

    def _oracle(self, image: PMImage) -> List[str]:
        workload = self.workload_factory()
        try:
            # Raw open: the oracle judges the state as-is; the driver's
            # create-if-missing / recover-on-open repairs would mask
            # corruption (e.g. a wrong-valued commit variable).
            pool = workload.open_for_inspection(image)
            return workload.check_consistency(pool)
        except (ReproError,) + CORRUPTION_ERRORS as exc:
            return [f"oracle raised: {type(exc).__name__}: {exc}"]

    def _cross_failure(self, image: PMImage, commands: Sequence[Command],
                       fence_count: int) -> List[CrashFinding]:
        """Crash at a sample of ordering points; cross-check each image."""
        if fence_count <= 0:
            return []
        stride = max(1, fence_count // self.max_crash_images)
        fences = list(range(0, fence_count, stride))
        xfd = XFDetector(self.workload_factory, injector=self.injector)
        findings: List[CrashFinding] = []
        for fence in fences:
            workload = self.workload_factory()
            ctx = ExecutionContext(injector=self.injector, collect_trace=False)
            with push_context(ctx):
                result = workload.run(image, commands, crash_at_fence=fence,
                                      weak_states=self.weak_states)
            if result.crash_image is None:
                continue
            finding = xfd.check_image(result.crash_image, fence_index=fence)
            if finding.is_bug:
                findings.append(finding)
            for weak in result.weak_crash_images:
                weak_finding = xfd.check_image(weak, fence_index=fence)
                if weak_finding.is_bug:
                    weak_finding.error = "(eviction state) " + weak_finding.error
                    findings.append(weak_finding)
        return findings
