"""PMFuzz reproduction: test case generation for persistent memory programs.

A from-scratch Python reproduction of *PMFuzz: Test Case Generation for
Persistent Memory Programs* (Liu, Mahar, Ray, Khan -- ASPLOS 2021),
including every substrate the paper's evaluation depends on:

* :mod:`repro.pmem` -- simulated persistent memory hardware (cache-line
  persistence semantics, PM images, crash states);
* :mod:`repro.pmdk` -- a PMDK-like library (pools, typed persistent
  structs, a persistent heap, undo-log transactions, recovery);
* :mod:`repro.instrument` -- PM-operation tracking (the Algorithm-1
  counter map) and AFL-style branch coverage;
* :mod:`repro.workloads` -- the eight evaluated PM programs, with the
  paper's 12 real-world bugs as toggleable variants and the Table-3
  synthetic-bug injection sites;
* :mod:`repro.detect` -- Pmemcheck-like and XFDetector-like back-ends;
* :mod:`repro.fuzz` -- the AFL++-style greybox substrate;
* :mod:`repro.core` -- PMFuzz itself: PM-path prioritization, PM image
  generation via program logic, crash-image generation at ordering
  points, image dedup, test-case trees, and the fuzz-to-detect pipeline.

Quick start::

    from repro.core.pmfuzz import run_campaign
    stats = run_campaign("btree", "pmfuzz", budget_vseconds=2.0)
    print(stats.final_pm_paths, "PM paths covered")

See ``examples/quickstart.py`` for the full tour and ``benchmarks/``
for the reproduction of every table and figure in the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
