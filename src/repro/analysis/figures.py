"""ASCII coverage figures in the shape of the paper's Figure 13."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro._util import format_duration
from repro.fuzz.stats import FuzzStats

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[int], peak: int, width: int = 32) -> str:
    """Render a value series as a fixed-width unicode sparkline."""
    if not values:
        return " " * width
    step = max(1, len(values) // width)
    sampled = list(values[::step])[:width]
    return "".join(
        _BLOCKS[min(8, int(8 * v / max(1, peak)))] for v in sampled
    ).ljust(width)


def render_coverage_figure(
    curves: Dict[str, FuzzStats],
    budget: float,
    title: str = "PM path coverage",
    points: int = 32,
) -> str:
    """Render one Figure-13 panel for a set of named campaigns.

    The x-axis is the virtual budget mapped onto the paper's 0:00-4:00
    grid; each configuration gets a sparkline plus its final count.
    """
    marks = [budget * (i + 1) / points for i in range(points)]
    peak = max((stats.final_pm_paths for stats in curves.values()),
               default=1)
    left = format_duration(0.0)
    right = format_duration(4 * 3600)
    lines = [f"== {title} ==",
             f"{'':22s}{left}{'':>{points - len(left) - len(right)}s}{right}"]
    for name, stats in curves.items():
        series = [paths for _, paths in stats.series(marks)]
        lines.append(f"{name:22s}{sparkline(series, peak, points)} "
                     f"{stats.final_pm_paths:>6d}")
    return "\n".join(lines)
