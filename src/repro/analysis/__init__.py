"""Result analysis: aggregation and rendering for the evaluation.

Turns campaign statistics into the artifacts the paper reports:

* :mod:`repro.analysis.aggregate` — geo-means, per-config ratios and
  cross-workload summaries over :class:`~repro.fuzz.stats.FuzzStats`;
* :mod:`repro.analysis.figures` — ASCII multi-series coverage plots in
  the shape of Figure 13;
* :mod:`repro.analysis.tables` — fixed-width table rendering for the
  Table-2/Table-3 style outputs.
"""

from repro.analysis.aggregate import (
    CampaignMatrix, coverage_ratio, geomean, summarize_matrix,
)
from repro.analysis.figures import render_coverage_figure
from repro.analysis.tables import render_table

__all__ = [
    "CampaignMatrix",
    "coverage_ratio",
    "geomean",
    "render_coverage_figure",
    "render_table",
    "summarize_matrix",
]
