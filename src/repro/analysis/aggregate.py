"""Aggregation over campaign statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.fuzz.stats import FuzzStats


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-workload summary statistic)."""
    vals = [max(float(v), 1e-12) for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def coverage_ratio(a: FuzzStats, b: FuzzStats) -> float:
    """Final PM-path coverage of campaign ``a`` relative to ``b``."""
    return a.final_pm_paths / max(1, b.final_pm_paths)


@dataclass
class CampaignMatrix:
    """A workload × configuration grid of campaign results."""

    results: Dict[str, Dict[str, FuzzStats]] = field(default_factory=dict)

    def put(self, workload: str, config: str, stats: FuzzStats) -> None:
        self.results.setdefault(workload, {})[config] = stats

    def get(self, workload: str, config: str) -> FuzzStats:
        return self.results[workload][config]

    @property
    def workloads(self) -> List[str]:
        return list(self.results)

    def configs(self) -> List[str]:
        first = next(iter(self.results.values()), {})
        return list(first)

    def column(self, config: str) -> List[FuzzStats]:
        """All campaigns of one configuration, in workload order."""
        return [row[config] for row in self.results.values()]

    def ratio_geomean(self, numerator: str, denominator: str) -> float:
        """Geo-mean coverage ratio between two configurations."""
        return geomean(
            coverage_ratio(row[numerator], row[denominator])
            for row in self.results.values()
        )

    def final_coverage(self, workload: str, config: str) -> int:
        return self.results[workload][config].final_pm_paths


def summarize_matrix(matrix: CampaignMatrix,
                     baseline: str = "AFL++") -> List[str]:
    """Human-readable summary lines of a full evaluation matrix."""
    lines = []
    configs = matrix.configs()
    header = f"{'workload':16s}" + "".join(f"{c[:16]:>18s}" for c in configs)
    lines.append(header)
    for workload in matrix.workloads:
        row = matrix.results[workload]
        lines.append(f"{workload:16s}" + "".join(
            f"{row[c].final_pm_paths:18d}" for c in configs))
    for config in configs:
        if config == baseline:
            continue
        ratio = matrix.ratio_geomean(config, baseline)
        lines.append(f"geomean {config} / {baseline}: {ratio:.2f}x")
    return lines
