"""Fixed-width table rendering for evaluation outputs."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render a list of rows as an aligned text table.

    Column widths fit the longest cell; numeric cells are right-aligned,
    text cells left-aligned — matching the style of the paper's tables.
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    numeric = [True] * len(headers)
    for row in rows:
        rendered = []
        for i, cell in enumerate(row):
            text = str(cell)
            rendered.append(text)
            if not isinstance(cell, (int, float)):
                numeric[i] = False
        cells.append(rendered)
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def fmt(row: List[str], header: bool = False) -> str:
        parts = []
        for i, text in enumerate(row):
            if numeric[i] and not header:
                parts.append(text.rjust(widths[i]))
            else:
                parts.append(text.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0], header=True))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)
