"""Low-level PM primitives: the ``libpmem`` analogue.

These functions wrap the persistence-domain operations with (a) PM
operation tracking for the counter-map and (b) synthetic-bug injection
hooks, mirroring how PMFuzz places tracking hints inside the PMDK library
itself (Section 4.2: "an approach similar to Intel's Pmemcheck").

All functions take the :class:`~repro.pmem.persistence.PersistenceDomain`
directly; the object layer (:mod:`repro.pmdk.pool`) forwards to them.

Bug injection: when the active execution context carries an injector, the
flush/fence primitives consult it — a skipped flush or fence at an active
bug site reproduces the paper's "remove/misplace writebacks and fences"
synthetic bugs.
"""

from __future__ import annotations

from typing import Optional

from repro.instrument.context import current_context, pm_call_site
from repro.pmem.persistence import PersistenceDomain


def _track(site: Optional[str]) -> str:
    """Resolve the call-site label and record the PM operation."""
    label = site if site is not None else pm_call_site(depth=3)
    ctx = current_context()
    if ctx is not None:
        ctx.record_pm_op(label)
    return label


def _injector():
    ctx = current_context()
    return getattr(ctx, "injector", None) if ctx is not None else None


def pmem_read(domain: PersistenceDomain, addr: int, size: int,
              site: Optional[str] = None) -> bytes:
    """Traced PM load."""
    label = _track(site)
    return domain.load(addr, size, site=label)


def pmem_write(domain: PersistenceDomain, addr: int, data: bytes,
               site: Optional[str] = None) -> None:
    """Traced PM store (volatile until flushed + fenced)."""
    label = _track(site)
    inj = _injector()
    if inj is not None:
        data = inj.corrupt_store(label, addr, data)
    domain.store(addr, data, site=label)


def pmem_flush(domain: PersistenceDomain, addr: int, size: int,
               site: Optional[str] = None) -> None:
    """CLWB analogue: queue cache lines for persistence."""
    label = _track(site)
    inj = _injector()
    if inj is not None and inj.skip_flush(label):
        return
    domain.flush(addr, size, site=label)


def pmem_drain(domain: PersistenceDomain, site: Optional[str] = None) -> None:
    """SFENCE analogue: order all flushed lines into the media."""
    label = _track(site)
    inj = _injector()
    if inj is not None and inj.skip_fence(label):
        return
    domain.drain(site=label)


def pmem_persist(domain: PersistenceDomain, addr: int, size: int,
                 site: Optional[str] = None) -> None:
    """``pmem_persist``: flush + drain (a full persist barrier).

    Under an injected "remove writeback" bug the flush is skipped but the
    fence still executes, so the target lines simply stay dirty — the
    exact failure mode of a forgotten ``CLWB``.
    """
    label = _track(site)
    inj = _injector()
    if inj is None or not inj.skip_flush(label):
        domain.flush(addr, size, site=label)
    if inj is not None and inj.skip_fence(label):
        return
    domain.drain(site=label)


def pmem_memcpy_persist(domain: PersistenceDomain, addr: int, data: bytes,
                        site: Optional[str] = None) -> None:
    """``pmem_memcpy_persist``: store + flush + drain."""
    label = _track(site)
    inj = _injector()
    if inj is not None:
        data = inj.corrupt_store(label, addr, data)
    domain.store(addr, data, site=label)
    if inj is not None and inj.skip_flush(label):
        return
    domain.flush(addr, len(data), site=label)
    if inj is not None and inj.skip_fence(label):
        return
    domain.drain(site=label)


def pmem_memcpy_nodrain(domain: PersistenceDomain, addr: int, data: bytes,
                        site: Optional[str] = None) -> None:
    """``pmem_memcpy_nodrain``: store + flush, no fence."""
    label = _track(site)
    domain.store(addr, data, site=label)
    inj = _injector()
    if inj is not None and inj.skip_flush(label):
        return
    domain.flush(addr, len(data), site=label)


def pmem_memset_nodrain(domain: PersistenceDomain, addr: int, value: int,
                        size: int, site: Optional[str] = None) -> None:
    """``pmem_memset_nodrain``: memset + flush, no fence (paper Bug 7)."""
    label = _track(site)
    domain.store(addr, bytes([value & 0xFF]) * size, site=label)
    inj = _injector()
    if inj is not None and inj.skip_flush(label):
        return
    domain.flush(addr, size, site=label)


def pmem_memset_persist(domain: PersistenceDomain, addr: int, value: int,
                        size: int, site: Optional[str] = None) -> None:
    """``pmem_memset_persist``: memset + flush + drain."""
    label = _track(site)
    domain.store(addr, bytes([value & 0xFF]) * size, site=label)
    inj = _injector()
    if inj is None or not inj.skip_flush(label):
        domain.flush(addr, size, site=label)
    if inj is not None and inj.skip_fence(label):
        return
    domain.drain(site=label)
