"""Logged-range tracking: PMDK's range tree, reimplemented.

The paper (Section 6) explains that PMDK keeps every logged location in a
range tree; before creating a new undo-log entry, ``TX_ADD`` looks the
location up and skips logging if it is already covered.  Redundant
``TX_ADD`` calls are therefore *safe* but waste a lookup — exactly the
class of performance bug (Bugs 8-12) the paper reports.

The reproduction uses a sorted, merged interval list; operations are
O(log n) lookup + O(n) insert, which is more than adequate for the log
sizes the workloads reach.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Tuple


class RangeTree:
    """A set of disjoint, merged [start, end) byte intervals."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        """Yield (start, end) intervals in ascending order."""
        return iter(zip(self._starts, self._ends))

    def clear(self) -> None:
        """Remove all intervals (transaction end)."""
        self._starts.clear()
        self._ends.clear()

    def covers(self, offset: int, size: int) -> bool:
        """Return True if [offset, offset+size) is fully inside one interval."""
        if size <= 0:
            return True
        i = bisect.bisect_right(self._starts, offset) - 1
        if i < 0:
            return False
        return self._ends[i] >= offset + size

    def overlaps(self, offset: int, size: int) -> bool:
        """Return True if [offset, offset+size) intersects any interval."""
        if size <= 0:
            return False
        end = offset + size
        i = bisect.bisect_right(self._starts, offset) - 1
        if i >= 0 and self._ends[i] > offset:
            return True
        j = i + 1
        return j < len(self._starts) and self._starts[j] < end

    def add(self, offset: int, size: int) -> None:
        """Insert [offset, offset+size), merging with adjacent intervals."""
        if size <= 0:
            return
        start, end = offset, offset + size
        # Find all intervals that touch [start, end] and merge them.
        lo = bisect.bisect_left(self._ends, start)
        hi = bisect.bisect_right(self._starts, end)
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
        del self._starts[lo:hi]
        del self._ends[lo:hi]
        self._starts.insert(lo, start)
        self._ends.insert(lo, end)

    def covered_bytes(self) -> int:
        """Total number of bytes covered."""
        return sum(e - s for s, e in self)
