"""Typed persistent structs: the D_RO/D_RW view onto pool memory.

PMDK workloads declare C structs and access them through ``D_RO(oid)`` /
``D_RW(oid)`` pointers into the memory-mapped pool.  This module gives the
Python workloads the same shape: a :class:`PStruct` subclass declares
``_fields_``; binding it to a pool offset yields an object whose attribute
reads and writes become PM loads and stores through the persistence
domain — and therefore appear in the PM operation trace.

Example::

    class Node(PStruct):
        _fields_ = [
            ("n", U32),
            ("keys", Array(U64, 8)),
            ("slots", Array(OID, 9)),
        ]

    node = pool.typed(oid, Node)     # D_RW(node)
    node.n = node.n + 1              # traced PM load + PM store
    node.keys[0] = 42                # traced array element store
"""

from __future__ import annotations

import struct as _struct
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import PMemError
from repro.instrument.context import pm_call_site


class FieldType:
    """A fixed-size scalar field codec."""

    def __init__(self, fmt: str) -> None:
        self.fmt = "<" + fmt
        self.size = _struct.calcsize(self.fmt)

    def pack(self, value: Any) -> bytes:
        return _struct.pack(self.fmt, value)

    def unpack(self, data: bytes) -> Any:
        return _struct.unpack(self.fmt, data)[0]


#: Unsigned / signed scalar field types.
U8 = FieldType("B")
U16 = FieldType("H")
U32 = FieldType("I")
U64 = FieldType("Q")
I64 = FieldType("q")
F64 = FieldType("d")
#: A persistent object identifier — a 64-bit pool offset (0 is NULL).
OID = FieldType("Q")


class Bytes:
    """A fixed-size raw byte field (e.g. inline string storage)."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise PMemError(f"Bytes field size must be positive, got {size}")
        self.size = size

    def pack(self, value: bytes) -> bytes:
        if len(value) > self.size:
            raise PMemError(f"value of {len(value)} bytes exceeds field of {self.size}")
        return bytes(value).ljust(self.size, b"\0")

    def unpack(self, data: bytes) -> bytes:
        return bytes(data)


class Array:
    """A fixed-length array of a scalar field type."""

    def __init__(self, element: FieldType, count: int) -> None:
        if count <= 0:
            raise PMemError(f"Array count must be positive, got {count}")
        self.element = element
        self.count = count
        self.size = element.size * count


class _BoundArray:
    """Accessor for an Array field bound to (pool, base offset)."""

    __slots__ = ("_pool", "_base", "_spec", "_site")

    def __init__(self, pool: Any, base: int, spec: Array, site: str) -> None:
        self._pool = pool
        self._base = base
        self._spec = spec
        self._site = site

    def _offset_of(self, index: int) -> int:
        if not 0 <= index < self._spec.count:
            raise IndexError(
                f"array index {index} out of range [0, {self._spec.count})"
            )
        return self._base + index * self._spec.element.size

    def __len__(self) -> int:
        return self._spec.count

    def __getitem__(self, index: int) -> Any:
        off = self._offset_of(index)
        site = self._site or pm_call_site(depth=2)
        raw = self._pool.read(off, self._spec.element.size, site=site)
        return self._spec.element.unpack(raw)

    def __setitem__(self, index: int, value: Any) -> None:
        off = self._offset_of(index)
        site = self._site or pm_call_site(depth=2)
        self._pool.write(off, self._spec.element.pack(value), site=site)

    def __iter__(self):
        for i in range(self._spec.count):
            yield self[i]

    def tolist(self) -> List[Any]:
        """Read the whole array as a Python list."""
        return list(self)


class PStructMeta(type):
    """Metaclass computing field offsets and total struct size."""

    def __new__(mcs, name: str, bases: Tuple[type, ...], namespace: Dict[str, Any]):
        cls = super().__new__(mcs, name, bases, namespace)
        fields: Sequence[Tuple[str, Any]] = namespace.get("_fields_", ())
        offsets: Dict[str, Tuple[int, Any]] = {}
        cursor = 0
        seen = set()
        for fname, ftype in fields:
            if fname in seen:
                raise PMemError(f"duplicate field {fname!r} in {name}")
            seen.add(fname)
            offsets[fname] = (cursor, ftype)
            cursor += ftype.size
        cls._offsets_ = offsets
        cls._size_ = cursor
        return cls


class PStruct(metaclass=PStructMeta):
    """Base class for persistent struct layouts.

    Instances are *views*: they hold a pool and a byte offset, and every
    attribute access is a traced PM load or store.  Use
    ``pool.typed(oid, Struct)`` to construct one (the D_RW analogue).
    """

    _fields_: Sequence[Tuple[str, Any]] = ()
    _offsets_: Dict[str, Tuple[int, Any]] = {}
    _size_: int = 0

    __slots__ = ("_pool", "_offset", "_site")

    def __init__(self, pool: Any, offset: int, site: str = "") -> None:
        object.__setattr__(self, "_pool", pool)
        object.__setattr__(self, "_offset", offset)
        object.__setattr__(self, "_site", site)

    @property
    def offset(self) -> int:
        """Pool offset of this struct (its OID)."""
        return self._offset

    @classmethod
    def field_offset(cls, name: str) -> int:
        """Byte offset of field ``name`` within the struct."""
        return cls._offsets_[name][0]

    @classmethod
    def field_size(cls, name: str) -> int:
        """Size in bytes of field ``name``."""
        return cls._offsets_[name][1].size

    def field_addr(self, name: str) -> int:
        """Absolute pool offset of field ``name`` in this instance."""
        return self._offset + self.field_offset(name)

    def __getattr__(self, name: str) -> Any:
        try:
            off, ftype = type(self)._offsets_[name]
        except KeyError:
            raise AttributeError(name) from None
        addr = self._offset + off
        if isinstance(ftype, Array):
            return _BoundArray(self._pool, addr, ftype, self._site)
        site = self._site or pm_call_site(depth=2)
        raw = self._pool.read(addr, ftype.size, site=site)
        return ftype.unpack(raw)

    def __setattr__(self, name: str, value: Any) -> None:
        try:
            off, ftype = type(self)._offsets_[name]
        except KeyError:
            raise AttributeError(f"{type(self).__name__} has no field {name!r}")
        if isinstance(ftype, Array):
            raise PMemError(f"cannot assign whole array field {name!r}; index it")
        site = self._site or pm_call_site(depth=2)
        self._pool.write(self._offset + off, ftype.pack(value), site=site)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} @0x{self._offset:x}>"


def store_field(view: PStruct, field: str, value: Any, site: str) -> None:
    """Store a struct field under an explicit site label.

    Workloads use this at stores that are synthetic-bug injection sites
    (see :mod:`repro.workloads.synthetic`): the explicit label is what a
    ``WRONG_VALUE`` bug keys on, and it keeps the site stable across
    source-line drift.
    """
    off, ftype = type(view)._offsets_[field]
    view._pool.write(view._offset + off, ftype.pack(value), site=site)


def load_field(view: PStruct, field: str, site: str) -> Any:
    """Load a struct field under an explicit site label."""
    off, ftype = type(view)._offsets_[field]
    return ftype.unpack(view._pool.read(view._offset + off, ftype.size, site=site))
