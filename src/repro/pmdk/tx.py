"""Undo-log transactions: TX_BEGIN / TX_ADD / TX_ALLOC / TX_END.

Implements the libpmemobj transaction protocol over the simulated pool:

1. ``begin`` sets the persistent log stage to WORK.
2. ``add`` (TX_ADD / TX_ADD_FIELD) snapshots the old contents of a range
   into the log area, persists the snapshot, then persists the entry's
   valid flag — the data-before-valid ordering that makes undo logging
   correct.  A range already covered by the transaction's range tree is
   *not* logged again; the library emits a ``TX_ADD_REDUNDANT`` trace
   annotation instead, which the detectors report as a performance bug
   (paper Bugs 8-12 and Section 6).
3. Stores to snapshotted or freshly allocated ranges proceed in place.
4. ``commit`` flushes every covered range, fences, marks the stage
   COMMITTED, performs deferred frees, and clears the log.
5. ``abort`` (or crash recovery at the next pool open) applies snapshots
   in reverse and rolls back allocations.

A store inside a transaction to a range that is neither snapshotted nor
freshly allocated is accepted by the library — just as PMDK accepts it —
but a failure before commit makes it unrecoverable; the Pmemcheck-like
detector flags exactly those stores.
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional, Tuple, Type

from repro.errors import TransactionAborted, TransactionError
from repro.instrument.context import current_context, pm_call_site
from repro.pmem.persistence import TraceEventKind
from repro.pmdk.heap import PersistentHeap
from repro.pmdk.rangetree import RangeTree

#: Log geometry (within the pool's log region).
MAX_LOG_ENTRIES = 128
LOG_ENTRY_SIZE = 32
LOG_DATA_SIZE = 16 * 1024


class TxStage(enum.IntEnum):
    """Persistent transaction stage stored in the log header."""

    NONE = 0
    WORK = 1
    COMMITTED = 2


class EntryKind(enum.IntEnum):
    """Undo-log entry kinds."""

    SNAPSHOT = 1
    ALLOC = 2
    FREE = 3


class TransactionLog:
    """The persistent undo log embedded in a pool.

    Layout (offsets relative to ``log_base``)::

        +0   stage      u8
        +8   n_entries  u64
        +16  data_used  u64   (bytes consumed in the snapshot data area)
        +64  entries    MAX_LOG_ENTRIES * 32B: kind u8, valid u8, pad,
                        target u64, size u64, data_off u64
        +64+entries  snapshot data area (LOG_DATA_SIZE bytes)
    """

    HEADER_SIZE = 64

    def __init__(self, domain, log_base: int) -> None:
        self.domain = domain
        self.base = log_base
        self.entries_base = log_base + self.HEADER_SIZE
        self.data_base = self.entries_base + MAX_LOG_ENTRIES * LOG_ENTRY_SIZE
        self.end = self.data_base + LOG_DATA_SIZE

    @staticmethod
    def region_size() -> int:
        """Total bytes the log occupies inside a pool."""
        return TransactionLog.HEADER_SIZE + MAX_LOG_ENTRIES * LOG_ENTRY_SIZE + LOG_DATA_SIZE

    # -- header fields -------------------------------------------------
    @property
    def stage(self) -> TxStage:
        return TxStage(self.domain.load(self.base, 1)[0])

    def set_stage(self, stage: TxStage, site: str) -> None:
        self.domain.store(self.base, bytes([int(stage)]), site=site)
        self.domain.persist(self.base, 1, site=site)

    @property
    def n_entries(self) -> int:
        return int.from_bytes(self.domain.load(self.base + 8, 8), "little")

    def _set_n_entries(self, n: int, site: str) -> None:
        self.domain.store(self.base + 8, n.to_bytes(8, "little"), site=site)

    @property
    def data_used(self) -> int:
        return int.from_bytes(self.domain.load(self.base + 16, 8), "little")

    def _set_data_used(self, n: int, site: str) -> None:
        self.domain.store(self.base + 16, n.to_bytes(8, "little"), site=site)

    # -- entries ---------------------------------------------------------
    def _entry_addr(self, index: int) -> int:
        return self.entries_base + index * LOG_ENTRY_SIZE

    def read_entry(self, index: int) -> Tuple[EntryKind, bool, int, int, int]:
        """Return (kind, valid, target, size, data_off) of entry ``index``."""
        raw = self.domain.load(self._entry_addr(index), LOG_ENTRY_SIZE)
        kind = EntryKind(raw[0]) if raw[0] else EntryKind.SNAPSHOT
        valid = raw[1] == 1
        target = int.from_bytes(raw[8:16], "little")
        size = int.from_bytes(raw[16:24], "little")
        data_off = int.from_bytes(raw[24:32], "little")
        return kind, valid, target, size, data_off

    def append_entry(
        self, kind: EntryKind, target: int, size: int, data: bytes, site: str
    ) -> None:
        """Write one log entry with correct persist ordering."""
        index = self.n_entries
        if index >= MAX_LOG_ENTRIES:
            raise TransactionError("undo log full: transaction too large")
        data_off = 0
        if data:
            used = self.data_used
            if used + len(data) > LOG_DATA_SIZE:
                raise TransactionError("undo log data area full")
            data_off = self.data_base + used
            self.domain.store(data_off, data, site=site)
            self._set_data_used(used + len(data), site)
        addr = self._entry_addr(index)
        self.domain.store(addr, bytes([int(kind), 0]) + b"\0" * 6, site=site)
        self.domain.store(addr + 8, target.to_bytes(8, "little"), site=site)
        self.domain.store(addr + 16, size.to_bytes(8, "little"), site=site)
        self.domain.store(addr + 24, data_off.to_bytes(8, "little"), site=site)
        self._set_n_entries(index + 1, site)
        # Persist snapshot data + entry body + header count first ...
        if data:
            self.domain.flush(data_off, len(data), site=site)
        self.domain.flush(addr, LOG_ENTRY_SIZE, site=site)
        self.domain.flush(self.base + 8, 16, site=site)
        self.domain.drain(site=site)
        # ... then set and persist the valid flag (commit point of the entry).
        self.domain.store(addr + 1, b"\x01", site=site)
        self.domain.persist(addr + 1, 1, site=site)

    def clear(self, site: str) -> None:
        """Reset the log after commit/rollback (entries become invalid)."""
        for i in range(self.n_entries):
            addr = self._entry_addr(i)
            self.domain.store(addr + 1, b"\x00", site=site)
            self.domain.flush(addr + 1, 1, site=site)
        self._set_n_entries(0, site)
        self._set_data_used(0, site)
        self.domain.flush(self.base + 8, 16, site=site)
        self.domain.drain(site=site)


class Transaction:
    """A (possibly nested) libpmemobj-style transaction.

    Obtain via ``pool.transaction()`` and use as a context manager::

        with pool.transaction() as tx:
            tx.add(node.offset, Node._size_)      # TX_ADD
            node.n = node.n + 1
            child = tx.znew(Node)                  # TX_ZNEW

    Leaving the block normally commits; an exception rolls back and
    re-raises as :class:`~repro.errors.TransactionAborted` (matching
    ``TX_ONABORT`` semantics).
    """

    def __init__(self, pool: Any) -> None:
        self.pool = pool
        self.log: TransactionLog = pool.log
        self.heap: PersistentHeap = pool.heap
        self.ranges = RangeTree()
        self._deferred_free: List[int] = []
        self._depth = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin(self, site: Optional[str] = None) -> None:
        """TX_BEGIN: enter (or nest into) the transaction."""
        label = site if site is not None else pm_call_site(depth=2)
        self._record(label)
        if self._depth == 0:
            if self.log.stage is not TxStage.NONE:
                raise TransactionError(
                    f"TX_BEGIN with log in stage {self.log.stage.name}"
                )
            self.log.set_stage(TxStage.WORK, label)
            self.pool.domain.emit(TraceEventKind.TX_BEGIN, 0, 0, label)
            self.pool.active_tx = self
        self._depth += 1

    def commit(self, site: Optional[str] = None) -> None:
        """TX_END on the success path."""
        label = site if site is not None else pm_call_site(depth=2)
        self._record(label)
        if self._depth == 0:
            raise TransactionError("commit without begin")
        self._depth -= 1
        if self._depth > 0:
            return
        # Persist all covered (snapshotted + freshly allocated) ranges.
        for start, end in self.ranges:
            self.pool.domain.flush(start, end - start, site=label)
        self.pool.domain.drain(site=label)
        self.log.set_stage(TxStage.COMMITTED, label)
        for oid in self._deferred_free:
            self.heap.free(oid, site=label)
        self.log.clear(label)
        self.log.set_stage(TxStage.NONE, label)
        self.pool.domain.emit(TraceEventKind.TX_COMMIT, 0, 0, label)
        self._finish()

    def abort(self, site: Optional[str] = None) -> None:
        """Explicit TX_ABORT: roll back and reset."""
        label = site if site is not None else pm_call_site(depth=2)
        self._record(label)
        if self._depth == 0:
            raise TransactionError("abort without begin")
        rollback_log(self.pool, site=label)
        self.pool.domain.emit(TraceEventKind.TX_ABORT, 0, 0, label)
        self._depth = 0
        self._finish()

    def _finish(self) -> None:
        self.ranges.clear()
        self._deferred_free.clear()
        self.pool.active_tx = None

    def __enter__(self) -> "Transaction":
        self.begin(site=pm_call_site(depth=2))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        from repro.errors import SegmentationFault, SimulatedCrash

        if exc_type is None:
            self.commit(site="tx:commit")
            return False
        if issubclass(exc_type, (SimulatedCrash, SegmentationFault, KeyboardInterrupt)):
            # The "process" died: no abort handler runs; the undo log stays
            # in stage WORK and recovery at the next pool open rolls back.
            self._depth = 0
            self.pool.active_tx = None
            return False
        if self._depth > 1:
            self._depth -= 1
            return False  # propagate to the outermost level
        self.abort(site="tx:abort")
        if isinstance(exc, TransactionAborted):
            return False
        raise TransactionAborted(str(exc)) from exc

    # ------------------------------------------------------------------
    # Logging / allocation primitives
    # ------------------------------------------------------------------
    def add(self, offset: int, size: int, site: Optional[str] = None) -> None:
        """TX_ADD: snapshot ``[offset, offset+size)`` unless already covered.

        A redundant call (range already snapshotted or freshly allocated)
        performs only the range-tree lookup and emits a
        ``TX_ADD_REDUNDANT`` annotation — the performance-bug signal.
        """
        label = site if site is not None else pm_call_site(depth=2)
        self._record(label)
        self._require_active()
        inj = getattr(current_context(), "injector", None) if current_context() else None
        if inj is not None and inj.skip_tx_add(label):
            return
        if self.ranges.covers(offset, size):
            self.pool.domain.emit(TraceEventKind.TX_ADD_REDUNDANT, offset, size, label)
            return
        old = self.pool.domain.load(offset, size, site=label)
        self.log.append_entry(EntryKind.SNAPSHOT, offset, size, old, label)
        self.ranges.add(offset, size)
        self.pool.domain.emit(TraceEventKind.TX_ADD, offset, size, label)

    def add_struct(self, view: Any, site: Optional[str] = None) -> None:
        """TX_ADD of a whole typed struct view."""
        self.add(view.offset, type(view)._size_,
                 site=site if site is not None else pm_call_site(depth=2))

    def add_field(self, view: Any, field: str, site: Optional[str] = None) -> None:
        """TX_ADD_FIELD: snapshot a single struct field."""
        self.add(view.field_addr(field), type(view).field_size(field),
                 site=site if site is not None else pm_call_site(depth=2))

    def set_field(self, view: Any, field: str, value: Any,
                  site: Optional[str] = None) -> None:
        """TX_SET: TX_ADD_FIELD followed by the store."""
        label = site if site is not None else pm_call_site(depth=2)
        self.add(view.field_addr(field), type(view).field_size(field), site=label)
        setattr(view, field, value)

    def alloc(self, size: int, site: Optional[str] = None) -> int:
        """TX_ALLOC: allocate; rolled back (freed) on abort."""
        label = site if site is not None else pm_call_site(depth=2)
        self._record(label)
        self._require_active()
        oid = self.heap.alloc(size, site=label)
        self.log.append_entry(EntryKind.ALLOC, oid, size, b"", label)
        # Fresh allocations need no snapshot: cover them in the range tree.
        self.ranges.add(oid, size)
        self.pool.domain.emit(TraceEventKind.ALLOC, oid, size, label)
        return oid

    def zalloc(self, size: int, site: Optional[str] = None) -> int:
        """TX_ZALLOC: allocate zeroed memory."""
        label = site if site is not None else pm_call_site(depth=2)
        oid = self.alloc(size, site=label)
        self.pool.domain.store(oid, b"\0" * size, site=label)
        return oid

    def new(self, struct_type: Type, site: Optional[str] = None) -> Any:
        """TX_NEW: allocate a struct-sized block, return the typed view."""
        label = site if site is not None else pm_call_site(depth=2)
        oid = self.alloc(struct_type._size_, site=label)
        return self.pool.typed(oid, struct_type, site=label)

    def znew(self, struct_type: Type, site: Optional[str] = None) -> Any:
        """TX_ZNEW: allocate a zeroed struct, return the typed view."""
        label = site if site is not None else pm_call_site(depth=2)
        oid = self.zalloc(struct_type._size_, site=label)
        return self.pool.typed(oid, struct_type, site=label)

    def free(self, oid: int, site: Optional[str] = None) -> None:
        """TX_FREE: deferred until commit (undone simply by aborting)."""
        label = site if site is not None else pm_call_site(depth=2)
        self._record(label)
        self._require_active()
        self.log.append_entry(EntryKind.FREE, oid, 0, b"", label)
        self._deferred_free.append(oid)
        self.pool.domain.emit(TraceEventKind.FREE, oid, 0, label)

    # ------------------------------------------------------------------
    def _require_active(self) -> None:
        if self._depth == 0:
            raise TransactionError("operation outside TX_BEGIN/TX_END")

    @staticmethod
    def _record(label: str) -> None:
        ctx = current_context()
        if ctx is not None:
            ctx.record_pm_op(label)


def rollback_log(pool: Any, site: str = "tx:rollback") -> None:
    """Apply valid undo entries in reverse order; used by abort & recovery.

    The rollback operations are PM operations in their own right (the
    real libpmemobj recovery code is instrumented like any other library
    code), so they are recorded with per-entry-kind site labels — which
    is what makes recovery procedures contribute *new PM paths* when a
    crash image is used as a fuzzing input.
    """
    ctx = current_context()
    log: TransactionLog = pool.log
    for index in range(log.n_entries - 1, -1, -1):
        kind, valid, target, size, data_off = log.read_entry(index)
        if not valid:
            continue
        if kind is EntryKind.SNAPSHOT:
            if ctx is not None:
                ctx.record_pm_op("tx:rollback:snapshot")
            old = pool.domain.load(data_off, size, site=site)
            pool.domain.store(target, old, site=site)
            pool.domain.persist(target, size, site=site)
        elif kind is EntryKind.ALLOC:
            if ctx is not None:
                ctx.record_pm_op("tx:rollback:alloc")
            # Idempotent: a crash mid-rollback leaves processed entries
            # valid; the re-run must not double-free (PMDK's recovery
            # operations are restartable for the same reason).
            if pool.heap.is_allocated(target):
                pool.heap.free(target, site=site)
        # FREE entries were deferred; nothing to undo.
    log.clear(site)
    log.set_stage(TxStage.NONE, site)


def recover_pool(pool: Any, site: str = "tx:recovery") -> bool:
    """Crash recovery at pool open; returns True if work was done.

    * stage WORK → the crash hit mid-transaction: roll back.
    * stage COMMITTED → the crash hit after the commit point: finish by
      clearing the log (deferred frees are re-issued conservatively by
      dropping them — the blocks leak, which is PMDK's behaviour too).
    """
    log: TransactionLog = pool.log
    stage = log.stage
    if stage is TxStage.NONE:
        return False
    ctx = current_context()
    pool.domain.emit(TraceEventKind.RECOVERY, 0, 0, site)
    if stage is TxStage.WORK:
        if ctx is not None:
            ctx.record_pm_op("tx:recovery:rollback")
        rollback_log(pool, site=site)
    else:  # COMMITTED
        if ctx is not None:
            ctx.record_pm_op("tx:recovery:finish_commit")
        log.clear(site)
        log.set_stage(TxStage.NONE, site)
    return True
