"""Persistent object pools: the ``libpmemobj`` pool analogue.

A pool wraps one PM image with:

* a metadata block (magic, root OID, heap cursor, free-list head),
* the embedded undo log (:class:`~repro.pmdk.tx.TransactionLog`),
* the persistent heap (:class:`~repro.pmdk.heap.PersistentHeap`).

``PmemObjPool.open`` validates the image header — a randomly mutated
image fails here, reproducing Figure 5a — and then runs transaction
recovery, reproducing the automatic recovery path that the paper's
real-world Bug 6 shows is *not* sufficient for programs built on
low-level primitives.
"""

from __future__ import annotations

from typing import Any, Optional, Type

from repro.errors import InvalidImageError, SegmentationFault
from repro.execcore import make_domain
from repro.instrument.context import current_context, pm_call_site
from repro.pmem.image import PMImage
from repro.pmem.persistence import PersistenceDomain, TraceEventKind
from repro.pmdk import libpmem
from repro.pmdk.heap import ALLOC_HEADER_SIZE, PersistentHeap
from repro.pmdk.tx import Transaction, TransactionLog, recover_pool

#: NULL persistent pointer.
OID_NULL = 0

#: Pool metadata layout (offsets within the payload).
_META_OFF = 0
_META_MAGIC_OFF = 0
_META_ROOT_OFF = 8
_META_CURSOR_OFF = 16
_META_FREE_OFF = 24
_META_SIZE = 64
_LOG_OFF = _META_SIZE

_POOL_MAGIC = 0x504D4F424A5F5631  # "PMOBJ_V1"

#: Default pool payload size — small enough for fast fuzzing iterations,
#: large enough for hundreds of workload objects.
DEFAULT_POOL_SIZE = 256 * 1024


class PmemObjPool:
    """An open persistent object pool bound to a PM image.

    Not constructed directly — use :meth:`create` or :meth:`open`.
    """

    def __init__(self, image: PMImage, domain: PersistenceDomain) -> None:
        self.image = image
        self.domain = domain
        self.log = TransactionLog(domain, _LOG_OFF)
        heap_base = _LOG_OFF + TransactionLog.region_size()
        self.heap = PersistentHeap(
            domain,
            heap_base,
            meta_cursor_addr=_META_CURSOR_OFF,
            meta_free_addr=_META_FREE_OFF,
        )
        self.active_tx: Optional[Transaction] = None
        self.closed = False
        ctx = current_context()
        # Only register the trace observer when the context actually
        # keeps events: with collect_trace=False (the fuzzing hot path)
        # ctx.observe drops every event anyway, and an observer-free
        # domain skips TraceEvent construction entirely.
        if ctx is not None and ctx.collect_trace:
            domain.add_observer(ctx.observe)

    # ------------------------------------------------------------------
    # Creation / opening
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, layout: str, size: int = DEFAULT_POOL_SIZE) -> "PmemObjPool":
        """``pmemobj_create``: build a fresh pool on an empty image."""
        image = PMImage.create(layout, size)
        domain = make_domain(size, bytes(image.payload))
        pool = cls(image, domain)
        site = "pool:create"
        domain.store(
            _META_MAGIC_OFF, _POOL_MAGIC.to_bytes(8, "little"), site=site
        )
        domain.store(_META_ROOT_OFF, OID_NULL.to_bytes(8, "little"), site=site)
        domain.persist(_META_OFF, _META_SIZE, site=site)
        pool.heap.initialize(site=site)
        pool.log.set_stage(0, site)
        domain.emit(TraceEventKind.POOL_OPEN, 0, 0, site)
        return pool

    @classmethod
    def open(
        cls,
        image: PMImage,
        layout: str,
        recover: bool = True,
    ) -> "PmemObjPool":
        """``pmemobj_open``: validate the image, mount it, run recovery.

        Args:
            image: the PM image to mount (it is copied; the caller's image
                is not mutated by execution).
            layout: expected layout name.
            recover: run undo-log recovery (PMDK always does; the flag
                exists for tests that need to inspect pre-recovery state).

        Raises:
            InvalidImageError: bad magic/checksum/layout — the program
                aborts before doing anything useful.
        """
        image.validate(expected_layout=layout)
        working = image.copy()
        domain = make_domain(len(working.payload), bytes(working.payload))
        magic = int.from_bytes(domain.load(_META_MAGIC_OFF, 8), "little")
        if magic != _POOL_MAGIC:
            raise InvalidImageError(
                f"pool magic mismatch: 0x{magic:x} != 0x{_POOL_MAGIC:x}"
            )
        pool = cls(working, domain)
        domain.emit(TraceEventKind.POOL_OPEN, 0, 0, "pool:open")
        if recover:
            recover_pool(pool)
        return pool

    def close(self) -> PMImage:
        """``pmemobj_close``: persist everything and return the image.

        A clean shutdown gives the cache time to write back every dirty
        line, so the resulting *normal image* reflects the full volatile
        state.  (Crash images, by contrast, are taken from the media view
        at the failure point.)
        """
        self.domain.emit(TraceEventKind.POOL_CLOSE, 0, 0, "pool:close")
        self.image.payload = bytearray(self.domain.volatile_view())
        self.closed = True
        return self.image

    def crash_image(self) -> PMImage:
        """Return the strict crash snapshot as an image (media view only)."""
        img = PMImage(layout=self.image.layout,
                      payload=bytearray(self.domain.persisted_view()),
                      uuid=self.image.uuid)
        return img

    # ------------------------------------------------------------------
    # Raw traced access (used by the typed-struct layer)
    # ------------------------------------------------------------------
    def read(self, offset: int, size: int, site: str = "") -> bytes:
        """Traced PM load with NULL/bounds checking.

        Struct-view reads route through here; the call site (the workload
        statement performing the D_RO access) is recorded as a PM
        operation, which is what makes the statement a *PM node* in the
        paper's PM-path definition (Section 3.3).
        """
        self._check(offset, size)
        ctx = current_context()
        if ctx is not None and site:
            ctx.record_pm_op(site)
        return self.domain.load(offset, size, site=site)

    def write(self, offset: int, data: bytes, site: str = "") -> None:
        """Traced PM store with NULL/bounds checking (a PM node, see read)."""
        self._check(offset, len(data))
        ctx = current_context()
        if ctx is not None:
            if site:
                ctx.record_pm_op(site)
            inj = ctx.injector
            if inj is not None:
                data = inj.corrupt_store(site, offset, data)
        self.domain.store(offset, data, site=site)

    def _check(self, offset: int, size: int) -> None:
        if offset == OID_NULL:
            raise SegmentationFault("NULL persistent pointer dereference")
        if offset < 0 or offset + size > self.domain.size:
            raise SegmentationFault(
                f"access [{offset}, {offset + size}) outside pool of "
                f"size {self.domain.size}"
            )

    # ------------------------------------------------------------------
    # Object access (D_RO / D_RW analogues)
    # ------------------------------------------------------------------
    def typed(self, oid: int, struct_type: Type, site: Optional[str] = None) -> Any:
        """Return a typed struct view at ``oid`` (the D_RW analogue).

        NULL and out-of-bounds OIDs raise :class:`SegmentationFault`,
        which is how the paper's Bugs 1-5 (dereferencing a rolled-back
        root pointer after a failed initialization) manifest here.
        """
        if oid == OID_NULL:
            raise SegmentationFault(
                f"D_RW(NULL) for {struct_type.__name__}"
            )
        if oid < 0 or oid + struct_type._size_ > self.domain.size:
            raise SegmentationFault(
                f"OID 0x{oid:x} out of bounds for {struct_type.__name__}"
            )
        label = site if site is not None else ""
        return struct_type(self, oid, site=label)

    @property
    def root_oid(self) -> int:
        """Current root object OID (0 when unset)."""
        return int.from_bytes(self.domain.load(_META_ROOT_OFF, 8), "little")

    def set_root(self, oid: int, site: Optional[str] = None) -> None:
        """Atomically publish the root OID (persisted immediately).

        Inside a transaction the root slot must still be snapshotted by
        the caller (``tx.add``) for the update to be recoverable — the
        paper's Bugs 1-5 come from programs getting this wrong.
        """
        label = site if site is not None else pm_call_site(depth=2)
        ctx = current_context()
        if ctx is not None:
            ctx.record_pm_op(label)
        self.domain.store(_META_ROOT_OFF, oid.to_bytes(8, "little"), site=label)
        self.domain.persist(_META_ROOT_OFF, 8, site=label)

    def root(self, struct_type: Type, site: Optional[str] = None) -> Any:
        """``pmemobj_root``: get-or-create the root object, typed.

        On first call the root is allocated zeroed and published
        atomically (allocation, then persist, then root-slot update, then
        persist) — the crash-safe pattern PMDK implements internally.
        """
        label = site if site is not None else pm_call_site(depth=2)
        oid = self.root_oid
        if oid == OID_NULL:
            oid = self.heap.zalloc(struct_type._size_, site=label)
            self.set_root(oid, site=label)
        return self.typed(oid, struct_type, site=label)

    # ------------------------------------------------------------------
    # Transactions & atomic allocation
    # ------------------------------------------------------------------
    def transaction(self) -> Transaction:
        """Return the active transaction (nested TX_BEGIN) or a new one."""
        return self.active_tx if self.active_tx is not None else Transaction(self)

    def alloc(self, size: int, site: Optional[str] = None) -> int:
        """Atomic (non-transactional) allocation, ``POBJ_ALLOC`` style."""
        label = site if site is not None else pm_call_site(depth=2)
        ctx = current_context()
        if ctx is not None:
            ctx.record_pm_op(label)
        oid = self.heap.alloc(size, site=label)
        self.domain.emit(TraceEventKind.ALLOC, oid, size, label)
        return oid

    def zalloc(self, size: int, site: Optional[str] = None) -> int:
        """Atomic zeroed allocation, ``POBJ_ZALLOC`` style."""
        label = site if site is not None else pm_call_site(depth=2)
        ctx = current_context()
        if ctx is not None:
            ctx.record_pm_op(label)
        oid = self.heap.zalloc(size, site=label)
        self.domain.emit(TraceEventKind.ALLOC, oid, size, label)
        return oid

    def free(self, oid: int, site: Optional[str] = None) -> None:
        """Atomic free, ``POBJ_FREE`` style."""
        label = site if site is not None else pm_call_site(depth=2)
        ctx = current_context()
        if ctx is not None:
            ctx.record_pm_op(label)
        self.heap.free(oid, site=label)
        self.domain.emit(TraceEventKind.FREE, oid, 0, label)

    # ------------------------------------------------------------------
    # Low-level persistence (libpmem pass-throughs)
    # ------------------------------------------------------------------
    def persist(self, offset: int, size: int, site: Optional[str] = None) -> None:
        """``pmem_persist`` on a pool range."""
        libpmem.pmem_persist(self.domain, offset, size,
                             site=site if site is not None else pm_call_site(depth=2))

    def flush(self, offset: int, size: int, site: Optional[str] = None) -> None:
        """``pmem_flush`` on a pool range."""
        libpmem.pmem_flush(self.domain, offset, size,
                           site=site if site is not None else pm_call_site(depth=2))

    def drain(self, site: Optional[str] = None) -> None:
        """``pmem_drain`` (fence)."""
        libpmem.pmem_drain(self.domain,
                           site=site if site is not None else pm_call_site(depth=2))

    @property
    def heap_base(self) -> int:
        """First heap offset (everything below is pool metadata + log)."""
        return self.heap.heap_base

    def first_object_oid(self) -> int:
        """OID of the first heap allocation (useful for tests)."""
        return self.heap.heap_base + ALLOC_HEADER_SIZE
