"""Persistent heap allocator.

PMDK pools carry their own allocator whose metadata lives *inside* the
pool, so tree nodes and log entries "are all allocated in the image at
runtime" (paper Figure 6b) — which is exactly why file-system-style image
fuzzers cannot mutate PM images structurally.

The reproduction uses a bump allocator with a singly-linked free list:

* every block has a 64-byte header (size, free-list link, state tag) and
  cache-line-aligned user data, so separate objects never share a line;
* allocation first-fits the free list, then bumps the heap cursor;
* metadata updates are persisted in an order such that a crash mid-
  allocation can only leak a block, never corrupt the heap (the same
  guarantee class PMDK provides).

All metadata traffic goes through the persistence domain and therefore
appears in the PM trace.
"""

from __future__ import annotations

from typing import List, Tuple

from repro._util import align_up
from repro.errors import OutOfPMemError, PMemError, SegmentationFault
from repro.pmem.persistence import CACHE_LINE, PersistenceDomain

#: Bytes of header preceding every heap block's user data.
ALLOC_HEADER_SIZE = 64

_HDR_SIZE_OFF = 0  # u64 user size
_HDR_NEXT_OFF = 8  # u64 next free block header (0 = end)
_HDR_STATE_OFF = 16  # u8: 1 allocated, 2 free

STATE_ALLOCATED = 1
STATE_FREE = 2


def _read_u64(domain: PersistenceDomain, addr: int) -> int:
    return int.from_bytes(domain.load(addr, 8), "little")


def _write_u64(domain: PersistenceDomain, addr: int, value: int, site: str) -> None:
    domain.store(addr, value.to_bytes(8, "little"), site=site)


class PersistentHeap:
    """Allocator over the heap region ``[heap_base, domain.size)``.

    The mutable cursor and free-list head live in the pool metadata block
    at ``meta_cursor_addr`` / ``meta_free_addr`` (owned by the pool).
    """

    def __init__(
        self,
        domain: PersistenceDomain,
        heap_base: int,
        meta_cursor_addr: int,
        meta_free_addr: int,
    ) -> None:
        self.domain = domain
        self.heap_base = align_up(heap_base, CACHE_LINE)
        self._cursor_addr = meta_cursor_addr
        self._free_addr = meta_free_addr

    # ------------------------------------------------------------------
    # Metadata accessors
    # ------------------------------------------------------------------
    @property
    def cursor(self) -> int:
        cur = _read_u64(self.domain, self._cursor_addr)
        return cur if cur else self.heap_base

    @property
    def free_head(self) -> int:
        return _read_u64(self.domain, self._free_addr)

    def initialize(self, site: str = "heap:init") -> None:
        """Set up an empty heap (pool-create path)."""
        _write_u64(self.domain, self._cursor_addr, self.heap_base, site)
        _write_u64(self.domain, self._free_addr, 0, site)
        self.domain.persist(self._cursor_addr, 16, site=site)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _block_span(self, user_size: int) -> int:
        return ALLOC_HEADER_SIZE + align_up(max(user_size, 1), CACHE_LINE)

    def alloc(self, user_size: int, site: str = "heap:alloc") -> int:
        """Allocate ``user_size`` bytes; returns the user-data offset (OID).

        Raises:
            OutOfPMemError: when neither the free list nor the remaining
                heap space can satisfy the request.
        """
        if user_size <= 0:
            raise PMemError(f"allocation size must be positive, got {user_size}")
        # Allocator metadata traffic is library-internal: prefix the site so
        # the detectors (which exclude "heap:" sites) do not attribute the
        # header stores to the application call site.
        site = site if site.startswith("heap:") else f"heap:{site}"
        hdr = self._take_free_block(user_size, site)
        if hdr is None:
            hdr = self._bump(user_size, site)
        # Mark allocated and record the user size, then persist the header.
        _write_u64(self.domain, hdr + _HDR_SIZE_OFF, user_size, site)
        _write_u64(self.domain, hdr + _HDR_NEXT_OFF, 0, site)
        self.domain.store(hdr + _HDR_STATE_OFF, bytes([STATE_ALLOCATED]), site=site)
        self.domain.persist(hdr, ALLOC_HEADER_SIZE, site=site)
        return hdr + ALLOC_HEADER_SIZE

    def zalloc(self, user_size: int, site: str = "heap:zalloc") -> int:
        """Allocate and zero (``TX_ZNEW``'s backing primitive)."""
        site = site if site.startswith("heap:") else f"heap:{site}"
        oid = self.alloc(user_size, site=site)
        self.domain.store(oid, b"\0" * user_size, site=site)
        self.domain.persist(oid, user_size, site=site)
        return oid

    def free(self, oid: int, site: str = "heap:free") -> None:
        """Return the block containing ``oid`` to the free list."""
        site = site if site.startswith("heap:") else f"heap:{site}"
        hdr = self._header_of(oid)
        state = self.domain.load(hdr + _HDR_STATE_OFF, 1)[0]
        if state != STATE_ALLOCATED:
            raise PMemError(f"double free or bad free of OID 0x{oid:x}")
        old_head = self.free_head
        self.domain.store(hdr + _HDR_STATE_OFF, bytes([STATE_FREE]), site=site)
        _write_u64(self.domain, hdr + _HDR_NEXT_OFF, old_head, site)
        self.domain.persist(hdr, ALLOC_HEADER_SIZE, site=site)
        _write_u64(self.domain, self._free_addr, hdr, site)
        self.domain.persist(self._free_addr, 8, site=site)

    def usable_size(self, oid: int) -> int:
        """Return the user size recorded for an allocated OID."""
        hdr = self._header_of(oid)
        return _read_u64(self.domain, hdr + _HDR_SIZE_OFF)

    def is_allocated(self, oid: int) -> bool:
        """True if the block at ``oid`` is currently allocated.

        Used by transaction rollback to stay *idempotent*: a failure in
        the middle of a rollback leaves already-processed ALLOC entries
        valid, and the next recovery must not free their blocks twice.
        """
        hdr = self._header_of(oid)
        return self.domain.load(hdr + _HDR_STATE_OFF, 1)[0] == STATE_ALLOCATED

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _header_of(self, oid: int) -> int:
        hdr = oid - ALLOC_HEADER_SIZE
        if hdr < self.heap_base or oid >= self.domain.size:
            raise SegmentationFault(f"OID 0x{oid:x} outside heap")
        return hdr

    def _bump(self, user_size: int, site: str) -> int:
        span = self._block_span(user_size)
        cur = self.cursor
        if cur + span > self.domain.size:
            raise OutOfPMemError(
                f"heap exhausted: need {span} bytes at 0x{cur:x}, "
                f"pool ends at 0x{self.domain.size:x}"
            )
        _write_u64(self.domain, self._cursor_addr, cur + span, site)
        self.domain.persist(self._cursor_addr, 8, site=site)
        return cur

    def _take_free_block(self, user_size: int, site: str) -> int:
        """First-fit search of the free list; unlink and return header."""
        span_needed = self._block_span(user_size)
        prev_link = self._free_addr
        hdr = self.free_head
        while hdr:
            block_user = _read_u64(self.domain, hdr + _HDR_SIZE_OFF)
            if self._block_span(block_user) >= span_needed:
                next_free = _read_u64(self.domain, hdr + _HDR_NEXT_OFF)
                _write_u64(self.domain, prev_link, next_free, site)
                self.domain.persist(prev_link, 8, site=site)
                return hdr
            prev_link = hdr + _HDR_NEXT_OFF
            hdr = _read_u64(self.domain, hdr + _HDR_NEXT_OFF)
        return None

    def free_blocks(self) -> List[Tuple[int, int]]:
        """Return (header offset, user size) for every free-list block."""
        blocks = []
        hdr = self.free_head
        while hdr:
            blocks.append((hdr, _read_u64(self.domain, hdr + _HDR_SIZE_OFF)))
            hdr = _read_u64(self.domain, hdr + _HDR_NEXT_OFF)
        return blocks
