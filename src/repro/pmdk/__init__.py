"""PMDK-like persistent memory programming library (simulated).

This package reimplements, in Python and against the simulated
persistence domain, the slice of Intel PMDK that the paper's workloads
use:

* :mod:`repro.pmdk.libpmem` — low-level primitives: ``pmem_persist``,
  ``pmem_flush``, ``pmem_drain``, ``pmem_memcpy_persist``,
  ``pmem_memset_nodrain`` (the ``CLWB``/``SFENCE`` wrappers).
* :mod:`repro.pmdk.layout` — typed persistent structs (the analogue of
  C structs accessed through ``D_RO``/``D_RW``).
* :mod:`repro.pmdk.heap` — a persistent heap allocator (``pmemobj_alloc``).
* :mod:`repro.pmdk.rangetree` — the logged-range tree PMDK uses to skip
  duplicate undo-log entries (Section 6 of the paper).
* :mod:`repro.pmdk.tx` — undo-log transactions: ``TX_BEGIN``/``TX_END``,
  ``TX_ADD``, ``TX_ALLOC``/``TX_ZNEW``, commit, abort and recovery.
* :mod:`repro.pmdk.pool` — ``pmemobj_create``/``pmemobj_open``, header
  validation, the root object, and crash recovery at open.

Every function that performs a PM operation records a PM-operation
call-site ID with the active instrumentation context, which is how the
PMFuzz counter-map (Algorithm 1) observes the execution.
"""

from repro.pmdk.heap import ALLOC_HEADER_SIZE
from repro.pmdk.layout import (
    Array,
    F64,
    I64,
    OID,
    PStruct,
    U8,
    U16,
    U32,
    U64,
    Bytes,
)
from repro.pmdk.pool import OID_NULL, PmemObjPool
from repro.pmdk.rangetree import RangeTree
from repro.pmdk.tx import Transaction

__all__ = [
    "ALLOC_HEADER_SIZE",
    "Array",
    "Bytes",
    "F64",
    "I64",
    "OID",
    "OID_NULL",
    "PStruct",
    "PmemObjPool",
    "RangeTree",
    "Transaction",
    "U8",
    "U16",
    "U32",
    "U64",
]
