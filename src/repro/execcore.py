"""Execution-core selection: scalar reference vs vectorized hot paths.

PR 9 rewrites the three throughput-critical state machines — the
persistence domain's line-state transitions, the Algorithm-1 PM counter
map, and the global coverage algebra — on bytearray/numpy bulk
operations.  The scalar implementations are retained verbatim as the
reference semantics; this module is the single switch that decides which
family every construction site uses.

The contract (enforced by ``tests/test_exec_core_grid.py`` and the
hypothesis properties in ``tests/test_properties.py``) is *bit-identical
behavior*: byte-identical crash images, ``comparable()``-identical
campaign stats, and identical per-operation results across both cores in
every configuration.  The vectorized core is therefore free to be the
default wherever numpy is importable; hosts without numpy degrade to the
scalar core automatically (graceful degradation, never a hard failure).

Selection is process-global on purpose: a campaign's executions fork
into worker subprocesses that inherit the already-constructed engine, so
a per-object flag would have to be threaded through every construction
site in ``pmdk``, ``instrument`` and ``fuzz``.  The engine sets the
global once from its ``exec_core`` kwarg before any domain or map is
built, and records the resolved value in its campaign metadata so
checkpoints resume under the same core.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FuzzerError

try:  # numpy is optional: the scalar core needs nothing beyond stdlib.
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised on numpy-less hosts
    HAVE_NUMPY = False

#: Core names accepted by ``--exec-core`` / :func:`set_core`.
EXEC_CORES = ("scalar", "vector")

#: The default core: vectorized wherever numpy exists, else scalar.
DEFAULT_CORE = "vector" if HAVE_NUMPY else "scalar"

_active = DEFAULT_CORE


def resolve(name: Optional[str] = None) -> str:
    """Validate ``name`` and resolve None/"" to the platform default.

    Asking for ``vector`` on a host without numpy is a configuration
    error (the caller asked for something the host cannot honor), unlike
    the silent default degradation when no core is named.
    """
    if name in (None, ""):
        return DEFAULT_CORE
    if name not in EXEC_CORES:
        raise FuzzerError(f"unknown exec core {name!r}; "
                          f"known: {', '.join(EXEC_CORES)}")
    if name == "vector" and not HAVE_NUMPY:
        raise FuzzerError("exec core 'vector' requires numpy, "
                          "which is not importable on this host")
    return name


def set_core(name: Optional[str] = None) -> str:
    """Select the process-global core; returns the resolved name."""
    global _active
    _active = resolve(name)
    return _active


def active_core() -> str:
    """The core every factory below currently builds."""
    return _active


# ----------------------------------------------------------------------
# Construction factories (the only seams the rest of the code uses)
# ----------------------------------------------------------------------
def make_domain(size: int, initial: Optional[bytes] = None):
    """Build a persistence domain under the active core."""
    if _active == "vector":
        from repro.pmem.vector import VectorPersistenceDomain
        return VectorPersistenceDomain(size, initial)
    from repro.pmem.persistence import PersistenceDomain
    return PersistenceDomain(size, initial)


def make_counter_map():
    """Build an Algorithm-1 PM counter map under the active core."""
    if _active == "vector":
        from repro.instrument.counter_map import VectorPMCounterMap
        return VectorPMCounterMap()
    from repro.instrument.counter_map import PMCounterMap
    return PMCounterMap()


def make_global_coverage():
    """Build a global (virgin-map) coverage tracker under the active core."""
    if _active == "vector":
        from repro.fuzz.coverage import VectorGlobalCoverage
        return VectorGlobalCoverage()
    from repro.fuzz.coverage import GlobalCoverage
    return GlobalCoverage()
