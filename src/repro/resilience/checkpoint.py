"""Crash-safe campaign checkpoint / resume.

A 4-hour campaign whose state — queue, coverage maps, virtual clock,
RNG, test-case tree, image store — lives only in memory is one fault
away from losing everything.  This module snapshots *complete* campaign
state atomically and restores it bit-for-bit:

* **Atomicity** — the snapshot is written to a temp file in the target
  directory, fsynced, then renamed over the destination (the classic
  write-tmp + fsync + rename protocol, the same discipline the PM
  programs under test are being fuzzed *for*).  A kill at any point
  leaves either the old checkpoint or the new one, never a torn file.
* **Integrity** — the payload carries a SHA-256 checksum verified on
  read; a corrupt or truncated checkpoint raises
  :class:`~repro.errors.CheckpointError` instead of resurrecting a
  half-campaign.
* **Determinism** — checkpoints are taken at fuzzing-round boundaries
  and include the RNG and fault-injector streams, so a campaign killed
  at *any* instant resumes from its last checkpoint and replays the
  interrupted tail exactly: final stats, coverage bitmaps and queue
  order are byte-identical to an uninterrupted run with the same seed
  (the test-suite invariant).

A checkpoint is self-describing: it embeds the ``campaign_meta``
recorded by :func:`repro.core.pmfuzz.build_engine` (workload name,
configuration, bug flags, seed inputs, fault plan, engine kwargs), so
:func:`resume_campaign` can rebuild the right engine class from the
registry without any caller-side bookkeeping.
"""

from __future__ import annotations

import os
import pickle
import shutil
from collections import OrderedDict
from typing import Optional

from repro._util import (atomic_write_bytes, pack_checksummed,
                         replace_durable, unpack_checksummed)
from repro._vfs import current_vfs
from repro.errors import CheckpointError

_MAGIC = b"PMFZCKPT1\n"
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# File format: MAGIC + sha256-hex + "\n" + pickle payload
# ----------------------------------------------------------------------
def write_checkpoint(path: str, payload: dict) -> None:
    """Atomically persist ``payload`` (write-tmp + fsync + rename)."""
    try:
        blob = pickle.dumps(payload, protocol=4)
    except Exception as exc:
        raise CheckpointError(f"campaign state is not serializable: {exc}") \
            from exc
    atomic_write_bytes(path, pack_checksummed(_MAGIC, blob))


def rotate_previous(path: str) -> None:
    """Preserve the outgoing checkpoint as ``<path>.prev``.

    Hardlink-based where the filesystem allows it: the current file is
    linked to the ``.prev`` name *before* the new checkpoint renames
    over ``path``, so at no instant is there zero intact checkpoints on
    disk.  :func:`resume_campaign` falls back to ``.prev`` when the
    primary is damaged (e.g. bit rot after the atomic write).
    """
    if not os.path.exists(path):
        return
    vfs = current_vfs()
    prev = path + ".prev"
    tmp = prev + ".tmp"
    try:
        if os.path.exists(tmp):
            vfs.unlink(tmp)
        vfs.link(path, tmp)
        replace_durable(tmp, prev)
    except OSError:
        # Filesystems without hardlink support get a byte copy; `path`
        # itself is still only ever replaced atomically.
        try:
            shutil.copyfile(path, tmp)
            replace_durable(tmp, prev)
        except OSError:
            pass  # rotation is best-effort; the primary write proceeds


def read_checkpoint_with_fallback(path: str,
                                  allow_previous: bool = True) -> dict:
    """Load ``path``, falling back to its ``.prev`` rotation on damage.

    This is the checkpoint store's *recovery entry point*: a torn or
    bit-rotted primary falls back to the rotation written just before
    it; only when both are unusable does :class:`CheckpointError`
    propagate.  :func:`resume_campaign` builds on this, and the
    durability auditor drives it against every enumerated crash state.
    """
    try:
        return read_checkpoint(path)
    except CheckpointError:
        prev = path + ".prev"
        if not allow_previous or not os.path.exists(prev):
            raise
        return read_checkpoint(prev)


def read_checkpoint(path: str) -> dict:
    """Load and verify a checkpoint; raises CheckpointError on damage."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") \
            from exc
    try:
        blob = unpack_checksummed(_MAGIC, data, what=f"checkpoint {path!r}")
    except ValueError as exc:
        if "wrong magic" in str(exc):
            raise CheckpointError(
                f"{path!r} is not a campaign checkpoint") from exc
        raise CheckpointError(str(exc)) from exc
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(f"checkpoint {path!r} does not deserialize: "
                              f"{exc}") from exc
    if payload.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version "
            f"{payload.get('version')!r}, expected {FORMAT_VERSION}")
    return payload


# ----------------------------------------------------------------------
# Engine state capture / restore
# ----------------------------------------------------------------------
def capture_state(engine) -> dict:
    """Snapshot every mutable piece of one campaign's state.

    The returned dict holds live references; callers must serialize it
    before the engine advances (``write_engine_checkpoint`` pickles it
    immediately).
    """
    storage = engine.storage
    store = storage.store
    state = {
        "vclock": engine.vclock,
        "next_sample": engine._next_sample,
        "next_checkpoint": engine._next_checkpoint,
        "set_up": engine._set_up,
        "seed_image_id": engine._seed_image_id,
        "seed_image_bytes": engine._seed_image_bytes,
        "rng": engine.rng.getstate(),
        "queue_entries": engine.queue.entries,
        "queue_next_id": engine.queue._next_id,
        "branch_virgin": engine.branch_cov.virgin,
        "pm_virgin": engine.pm_cov.virgin,
        "stats": engine.stats,
        "tree_root": engine.tree.root_id if engine.tree else None,
        "tree_nodes": engine.tree._nodes if engine.tree else None,
        "store": {
            "by_hash": store._by_hash,
            "layouts": store._layouts,
            "raw_bytes": store.raw_bytes,
            "stored_bytes": store.stored_bytes,
            "duplicates_rejected": store.duplicates_rejected,
            "quarantined": store._quarantined,
            "corrupt_quarantined": store.corrupt_quarantined,
        },
        "staging": storage._staging,
        "staging_meta": (storage._staged_bytes, storage.decompressions,
                         storage.evictions, storage.load_faults),
        "supervisor": engine.supervisor.getstate(),
        "env_faults": (engine.env_faults.getstate()
                       if engine.env_faults is not None else None),
        # Fleet shared-corpus sync state (None for solo campaigns).  The
        # syncer itself is rebuilt by the fleet member on restart (it
        # holds directory paths, which are process configuration); only
        # its progress — next epoch, imported entries, pending
        # publications — is campaign state.
        "fleet": (engine.fleet_sync.getstate()
                  if engine.fleet_sync is not None else None),
        # Corpus-database client progress (None when --corpus-db is
        # off).  Like the fleet syncer, the client object is rebuilt
        # from the engine kwargs; only its progress — seen keys,
        # buffered publishes, sync schedule, degradation — is state.
        "corpusdb": (engine.corpus_db.getstate()
                     if engine.corpus_db is not None else None),
        # Observability: metrics registry values plus the trace bus
        # sequence/sampling phase, so a resumed member replays its
        # interrupted tail with identical metric totals and identical
        # (member, seq) event labels (shard-merge dedup depends on it).
        "observe": {
            "metrics": engine.metrics.snapshot(),
            "metrics_host": engine.metrics.snapshot(host_dependent=True),
            "bus": engine.trace.getstate(),
        },
    }
    return state


def restore_state(engine, state: dict) -> None:
    """Restore a :func:`capture_state` snapshot onto a fresh engine.

    The engine must have been constructed with the same campaign-shaping
    arguments (workload, config, seed inputs, fault plan) as the one
    that was captured — :func:`resume_campaign` guarantees this from the
    checkpoint's embedded metadata.
    """
    from repro.core.testcase import TestCaseTree

    engine.vclock = state["vclock"]
    engine._next_sample = state["next_sample"]
    engine._next_checkpoint = state["next_checkpoint"]
    engine._set_up = state["set_up"]
    engine._seed_image_id = state["seed_image_id"]
    engine._seed_image_bytes = state["seed_image_bytes"]
    engine.rng.setstate(state["rng"])
    engine.queue.entries = list(state["queue_entries"])
    engine.queue._next_id = state["queue_next_id"]
    engine.branch_cov.virgin = dict(state["branch_virgin"])
    engine.pm_cov.virgin = dict(state["pm_virgin"])
    engine.stats = state["stats"]
    # The supervisor and execution backend hold the stats reference for
    # their counters; rebind them to the restored object or their
    # updates would vanish.
    engine.supervisor.stats = engine.stats
    engine.supervisor.setstate(state["supervisor"])
    engine.backend.stats = engine.stats
    # The backend is process state, not campaign state: the checkpoint
    # records its *configuration* (via campaign_meta's engine kwargs),
    # and the resumed engine re-resolved it at construction — possibly
    # degrading to in-process on a platform without fork.  The restored
    # stats must reflect the backend actually running *now*.
    engine.stats.isolation_backend = engine.backend.name
    engine.stats.isolation_fallback = engine._isolation_fallback
    if state["tree_root"] is not None:
        tree = TestCaseTree(state["tree_root"])
        tree._nodes = dict(state["tree_nodes"])
        engine.tree = tree
    else:
        engine.tree = None
    store = engine.storage.store
    store._by_hash = dict(state["store"]["by_hash"])
    store._layouts = dict(state["store"]["layouts"])
    store.raw_bytes = state["store"]["raw_bytes"]
    store.stored_bytes = state["store"]["stored_bytes"]
    store.duplicates_rejected = state["store"]["duplicates_rejected"]
    store._quarantined = dict(state["store"].get("quarantined", {}))
    store.corrupt_quarantined = state["store"].get("corrupt_quarantined", 0)
    engine.storage._staging = OrderedDict(state["staging"])
    (engine.storage._staged_bytes, engine.storage.decompressions,
     engine.storage.evictions, engine.storage.load_faults) = \
        state["staging_meta"]
    if engine.env_faults is not None and state["env_faults"] is not None:
        engine.env_faults.setstate(state["env_faults"])
    # Observability state ("observe" key is absent from pre-layer
    # checkpoints; those resume with fresh metrics and a fresh bus).
    observe = state.get("observe")
    if observe is not None:
        engine.metrics.restore(observe.get("metrics"),
                               observe.get("metrics_host"))
        engine.trace.setstate(observe["bus"])
    # A fleet member attaches its CorpusSyncer *after* resume; the
    # stashed state is consumed by CorpusSyncer.attach().
    engine._fleet_sync_state = state.get("fleet")
    if engine.fleet_sync is not None and engine._fleet_sync_state is not None:
        engine.fleet_sync.setstate(engine._fleet_sync_state)
        engine._fleet_sync_state = None
    # Corpus-database client: rebuilt by the engine constructor from the
    # checkpointed kwargs; restore its progress (the database itself is
    # reopened lazily at the next sync round).
    corpusdb_state = state.get("corpusdb")
    if engine.corpus_db is not None and corpusdb_state is not None:
        engine.corpus_db.setstate(corpusdb_state)


def write_engine_checkpoint(path: str, engine) -> None:
    """Snapshot ``engine`` and atomically persist it to ``path``.

    The execution backend itself is process state (pipes, worker PIDs)
    and is never captured; its *configuration* rides along twice — in
    ``campaign_meta``'s engine kwargs (which is what resume rebuilds
    from) and, purely descriptively, as the resolved ``backend`` record
    so an operator inspecting a checkpoint can see how the campaign was
    actually executing.
    """
    rotate_previous(path)
    write_checkpoint(path, {
        "version": FORMAT_VERSION,
        "meta": dict(engine.campaign_meta),
        "backend": engine.backend.describe(),
        "state": capture_state(engine),
    })


def resume_campaign(path: str, injector=None, allow_previous: bool = True):
    """Rebuild the checkpointed campaign, ready to continue running.

    Returns the restored engine (a
    :class:`~repro.core.pmfuzz.PMFuzzEngine` or plain
    :class:`~repro.fuzz.engine.FuzzEngine`, per the checkpointed
    configuration); call ``run(budget)`` on it to continue the campaign.
    ``injector`` re-attaches a workload-level BugInjector, which is
    process state a checkpoint cannot carry.

    A damaged primary checkpoint (torn write, bit rot) falls back to
    the ``.prev`` rotation when ``allow_previous`` is set; only when
    both are unusable does :class:`CheckpointError` propagate.
    """
    from repro.core.config import config_by_name
    from repro.core.pmfuzz import build_engine

    payload = read_checkpoint_with_fallback(path,
                                            allow_previous=allow_previous)
    meta = payload["meta"]
    if not meta.get("workload"):
        raise CheckpointError(
            f"checkpoint {path!r} carries no campaign metadata; it was "
            "taken from a hand-built engine and cannot self-resume")
    engine = build_engine(
        meta["workload"],
        config_by_name(meta["config"]),
        bugs=frozenset(meta["bugs"]),
        seed_inputs=[bytes(s) for s in meta["seed_inputs"]],
        injector=injector,
        fault_plan=meta["fault_plan"],
        **meta["engine_kwargs"],
    )
    restore_state(engine, payload["state"])
    return engine
