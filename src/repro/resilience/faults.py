"""Deterministic environment-fault injection for the campaign harness.

The workload-level :class:`~repro.workloads.synthetic.BugInjector` plants
bugs *inside the program under test*; this module is its counterpart for
the *harness environment*: the storage tier dropping reads and writes,
image bytes coming back truncated or corrupted, decompression failing
transiently, the executor's fork-server analogue dying, or a target
hanging past its time budget.  A real 4-hour AFL++ campaign shrugs all
of these off; :class:`EnvFaultInjector` lets this reproduction prove the
same about its own campaign loop (and lets the resilience tests exercise
every failure point systematically, in the spirit of WITCHER's
exhaustive failure-point exploration).

Faults are driven by a :class:`FaultPlan` — a list of ``(site, rate,
burst)`` specs plus a seed — and drawn from an RNG that is *separate*
from the campaign RNG, so an injected fault never perturbs mutation or
queue-selection decisions: a campaign that recovers from every fault
covers the same paths as a fault-free campaign with the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (ExecTimeoutError, FuzzerError, HarnessFaultError,
                          StorageFaultError)

#: Every named fault site in the harness.
FAULT_SITES: Tuple[str, ...] = (
    "storage-save",    # ImageStore.put: write I/O error (EIO on the SSD tier)
    "storage-load",    # ImageStore.get: read I/O error
    "storage-corrupt",  # ImageStore.get: truncated/corrupted stored bytes
    "decompress",      # ImageStore.get: transient LZ77 decompression failure
    "exec-fault",      # Executor.run: the harness process died (fork server)
    "exec-hang",       # Executor.run: virtual-time hang (target never exits)
    "disk-full",       # ImageStore.put / checkpoint / corpusdb publish: ENOSPC
    "corpusdb-publish",  # CorpusDatabase.publish: entry write I/O error
    "corpusdb-read",     # CorpusDatabase.get / scan: read I/O error
    "corpusdb-journal",  # IntentJournal.begin: intent write I/O error
    "corpusdb-compact",  # CorpusDatabase.compact: tier-move I/O error
    "serve-journal",     # SubmissionJournal.append: intent write I/O error
    "serve-accept",      # daemon admission path: transient accept failure
    "serve-spawn",       # daemon campaign spawn: fork/launch failure
)

#: One-line description per fault site (``python -m repro faults list``).
FAULT_SITE_DESCRIPTIONS: Dict[str, str] = {
    "storage-save": "ImageStore.put: write I/O error (EIO on the SSD tier)",
    "storage-load": "ImageStore.get: read I/O error",
    "storage-corrupt": "ImageStore.get: truncated/corrupted stored bytes",
    "decompress": "ImageStore.get: transient LZ77 decompression failure",
    "exec-fault": "Executor.run: the harness process died (fork server)",
    "exec-hang": "Executor.run: virtual-time hang (target never exits)",
    "disk-full": "ImageStore.put / checkpoint / corpusdb publish: ENOSPC",
    "corpusdb-publish": "CorpusDatabase.publish: entry write I/O error",
    "corpusdb-read": "CorpusDatabase.get / scan: read I/O error",
    "corpusdb-journal": "IntentJournal.begin: intent write I/O error",
    "corpusdb-compact": "CorpusDatabase.compact: tier-move I/O error",
    "serve-journal": "SubmissionJournal.append: intent write I/O error",
    "serve-accept": "daemon admission path: transient accept failure",
    "serve-spawn": "daemon campaign spawn: fork/launch failure",
}

#: Sites drawn from the *host* fault stream (see :meth:`check_host`).
HOST_FAULT_SITES: Tuple[str, ...] = (
    "disk-full",
    "corpusdb-publish",
    "corpusdb-read",
    "corpusdb-journal",
    "corpusdb-compact",
    "serve-journal",
    "serve-accept",
    "serve-spawn",
)

#: Spec-string aliases expanding to groups of sites.
SITE_GROUPS: Dict[str, Tuple[str, ...]] = {
    "all": FAULT_SITES,
    "storage": ("storage-save", "storage-load", "storage-corrupt",
                "disk-full"),
    "exec": ("exec-fault", "exec-hang"),
    "corpusdb": ("corpusdb-publish", "corpusdb-read", "corpusdb-journal",
                 "corpusdb-compact"),
    "serve": ("serve-journal", "serve-accept", "serve-spawn"),
}


@dataclass(frozen=True)
class FaultSpec:
    """Injection policy for one site."""

    site: str
    rate: float  #: per-check Bernoulli probability of triggering
    burst: int = 1  #: consecutive faults once triggered (SSD brown-out)

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise FuzzerError(f"unknown fault site {self.site!r}; "
                              f"known: {list(FAULT_SITES)}")
        if not 0.0 <= self.rate <= 1.0:
            raise FuzzerError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.burst < 1:
            raise FuzzerError(f"burst must be >= 1, got {self.burst}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded fault-injection plan for one campaign."""

    specs: Tuple[FaultSpec, ...]
    seed: int = 0xFA017

    @classmethod
    def parse(cls, text: str, seed: int = 0xFA017) -> "FaultPlan":
        """Parse a ``site:rate[:burst]`` comma list.

        ``site`` is one of :data:`FAULT_SITES` or a group alias
        (``all``, ``storage``, ``exec``), e.g. ``"all:0.01"`` or
        ``"storage-load:0.05:3,exec-fault:0.01"``.
        """
        specs: List[FaultSpec] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            fields = part.split(":")
            if len(fields) not in (2, 3):
                raise FuzzerError(
                    f"bad fault spec {part!r}: expected site:rate[:burst]")
            try:
                site, rate = fields[0], float(fields[1])
                burst = int(fields[2]) if len(fields) == 3 else 1
            except ValueError:
                raise FuzzerError(
                    f"bad fault spec {part!r}: rate must be a number "
                    f"and burst an integer") from None
            for expanded in SITE_GROUPS.get(site, (site,)):
                specs.append(FaultSpec(expanded, rate, burst))
        if not specs:
            raise FuzzerError(f"empty fault plan {text!r}")
        return cls(tuple(specs), seed=seed)


def as_fault_plan(plan: Union[None, str, FaultPlan],
                  seed: int = 0xFA017) -> Optional[FaultPlan]:
    """Coerce a CLI spec string / FaultPlan / None to a FaultPlan."""
    if plan is None or isinstance(plan, FaultPlan):
        return plan
    return FaultPlan.parse(plan, seed=seed)


class EnvFaultInjector:
    """Seeded, deterministic fault source consulted at every named site.

    The injector is pure policy: the instrumented components
    (:class:`~repro.core.dedup.ImageStore`,
    :class:`~repro.fuzz.executor.Executor`) call :meth:`check` /
    :meth:`filter_bytes` at their fault sites; everything else — retry,
    backoff, quarantine — lives in the supervisor.
    """

    #: XOR'd into the plan seed to derive the independent host stream.
    _HOST_STREAM_SALT = 0x5D15C

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        #: Second, independent RNG for *host-side* sites (checkpoint
        #: writes, corpus-database I/O).  Those sites are consulted on a
        #: cadence that depends on host configuration (checkpoint
        #: interval, ``--corpus-db`` on/off), so drawing them from the
        #: campaign fault stream would shift every later campaign-class
        #: draw and break the bit-identity contracts.  A separate stream
        #: keeps the campaign draws untouched no matter how often the
        #: host sites fire.
        self._host_rng = random.Random(plan.seed ^ self._HOST_STREAM_SALT)
        self._specs: Dict[str, FaultSpec] = {s.site: s for s in plan.specs}
        #: remaining forced faults per site (burst mode), per stream.
        self._burst_left: Dict[str, int] = {}
        self._host_burst_left: Dict[str, int] = {}
        #: faults actually fired, per site (observability + tests).
        self.fired: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _draw(self, site: str, rng: random.Random,
              burst_left: Dict[str, int]) -> bool:
        spec = self._specs.get(site)
        if spec is None:
            return False
        if burst_left.get(site, 0) > 0:
            burst_left[site] -= 1
        elif rng.random() < spec.rate:
            burst_left[site] = spec.burst - 1
        else:
            return False
        self.fired[site] = self.fired.get(site, 0) + 1
        return True

    def should_fault(self, site: str) -> bool:
        """One deterministic draw for ``site`` (burst-aware)."""
        return self._draw(site, self._rng, self._burst_left)

    def should_fault_host(self, site: str) -> bool:
        """Like :meth:`should_fault` but drawn from the host stream."""
        return self._draw(site, self._host_rng, self._host_burst_left)

    def _raise_for(self, site: str) -> None:
        if site == "exec-hang":
            raise ExecTimeoutError(site=site)
        if site == "exec-fault":
            raise HarnessFaultError(
                "injected harness death (fork server lost the target)",
                site=site, transient=True)
        if site == "disk-full":
            raise StorageFaultError(
                "injected ENOSPC: no space left on device",
                site=site, transient=True)
        raise StorageFaultError(f"injected storage fault at {site}",
                                site=site, transient=True)

    def check(self, site: str) -> None:
        """Raise the site's error class if a fault fires here."""
        if self.should_fault(site):
            self._raise_for(site)

    def check_host(self, site: str) -> None:
        """:meth:`check`, but drawn from the host fault stream.

        Used by the checkpoint writer and the corpus database, whose
        consultation cadence is a host configuration choice rather than
        part of the deterministic campaign trajectory.
        """
        if self.should_fault_host(site):
            self._raise_for(site)

    def filter_bytes(self, site: str, data: bytes) -> bytes:
        """Return ``data``, possibly truncated or bit-flipped.

        Models a torn read from the SSD tier: the *stored* bytes are
        intact, only this read observes garbage — so a retry succeeds.
        """
        if not self.should_fault(site) or not data:
            return data
        if self._rng.random() < 0.5:
            return data[: self._rng.randrange(len(data))]
        corrupted = bytearray(data)
        for _ in range(1 + self._rng.randrange(8)):
            corrupted[self._rng.randrange(len(corrupted))] ^= \
                1 << self._rng.randrange(8)
        return bytes(corrupted)

    # ------------------------------------------------------------------
    def total_fired(self) -> int:
        """Total faults injected across all sites."""
        return sum(self.fired.values())

    def getstate(self):
        """Checkpointable snapshot (both RNG streams + burst + fired)."""
        return (self._rng.getstate(), dict(self._burst_left),
                dict(self.fired), self._host_rng.getstate(),
                dict(self._host_burst_left))

    def setstate(self, state) -> None:
        rng_state, burst, fired = state[:3]
        self._rng.setstate(rng_state)
        self._burst_left = dict(burst)
        self.fired = dict(fired)
        if len(state) > 3:  # pre-host-stream checkpoints carry 3 fields
            self._host_rng.setstate(state[3])
            self._host_burst_left = dict(state[4])
