"""Campaign resilience: the harness survives its own environment.

The paper's 4-hour AFL++ campaigns ride on a fork server that tolerates
target crashes, hangs and SSD pressure as a matter of course.  This
package gives the reproduction's campaign loop the same properties, in
three cooperating pieces:

* :mod:`repro.resilience.faults` — :class:`EnvFaultInjector`, a seeded,
  deterministic *environment*-fault source (distinct from the
  workload-level synthetic-bug injector): storage I/O errors, truncated
  or corrupted image bytes, transient decompression failures, executor
  deaths and virtual-time hangs, driven by a ``(site, rate, burst,
  seed)`` fault plan;
* :mod:`repro.resilience.supervisor` — :class:`SupervisedExecutor`,
  which classifies harness failures, retries transient ones with
  bounded exponential backoff charged to the virtual clock, enforces a
  per-test-case time budget, and quarantines inputs that repeatedly
  kill the harness;
* :mod:`repro.resilience.checkpoint` — atomic (write-tmp + fsync +
  rename, checksummed) snapshot/restore of complete campaign state,
  with the invariant that resume-after-kill reproduces the
  uninterrupted campaign bit-for-bit.
"""

from repro.resilience.checkpoint import (read_checkpoint, resume_campaign,
                                         write_checkpoint,
                                         write_engine_checkpoint)
from repro.resilience.faults import (FAULT_SITES, EnvFaultInjector,
                                     FaultPlan, FaultSpec, as_fault_plan)
from repro.resilience.supervisor import SupervisedExecutor

__all__ = [
    "EnvFaultInjector",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "SupervisedExecutor",
    "as_fault_plan",
    "read_checkpoint",
    "resume_campaign",
    "write_checkpoint",
    "write_engine_checkpoint",
]
