"""Supervised execution: the campaign survives its own harness.

:class:`SupervisedExecutor` wraps the raw
:class:`~repro.fuzz.executor.Executor` the way AFL++'s top-level loop
wraps its fork server: failures of the *harness* (not the program under
test) are classified, transient ones are retried with bounded
exponential backoff, hangs are charged one timeout budget and dropped,
and inputs that repeatedly kill the harness are quarantined — the
campaign degrades instead of dying.

Every recovery action is charged to the virtual clock through
:class:`~repro.fuzz.executor.CostModel`, so resilience has an honest
price in the Figure-13 time axis: a campaign fuzzing through a 1 %
fault rate finishes slightly behind a fault-free one, exactly as a real
campaign on a flaky SSD would.

Failure taxonomy (see :mod:`repro.errors`):

* ``HarnessFaultError(transient=True)`` — retried up to ``max_retries``
  times with exponential backoff;
* ``ExecTimeoutError`` — a virtual hang; one per-test-case time budget
  is charged, no retry (re-running a hang burns another full budget);
* any other :class:`~repro.errors.ReproError` escaping the executor —
  classified as a non-transient harness fault;
* a result whose honest cost exceeds the per-test-case budget is
  converted to a timeout after the fact.

All of these produce a :class:`~repro.fuzz.executor.ExecResult` with
``outcome=RunOutcome.HARNESS_FAULT`` and empty coverage (coverage from a
dying harness is not trustworthy), so the engine's feedback loop treats
them as uninteresting executions and moves on.
"""

from __future__ import annotations

import traceback
from typing import Dict, Optional, Set, Tuple

from repro.errors import ExecTimeoutError, HarnessFaultError, ReproError
from repro.fuzz.executor import CostModel, ExecResult, Executor
from repro.observe.bus import NULL_BUS
from repro.pmem.image import PMImage
from repro.workloads.base import RunOutcome

#: (input image id, input bytes): identifies one test case for quarantine.
QuarantineKey = Tuple[str, bytes]


class SupervisedExecutor:
    """Failure-classifying, retrying, quarantining executor wrapper.

    Args:
        executor: the raw campaign executor.
        stats: optional :class:`~repro.fuzz.stats.FuzzStats` whose
            ``harness_faults`` / ``retries`` / ``timeouts`` /
            ``quarantined`` counters are maintained here.
        max_retries: bound on re-executions after transient faults.
        exec_vtime_budget: per-test-case virtual-time budget (the
            analogue of AFL++'s ``-t`` timeout; generous by default so
            honest runs never trip it).
        quarantine_threshold: consecutive harness kills by the same
            (image, input) pair before it is quarantined.
        backend: the :class:`~repro.isolation.backend.ExecutionBackend`
            executions are dispatched through (default: in-process).
            The fork-server backend converts real runaway targets into
            :class:`~repro.errors.ExecTimeoutError` /
            :class:`~repro.errors.WorkerCrashError`, which land in the
            same classification paths as the virtual faults below —
            wall-clock watchdog kills share the timeout accounting, and
            worker deaths share the retry/quarantine machinery.
    """

    def __init__(
        self,
        executor: Executor,
        stats=None,
        max_retries: int = 3,
        exec_vtime_budget: float = 0.25,
        quarantine_threshold: int = 3,
        backend=None,
    ) -> None:
        from repro.isolation.backend import InProcessBackend

        self.executor = executor
        self.backend = (backend if backend is not None
                        else InProcessBackend(executor))
        self.cost_model: CostModel = executor.cost_model
        self.stats = stats
        self.max_retries = max_retries
        self.exec_vtime_budget = exec_vtime_budget
        self.quarantine_threshold = quarantine_threshold
        #: consecutive harness-kill strikes per test case.
        self._strikes: Dict[QuarantineKey, int] = {}
        self.quarantined: Set[QuarantineKey] = set()
        #: Trace hook points (attached by the engine, else inert): every
        #: absorbed fault is reported as a ``fault_injected`` event at
        #: the engine's current virtual time.
        self.trace = NULL_BUS
        self.vclock_fn = None

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def _count(self, attr: str, n: int = 1) -> None:
        if self.stats is not None:
            setattr(self.stats, attr, getattr(self.stats, attr) + n)

    def _strike(self, key: Optional[QuarantineKey]) -> None:
        if key is None:
            return
        strikes = self._strikes.get(key, 0) + 1
        self._strikes[key] = strikes
        if (strikes >= self.quarantine_threshold
                and key not in self.quarantined):
            self.quarantined.add(key)
            self._count("quarantined")

    def _clear_strikes(self, key: Optional[QuarantineKey]) -> None:
        if key is not None:
            self._strikes.pop(key, None)

    def _emit_fault(self, kind: str, detail: str = "") -> None:
        vtime = self.vclock_fn() if self.vclock_fn is not None else 0.0
        self.trace.emit("fault_injected", vtime, fault=kind,
                        detail=detail[:200])

    def is_quarantined(self, image_id: str, data: bytes) -> bool:
        return (image_id, bytes(data)) in self.quarantined

    # ------------------------------------------------------------------
    # Supervised execution
    # ------------------------------------------------------------------
    def run(self, image: PMImage, data: bytes, *, image_id: str = "",
            **kwargs) -> ExecResult:
        """Like :meth:`Executor.run`, but the campaign always gets a
        result back — never an escaped harness exception."""
        key: QuarantineKey = (image_id, bytes(data))
        if key in self.quarantined:
            return self._fault_result(
                self.cost_model.fault_overhead,
                "quarantined: input repeatedly killed the harness")
        return self._supervised(
            lambda: self.backend.run(image, data, **kwargs), key)

    def run_raw_image(self, image_bytes: bytes, data: bytes) -> ExecResult:
        """Supervised :meth:`Executor.run_raw_image` (direct ImgFuzz)."""
        key: QuarantineKey = ("", bytes(image_bytes))
        if key in self.quarantined:
            return self._fault_result(
                self.cost_model.fault_overhead,
                "quarantined: input repeatedly killed the harness")
        return self._supervised(
            lambda: self.backend.run_raw_image(image_bytes, data), key)

    def _supervised(self, attempt_fn, key: QuarantineKey) -> ExecResult:
        recovery_cost = 0.0
        attempt = 0
        while True:
            try:
                result = attempt_fn()
            except ExecTimeoutError as exc:
                self._count("harness_faults")
                self._count("timeouts")
                self._strike(key)
                self._emit_fault("timeout", str(exc))
                return self._fault_result(
                    recovery_cost + self.exec_vtime_budget, str(exc))
            except HarnessFaultError as exc:
                self._count("harness_faults")
                if getattr(exc, "site", "") == "disk-full":
                    self._count("disk_full_faults")
                self._emit_fault("harness_fault", str(exc))
                if exc.transient and attempt < self.max_retries:
                    attempt += 1
                    self._count("retries")
                    recovery_cost += (self.cost_model.fault_overhead
                                      + self.cost_model.retry_backoff(attempt))
                    continue
                self._strike(key)
                return self._fault_result(
                    recovery_cost + self.cost_model.fault_overhead, str(exc))
            except ReproError as exc:
                # Anything else escaping the executor is a harness bug;
                # contain it like a non-transient fault.
                self._count("harness_faults")
                self._strike(key)
                self._emit_fault("harness_bug", str(exc))
                return self._fault_result(
                    recovery_cost + self.cost_model.fault_overhead,
                    traceback.format_exc())
            if result.outcome is RunOutcome.HARNESS_FAULT:
                # The executor classified an escaped workload exception.
                self._count("harness_faults")
                self._strike(key)
                self._emit_fault("workload_fault", result.error or "")
            elif result.cost > self.exec_vtime_budget:
                # Honest cost blew the per-test-case budget: a hang.
                self._count("harness_faults")
                self._count("timeouts")
                self._strike(key)
                self._emit_fault("budget_overrun",
                                 f"cost {result.cost:.4f}vs")
                return self._fault_result(
                    recovery_cost + self.exec_vtime_budget,
                    f"execution cost {result.cost:.4f}vs exceeded budget "
                    f"{self.exec_vtime_budget:.4f}vs")
            else:
                self._clear_strikes(key)
            result.cost += recovery_cost
            return result

    @staticmethod
    def _fault_result(cost: float, error: str) -> ExecResult:
        return ExecResult(outcome=RunOutcome.HARNESS_FAULT, cost=cost,
                          error=error)

    # ------------------------------------------------------------------
    # Supervised storage
    # ------------------------------------------------------------------
    def load_image(self, storage, image_id: str):
        """Supervised ``storage.load``; returns ``(image, vtime_cost)``.

        Raises :class:`HarnessFaultError` (with ``.vcost`` set to the
        virtual time already burned) once retries are exhausted.
        """
        return self._supervised_io(lambda: storage.load(image_id))

    def save_image(self, storage, image: PMImage):
        """Supervised ``storage.save``; returns ``((id, is_new), cost)``."""
        return self._supervised_io(lambda: storage.save(image))

    def _supervised_io(self, io_fn):
        recovery_cost = 0.0
        attempt = 0
        while True:
            try:
                return io_fn(), recovery_cost
            except HarnessFaultError as exc:
                self._count("harness_faults")
                if getattr(exc, "site", "") == "disk-full":
                    self._count("disk_full_faults")
                self._emit_fault("storage_fault", str(exc))
                if exc.transient and attempt < self.max_retries:
                    attempt += 1
                    self._count("retries")
                    recovery_cost += (self.cost_model.fault_overhead
                                      + self.cost_model.retry_backoff(attempt))
                    continue
                exc.vcost = recovery_cost + self.cost_model.fault_overhead
                raise

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def getstate(self):
        return (dict(self._strikes), set(self.quarantined))

    def setstate(self, state) -> None:
        strikes, quarantined = state
        self._strikes = dict(strikes)
        self.quarantined = set(quarantined)
