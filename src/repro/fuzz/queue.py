"""The fuzzing queue with favored-entry culling.

Queue entries pair input command bytes with the PM image they execute on
(the image is referenced by its dedup hash in the campaign's image
store).  Selection is weighted by the Algorithm-2 ``Favored`` value:

* 2 — covered an unseen PM counter-map slot (high priority),
* 1 — produced a significantly different counter (medium),
* 0 — only interesting to the branch-coverage logic (low).

After each culling pass, low-priority entries beyond a budget are
discarded "unless AFL++'s branch coverage logic favors them"
(Section 4.3) — here: unless they were the first to reach a branch edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.fuzz.rng import DeterministicRandom

#: Selection weights per Favored level.
_WEIGHTS = {0: 1, 1: 4, 2: 10}


@dataclass
class QueueEntry:
    """One saved test case."""

    entry_id: int
    data: bytes  #: raw command bytes (or raw image bytes for ImgFuzz)
    image_id: str  #: dedup hash of the input PM image ("" = none)
    favored: int = 0  #: Algorithm-2 priority
    branch_favored: bool = False  #: first to reach some branch edge
    parent: Optional[int] = None
    depth: int = 0
    from_crash_image: bool = False
    fuzz_rounds: int = 0  #: times this entry has been mutated
    created_at: float = 0.0  #: virtual time when this entry was saved


class FuzzQueue:
    """Weighted test-case queue with periodic culling."""

    def __init__(self, max_low_priority: int = 256) -> None:
        self.entries: List[QueueEntry] = []
        self.max_low_priority = max_low_priority
        self._next_id = 0

    def __len__(self) -> int:
        return len(self.entries)

    def add(
        self,
        data: bytes,
        image_id: str = "",
        favored: int = 0,
        branch_favored: bool = False,
        parent: Optional[int] = None,
        from_crash_image: bool = False,
        created_at: float = 0.0,
    ) -> QueueEntry:
        """Append a new test case and return it."""
        depth = 0
        if parent is not None:
            parent_entry = self.get(parent)
            if parent_entry is not None:
                depth = parent_entry.depth + 1
        entry = QueueEntry(
            entry_id=self._next_id,
            data=data,
            image_id=image_id,
            favored=favored,
            branch_favored=branch_favored,
            parent=parent,
            depth=depth,
            from_crash_image=from_crash_image,
            created_at=created_at,
        )
        self._next_id += 1
        self.entries.append(entry)
        return entry

    def get(self, entry_id: int) -> Optional[QueueEntry]:
        """Look up an entry by ID (None if culled)."""
        for entry in self.entries:
            if entry.entry_id == entry_id:
                return entry
        return None

    def select(self, rng: DeterministicRandom) -> QueueEntry:
        """Pick the next entry to mutate, weighted by priority.

        Entries that have been fuzzed less are preferred within a weight
        class (AFL's "pending favored" behaviour).
        """
        if not self.entries:
            raise IndexError("queue is empty")
        pending = [e for e in self.entries if e.fuzz_rounds == 0 and
                   (e.favored == 2 or e.branch_favored)]
        pool = pending if pending else self.entries
        # Depth bonus: deeper test-case-tree entries carry more
        # accumulated persistent state, and PMFuzz "continues to
        # recursively operate on existing PM images" (Section 3.1) — so
        # lineage depth compounds instead of restarting from the seed.
        weights = [_WEIGHTS[e.favored] + (2 if e.branch_favored else 0)
                   + min(e.depth, 12)
                   for e in pool]
        total = sum(weights)
        pick = rng.randrange(total)
        acc = 0
        for entry, weight in zip(pool, weights):
            acc += weight
            if pick < acc:
                return entry
        return pool[-1]

    def cull(self) -> int:
        """Discard surplus low-priority entries; returns how many.

        Keeps every favored entry (PM priority > 0 or branch-favored) and
        at most ``max_low_priority`` of the rest (most recent first, so
        the campaign keeps momentum).
        """
        low = [e for e in self.entries
               if e.favored == 0 and not e.branch_favored]
        excess = len(low) - self.max_low_priority
        if excess <= 0:
            return 0
        victims = set(id(e) for e in low[:excess])
        self.entries = [e for e in self.entries if id(e) not in victims]
        return excess
