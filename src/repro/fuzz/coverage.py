"""Global coverage bookkeeping (the virgin-map logic of AFL).

Both coverage signals — the branch edge map and the PM counter-map — are
64 Ki arrays of 8-bit saturating counters per execution.  This module
keeps the *global* view across a campaign: for each slot, the set of
count buckets ever observed.  A new slot (never hit before) or a new
bucket at a known slot is "new coverage", the event that makes a test
case interesting.

The same class serves Algorithm 2: ``classify`` distinguishes *unseen*
slots (priority 2) from *different-counter* slots (priority 1).

Executions report coverage *sparsely* — as (slot, count) pairs for the
slots actually hit — so a campaign never scans the full 64 Ki map.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.instrument.counter_map import BUCKET_LUT_NP, bucket_of

try:  # The vector core needs numpy; the scalar algebra never does.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less hosts
    _np = None

MAP_SIZE = 1 << 16

#: Sparse per-execution coverage: (slot, raw count) pairs.
SparseMap = Iterable[Tuple[int, int]]


class GlobalCoverage:
    """Accumulated coverage over one fuzzing campaign."""

    def __init__(self) -> None:
        #: slot -> bitmask of count buckets ever seen (absent = virgin).
        self.virgin: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def classify(self, sparse: SparseMap) -> Tuple[bool, bool, List[int]]:
        """Compare one execution's coverage against the global state.

        Returns ``(has_new_slot, has_new_bucket, new_slots)`` without
        modifying the global state:

        * ``has_new_slot`` — some populated slot was never hit before
          (Algorithm 2's *unseen*);
        * ``has_new_bucket`` — a known slot was hit with a significantly
          different count (a new AFL bucket — *diffCounter*).
        """
        new_slot = False
        new_bucket = False
        new_slots: List[int] = []
        virgin = self.virgin
        for slot, count in sparse:
            if not count:
                continue
            mask = 1 << (bucket_of(count) & 7)
            seen = virgin.get(slot, 0)
            if seen == 0:
                new_slot = True
                new_slots.append(slot)
            elif not seen & mask:
                new_bucket = True
        return new_slot, new_bucket, new_slots

    def update(self, sparse: SparseMap) -> Tuple[bool, bool]:
        """Merge one execution's coverage; returns (new_slot, new_bucket)."""
        new_slot = False
        new_bucket = False
        virgin = self.virgin
        for slot, count in sparse:
            if not count:
                continue
            mask = 1 << (bucket_of(count) & 7)
            seen = virgin.get(slot, 0)
            if seen == 0:
                new_slot = True
                virgin[slot] = mask
            elif not seen & mask:
                new_bucket = True
                virgin[slot] = seen | mask
        return new_slot, new_bucket

    # ------------------------------------------------------------------
    @property
    def slots_covered(self) -> int:
        """Total distinct slots ever hit (the Figure 13 y-axis when this
        instance tracks the PM counter-map)."""
        return len(self.virgin)

    def covered_slots(self) -> Iterable[int]:
        """Iterate the indices of all covered slots."""
        return iter(self.virgin)


class VectorGlobalCoverage:
    """Array-backed virgin map (the ``vector`` exec core).

    The virgin state is a dense 64 Ki bytearray of bucket bitmasks
    (0 = virgin slot) shadowed by a numpy view.  Ordinary per-execution
    sparse maps (tens to a few hundred slots) run the scalar loop
    against the bytearray — numpy's fixed call overhead loses at that
    size — while large maps turn into slot/mask arrays, bucket every
    count through the LUT as one vectorized table lookup, and
    compare/merge against the virgin array with one gather and one
    scatter.

    The dict façade is kept for the checkpoint layer: ``virgin`` is a
    property whose getter renders the sparse dict the scalar class
    stores natively and whose setter loads one, so checkpoints written
    under either core restore under either core.
    """

    #: Sparse maps at or under this many pairs take the scalar loop.
    _BULK_PAIRS = 192

    def __init__(self) -> None:
        self._virgin = bytearray(MAP_SIZE)
        self._virgin_np = _np.frombuffer(self._virgin, dtype=_np.uint8)

    # ------------------------------------------------------------------
    @property
    def virgin(self) -> Dict[int, int]:
        """slot -> bucket bitmask, as the scalar class stores it."""
        arr = self._virgin
        return {slot: arr[slot]
                for slot in _np.flatnonzero(self._virgin_np).tolist()}

    @virgin.setter
    def virgin(self, mapping: Dict[int, int]) -> None:
        arr = bytearray(MAP_SIZE)
        for slot, mask in mapping.items():
            arr[slot] = mask
        self._virgin = arr
        self._virgin_np = _np.frombuffer(arr, dtype=_np.uint8)

    # ------------------------------------------------------------------
    @staticmethod
    def _arrays(pairs):
        """Populated (slot, count) pairs -> (slots, bucket-mask) arrays."""
        slots = _np.array([p[0] for p in pairs], dtype=_np.int64)
        # Counts beyond 255 cannot come from the 8-bit maps, but the
        # scalar bucket_of accepts them; every count >= 128 lands in the
        # top bucket either way, so clamping preserves the oracle.
        counts = _np.minimum(
            _np.array([p[1] for p in pairs], dtype=_np.int64), 255)
        masks = _np.left_shift(
            1, BUCKET_LUT_NP[counts] & 7).astype(_np.uint8)
        return slots, masks

    def classify(self, sparse: SparseMap) -> Tuple[bool, bool, List[int]]:
        """Compare one execution's coverage against the global state.

        Same contract as :meth:`GlobalCoverage.classify`; ``new_slots``
        preserves the sparse iteration order.
        """
        pairs = [(slot, count) for slot, count in sparse if count]
        if not pairs:
            return False, False, []
        if len(pairs) <= self._BULK_PAIRS:
            new_slot = False
            new_bucket = False
            new_slots: List[int] = []
            virgin = self._virgin
            for slot, count in pairs:
                mask = 1 << (bucket_of(count) & 7)
                seen = virgin[slot]
                if seen == 0:
                    new_slot = True
                    new_slots.append(slot)
                elif not seen & mask:
                    new_bucket = True
            return new_slot, new_bucket, new_slots
        slots, masks = self._arrays(pairs)
        seen = self._virgin_np[slots]
        virgin_mask = seen == 0
        new_slot = bool(virgin_mask.any())
        new_bucket = bool((~virgin_mask & ((seen & masks) == 0)).any())
        return new_slot, new_bucket, slots[virgin_mask].tolist()

    def update(self, sparse: SparseMap) -> Tuple[bool, bool]:
        """Merge one execution's coverage; returns (new_slot, new_bucket)."""
        pairs = [(slot, count) for slot, count in sparse if count]
        if not pairs:
            return False, False
        if len(pairs) <= self._BULK_PAIRS:
            new_slot = False
            new_bucket = False
            virgin = self._virgin
            for slot, count in pairs:
                mask = 1 << (bucket_of(count) & 7)
                seen = virgin[slot]
                if seen == 0:
                    new_slot = True
                    virgin[slot] = mask
                elif not seen & mask:
                    new_bucket = True
                    virgin[slot] = seen | mask
            return new_slot, new_bucket
        slots, masks = self._arrays(pairs)
        seen = self._virgin_np[slots]
        virgin_mask = seen == 0
        new_slot = bool(virgin_mask.any())
        new_bucket = bool((~virgin_mask & ((seen & masks) == 0)).any())
        _np.bitwise_or.at(self._virgin_np, slots, masks)
        return new_slot, new_bucket

    # ------------------------------------------------------------------
    @property
    def slots_covered(self) -> int:
        """Total distinct slots ever hit."""
        return int(_np.count_nonzero(self._virgin_np))

    def covered_slots(self) -> Iterable[int]:
        """Iterate the indices of all covered slots."""
        return iter(_np.flatnonzero(self._virgin_np).tolist())
