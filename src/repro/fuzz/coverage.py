"""Global coverage bookkeeping (the virgin-map logic of AFL).

Both coverage signals — the branch edge map and the PM counter-map — are
64 Ki arrays of 8-bit saturating counters per execution.  This module
keeps the *global* view across a campaign: for each slot, the set of
count buckets ever observed.  A new slot (never hit before) or a new
bucket at a known slot is "new coverage", the event that makes a test
case interesting.

The same class serves Algorithm 2: ``classify`` distinguishes *unseen*
slots (priority 2) from *different-counter* slots (priority 1).

Executions report coverage *sparsely* — as (slot, count) pairs for the
slots actually hit — so a campaign never scans the full 64 Ki map.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.instrument.counter_map import bucket_of

MAP_SIZE = 1 << 16

#: Sparse per-execution coverage: (slot, raw count) pairs.
SparseMap = Iterable[Tuple[int, int]]


class GlobalCoverage:
    """Accumulated coverage over one fuzzing campaign."""

    def __init__(self) -> None:
        #: slot -> bitmask of count buckets ever seen (absent = virgin).
        self.virgin: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def classify(self, sparse: SparseMap) -> Tuple[bool, bool, List[int]]:
        """Compare one execution's coverage against the global state.

        Returns ``(has_new_slot, has_new_bucket, new_slots)`` without
        modifying the global state:

        * ``has_new_slot`` — some populated slot was never hit before
          (Algorithm 2's *unseen*);
        * ``has_new_bucket`` — a known slot was hit with a significantly
          different count (a new AFL bucket — *diffCounter*).
        """
        new_slot = False
        new_bucket = False
        new_slots: List[int] = []
        virgin = self.virgin
        for slot, count in sparse:
            if not count:
                continue
            mask = 1 << (bucket_of(count) & 7)
            seen = virgin.get(slot, 0)
            if seen == 0:
                new_slot = True
                new_slots.append(slot)
            elif not seen & mask:
                new_bucket = True
        return new_slot, new_bucket, new_slots

    def update(self, sparse: SparseMap) -> Tuple[bool, bool]:
        """Merge one execution's coverage; returns (new_slot, new_bucket)."""
        new_slot = False
        new_bucket = False
        virgin = self.virgin
        for slot, count in sparse:
            if not count:
                continue
            mask = 1 << (bucket_of(count) & 7)
            seen = virgin.get(slot, 0)
            if seen == 0:
                new_slot = True
                virgin[slot] = mask
            elif not seen & mask:
                new_bucket = True
                virgin[slot] = seen | mask
        return new_slot, new_bucket

    # ------------------------------------------------------------------
    @property
    def slots_covered(self) -> int:
        """Total distinct slots ever hit (the Figure 13 y-axis when this
        instance tracks the PM counter-map)."""
        return len(self.virgin)

    def covered_slots(self) -> Iterable[int]:
        """Iterate the indices of all covered slots."""
        return iter(self.virgin)
