"""Greybox fuzzing engine (the AFL++ substrate).

PMFuzz is built on AFL++; this package is the reproduction's AFL++:

* :mod:`repro.fuzz.rng` — the single deterministic RNG (the stand-in
  for Preeny's derand + disabled ASLR, Section 4.4);
* :mod:`repro.fuzz.mutators` — AFL-style mutation stack: bit/byte
  flips, arithmetic, interesting values, havoc, splice, and a grammar
  dictionary;
* :mod:`repro.fuzz.coverage` — virgin-map bookkeeping with AFL count
  bucketing, shared by the branch map and the PM counter-map;
* :mod:`repro.fuzz.executor` — runs one test case (image + command
  bytes) under full instrumentation and charges the virtual-time cost
  model (the stand-in for the paper's 4-hour wall clock);
* :mod:`repro.fuzz.queue` — the test-case queue with favored culling;
* :mod:`repro.fuzz.engine` — the AFL++-style fuzzing loop that the five
  comparison points of Table 2 configure;
* :mod:`repro.fuzz.stats` — coverage-over-time sampling for Figure 13.
"""

from repro.fuzz.coverage import GlobalCoverage
from repro.fuzz.engine import FuzzEngine
from repro.fuzz.executor import CostModel, ExecResult, Executor
from repro.fuzz.mutators import MutationEngine
from repro.fuzz.queue import FuzzQueue, QueueEntry
from repro.fuzz.rng import DeterministicRandom
from repro.fuzz.stats import CoverageSample, FuzzStats

__all__ = [
    "CostModel",
    "CoverageSample",
    "DeterministicRandom",
    "ExecResult",
    "Executor",
    "FuzzEngine",
    "FuzzQueue",
    "FuzzStats",
    "GlobalCoverage",
    "MutationEngine",
    "QueueEntry",
]
