"""Workload execution harness: the Figure-4 program lifecycle.

This is the orchestration that used to live inline in
``Workload.run``: open the PM image, arm failure points, run
recovery/creation (the execution prefix), apply the input commands, and
classify how the run ended.

It lives outside ``repro/workloads/`` on purpose.  Branch coverage
instruments every line under ``repro/workloads`` — that package *is*
the target program — and the harness is exactly where control flow
diverges by fuzzer configuration: a warm-open cache hit skips the
prefix, a cold run executes it.  If those branches were instrumented,
the coverage map would differ between cache on and cache off, breaking
the fast-path equivalence contract (identical ``comparable()`` stats
across {coverage backend} × {warm-open} × {isolation} × {solo,fleet};
see ``tests/test_fastpath_grid.py``).  Here they are invisible to
coverage, while the instrumented prefix/command code paths
(:meth:`Workload.run_prefix`, :meth:`Workload.run_commands`) stay
identical across every configuration — on a warm hit the prefix's
recorded coverage delta is replayed by the cache, so the resulting map
is byte-identical to a cold open.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import (CORRUPTION_ERRORS, InvalidImageError,
                          OutOfPMemError, PMemError, SimulatedCrash,
                          TransactionAborted)
from repro.pmdk.pool import PmemObjPool
from repro.pmem.image import PMImage
from repro.workloads.base import Command, RunOutcome, RunResult
from repro.workloads.volatile_ops import VolatileCommandProcessor


def run_workload(
    workload,
    image: PMImage,
    commands: Sequence[Command],
    crash_at_fence: Optional[int] = None,
    crash_at_store: Optional[int] = None,
    weak_states: bool = False,
    max_weak_states: int = 8,
    snapshot_plan=None,
    warm=None,
) -> RunResult:
    """Execute ``commands`` on ``image``; optionally crash mid-way.

    The complete program lifecycle of Figure 4: load the PM image,
    (maybe) recover, apply input commands, and either shut down cleanly
    (producing a *normal image*) or fail — at the given ordering point
    (``crash_at_fence``) or at an arbitrary store (``crash_at_store``,
    the paper's probabilistic extra failure points).  With
    ``weak_states`` the result also carries crash images under
    cache-eviction semantics; with a ``snapshot_plan`` the persistence
    domain captures the strict crash image at every planned fence /
    store index (single-pass crash generation, see
    ``RunResult.snapshots``).

    ``warm`` is an optional :class:`~repro.fuzz.warmcache.WarmContext`:
    when its lookup hits, the open/recovery/creation prefix is replaced
    by a restored domain plus replayed coverage deltas — observably
    identical to running it.
    """
    result = RunResult(outcome=RunOutcome.OK)
    if workload._volatile is None:
        # One processor per workload instance (the executor adopts its
        # own pooled processor instead, resetting it per execution).
        workload._volatile = VolatileCommandProcessor()
    pool: Optional[PmemObjPool] = None
    try:
        if warm is not None:
            pool = warm.lookup(workload.layout)
        if pool is not None:
            # Warm hit: the prefix already ran (in the execution that
            # populated the cache); arm the failure points now — the
            # cache guarantees armed indices lie beyond the prefix, so
            # arming after the restore is equivalent to arming before
            # a re-executed prefix.
            pool.domain.crash_at_fence = crash_at_fence
            pool.domain.crash_at_store = crash_at_store
        else:
            try:
                pool = PmemObjPool.open(image, workload.layout)
            except InvalidImageError as exc:
                result.outcome = RunOutcome.INVALID_IMAGE
                result.error = str(exc)
                return result
            # Arm the failure point before any recovery/creation work so
            # that crashes can land inside initialization and recovery.
            if crash_at_fence is not None:
                pool.domain.crash_at_fence = crash_at_fence
            if crash_at_store is not None:
                pool.domain.crash_at_store = crash_at_store
            if snapshot_plan is not None and snapshot_plan:
                pool.domain.plan_snapshots(fences=snapshot_plan.fences,
                                           stores=snapshot_plan.stores)
            workload.run_prefix(pool)
            if warm is not None:
                warm.store(pool)
        workload.run_commands(pool, commands, result)
    except SimulatedCrash:
        result.outcome = RunOutcome.CRASHED
        result.crash_image = pool.crash_image()
        if weak_states:
            result.weak_crash_images = workload._weak_images(
                pool, max_weak_states)
    except CORRUPTION_ERRORS as exc:
        # Wild reads/writes from corrupted persistent data: the process
        # would die with SIGSEGV.
        result.outcome = RunOutcome.SEGFAULT
        result.error = f"{type(exc).__name__}: {exc}"
        result.crash_image = pool.crash_image()
    except (PMemError, OutOfPMemError, TransactionAborted) as exc:
        result.outcome = RunOutcome.ERROR
        result.error = str(exc)
    finally:
        if pool is not None:
            result.fence_count = pool.domain.fence_count
            result.store_count = pool.domain.store_count
            pool.domain.crash_at_fence = None
            pool.domain.crash_at_store = None
            if snapshot_plan is not None and snapshot_plan:
                from repro.pmem.crash import CrashSnapshot

                result.snapshots = [
                    CrashSnapshot(kind=s.kind, index=s.index,
                                  fences_done=s.fences_done,
                                  image=s.materialize())
                    for s in pool.domain.take_snapshots()
                ]
    return result
