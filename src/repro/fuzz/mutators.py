"""AFL-style mutation stack.

Reproduces the mutation pipeline of AFL/AFL++ at the level that matters
for the evaluation: deterministic bit/byte flips and arithmetic for new
queue entries, then stacked *havoc* mutations (with splice) for the bulk
of the campaign, plus a grammar dictionary so the fuzzer can synthesize
mapcli command tokens — AFL++'s ``-x`` dictionary feature, which the
paper's setup inherits via its seed inputs.

All randomness comes from the injected :class:`DeterministicRandom`.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.fuzz.rng import DeterministicRandom

#: AFL's "interesting" byte/word values.
INTERESTING_8 = (0, 1, 16, 32, 64, 100, 127, 128, 255)
INTERESTING_16 = (0, 128, 255, 256, 512, 1000, 1024, 4096, 32767, 65535)

#: mapcli grammar tokens (AFL++ dictionary analogue).
DEFAULT_DICTIONARY: Sequence[bytes] = (
    b"i ", b"g ", b"r ", b"x ", b"n", b"b", b"m", b"q", b"\n",
    b"h", b"s", b"v", b"e ", b"u ", b"w ",
    b"0", b"1", b"7", b"13", b"31", b"42", b"63", b"255", b"512",
    b"i 1 1\n", b"g 1\n", b"r 1\n", b"q\n",
)

MAX_INPUT_SIZE = 4096


class MutationEngine:
    """Produces mutated children from parent inputs."""

    def __init__(self, rng: DeterministicRandom,
                 dictionary: Sequence[bytes] = DEFAULT_DICTIONARY) -> None:
        self.rng = rng
        self.dictionary = list(dictionary)
        #: Distinct operator names applied by the most recent child
        #: (consumed by the engine's mutation-effectiveness metrics).
        self.last_ops: tuple = ()
        self._havoc_ops: List[Callable[[bytearray], None]] = [
            self._op_bitflip,
            self._op_byte_set,
            self._op_byte_arith,
            self._op_interesting8,
            self._op_interesting16,
            self._op_delete_range,
            self._op_clone_range,
            self._op_overwrite_range,
            self._op_insert_token,
            self._op_overwrite_token,
            self._op_synthesize_command,
        ]

    def op_names(self) -> List[str]:
        """Every operator label :attr:`last_ops` can ever contain."""
        names = {op.__name__[len("_op_"):] for op in self._havoc_ops}
        return sorted(names | {"splice", "deterministic"})

    # ------------------------------------------------------------------
    # Deterministic stage (abbreviated, as AFL++ does for slow targets)
    # ------------------------------------------------------------------
    def deterministic(self, data: bytes, limit: int = 32) -> List[bytes]:
        """A bounded sample of walking bit flips and arithmetic."""
        children: List[bytes] = []
        if not data:
            return children
        step = max(1, len(data) * 8 // limit)
        for bit in range(0, len(data) * 8, step):
            child = bytearray(data)
            child[bit // 8] ^= 1 << (bit % 8)
            children.append(bytes(child))
        step = max(1, len(data) // max(1, limit // 4))
        for pos in range(0, len(data), step):
            child = bytearray(data)
            child[pos] = (child[pos] + 1) & 0xFF
            children.append(bytes(child))
        return children

    # ------------------------------------------------------------------
    # Havoc stage
    # ------------------------------------------------------------------
    def havoc(self, data: bytes, stack_max: int = 6) -> bytes:
        """Apply a random stack of 1..2^k mutations (AFL havoc)."""
        buf = bytearray(data if data else b"\n")
        rounds = 1 << self.rng.randint(0, max(1, stack_max.bit_length() - 1))
        applied = set()
        for _ in range(rounds):
            op = self.rng.choice(self._havoc_ops)
            applied.add(op.__name__[len("_op_"):])
            op(buf)
            if len(buf) > MAX_INPUT_SIZE:
                del buf[MAX_INPUT_SIZE:]
            if not buf:
                buf.extend(self.rng.choice(self.dictionary))
        self.last_ops = tuple(sorted(applied))
        return bytes(buf)

    def splice(self, data: bytes, other: bytes) -> bytes:
        """Cross two inputs at random points, then havoc the result."""
        if not data or not other:
            result = self.havoc(data or other)
        else:
            cut_a = self.rng.randint(0, len(data))
            cut_b = self.rng.randint(0, len(other))
            result = self.havoc(data[:cut_a] + other[cut_b:])
        self.last_ops = tuple(sorted(set(self.last_ops) | {"splice"}))
        return result

    # ------------------------------------------------------------------
    # Havoc operators
    # ------------------------------------------------------------------
    def _pos(self, buf: bytearray) -> int:
        return self.rng.randrange(max(1, len(buf)))

    def _op_bitflip(self, buf: bytearray) -> None:
        if buf:
            pos = self._pos(buf)
            buf[pos] ^= 1 << self.rng.randint(0, 7)

    def _op_byte_set(self, buf: bytearray) -> None:
        if buf:
            buf[self._pos(buf)] = self.rng.randint(0, 255)

    def _op_byte_arith(self, buf: bytearray) -> None:
        if buf:
            pos = self._pos(buf)
            buf[pos] = (buf[pos] + self.rng.randint(-35, 35)) & 0xFF

    def _op_interesting8(self, buf: bytearray) -> None:
        if buf:
            buf[self._pos(buf)] = self.rng.choice(INTERESTING_8)

    def _op_interesting16(self, buf: bytearray) -> None:
        if len(buf) >= 2:
            pos = self.rng.randrange(len(buf) - 1)
            value = self.rng.choice(INTERESTING_16)
            buf[pos] = value & 0xFF
            buf[pos + 1] = (value >> 8) & 0xFF

    def _op_delete_range(self, buf: bytearray) -> None:
        if len(buf) > 1:
            start = self._pos(buf)
            length = self.rng.randint(1, max(1, len(buf) // 4))
            del buf[start:start + length]

    def _op_clone_range(self, buf: bytearray) -> None:
        if buf:
            start = self._pos(buf)
            length = self.rng.randint(1, max(1, len(buf) // 4))
            chunk = buf[start:start + length]
            insert_at = self._pos(buf)
            buf[insert_at:insert_at] = chunk

    def _op_overwrite_range(self, buf: bytearray) -> None:
        if len(buf) >= 2:
            src = self._pos(buf)
            dst = self._pos(buf)
            length = self.rng.randint(1, max(1, len(buf) // 4))
            chunk = buf[src:src + length]
            buf[dst:dst + len(chunk)] = chunk

    def _op_insert_token(self, buf: bytearray) -> None:
        token = self.rng.choice(self.dictionary)
        insert_at = self._pos(buf)
        buf[insert_at:insert_at] = token

    def _op_overwrite_token(self, buf: bytearray) -> None:
        token = self.rng.choice(self.dictionary)
        if buf:
            pos = self._pos(buf)
            buf[pos:pos + len(token)] = token

    def _op_synthesize_command(self, buf: bytearray) -> None:
        """Grammar-aware mutation: inject a whole well-formed command.

        The AFL++ custom-mutator analogue: instead of waiting for byte
        soup to stumble into ``i <key> <value>\\n``, synthesize one with
        fresh random operands.  This is the mutation that keeps feeding
        *new keys* into the corpus, which the indirect image fuzzing
        needs to keep growing the persistent state.
        """
        op = self.rng.choice("iiiigrxqbmn")
        if op == "i":
            line = f"i {self.rng.randrange(1024)} {self.rng.randrange(1000)}\n"
        elif op in "grx":
            line = f"{op} {self.rng.randrange(1024)}\n"
        else:
            line = f"{op}\n"
        insert_at = self._pos(buf)
        buf[insert_at:insert_at] = line.encode()
