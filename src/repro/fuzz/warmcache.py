"""Content-addressed warm-open pool cache: the per-exec fast path.

Every execution begins with the same prefix: validate the image
(serialize + CRC round trip), copy it, rebuild the persistence domain,
mount the pool, run transaction recovery and application-level
recovery/creation — all before the first fuzzed command.  Children of
one queue entry run against the *same* parent image, so a campaign
re-executes an identical prefix a dozen times per fuzzing round.  This
is the paper's Section-4.7 SysOpt argument taken one step further: not
only does the image move through memory instead of the filesystem, the
post-open state itself is memoized.

A cache entry captures the complete post-prefix state:

* the domain — a copy-on-write :class:`~repro.pmem.persistence.
  MediaSnapshot` of the media (maintained by ``drain`` exactly like a
  crash-plan snapshot) plus the pending volatile lines and the
  seq/fence/store counters;
* the prefix's recorded side effects — the branch-coverage and PM
  counter-map sparse deltas (with their edge-chain state) and the
  PM sites hit.

On a hit the executor rebuilds the domain from the frozen media,
overlays the pending lines, remounts the pool (the pool constructor
never touches the domain) and replays the recorded deltas — so sparse
maps, ``comparable()`` stats, crash images and the Figure-13 virtual
time are byte-identical to a cold open (``tests/test_fastpath_grid.py``
proves this across backends × cache × isolation × fleet).

Bypass rules (correctness over speed):

* armed fault injectors and trace collection: the prefix's injected
  faults / trace events must actually happen — the executor never
  constructs a warm context for those runs;
* snapshot plans: planned fence/store indices may land inside the
  prefix — bypassed the same way;
* ``crash_at_fence`` / ``crash_at_store`` indices *inside* the prefix:
  the lookup refuses the hit (the crash must fire during prefix
  re-execution; and the crashed prefix never reaches ``store``, so
  nothing wrong is ever cached).

The cache lives per executor — which under fork isolation means per
worker process, inherited through the fork exactly like the rest of
the executor state.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.pmem.image import PMImage


class WarmEntry:
    """One cached post-prefix state (see module docstring)."""

    __slots__ = ("layout", "uuid", "snapshot", "media", "pending", "seq",
                 "fence_count", "store_count", "branch_pairs", "branch_prev",
                 "pm_pairs", "pm_prev", "sites")

    def __init__(self, layout: str, uuid: bytes, snapshot, pending, seq: int,
                 fence_count: int, store_count: int,
                 branch_pairs: Tuple[Tuple[int, int], ...], branch_prev: int,
                 pm_pairs: Tuple[Tuple[int, int], ...], pm_prev: int,
                 sites: FrozenSet[str]) -> None:
        self.layout = layout
        self.uuid = uuid
        #: Live CoW snapshot while the capturing execution may still
        #: fence; frozen into :attr:`media` on the next cache call.
        self.snapshot = snapshot
        self.media: Optional[bytes] = None
        self.pending = pending
        self.seq = seq
        self.fence_count = fence_count
        self.store_count = store_count
        self.branch_pairs = branch_pairs
        self.branch_prev = branch_prev
        self.pm_pairs = pm_pairs
        self.pm_prev = pm_prev
        self.sites = sites

    def freeze(self) -> None:
        """Materialize the CoW snapshot into immutable media bytes."""
        if self.media is None:
            self.media = self.snapshot.materialize()
            self.snapshot = None


class WarmOpenCache:
    """Content-addressed LRU over :class:`WarmEntry` records.

    Keys are the engine's content-derived image id when available (the
    corpus store already pays that hash), else ``(layout, uuid,
    sha256(payload))`` computed here — two images that differ in any
    header field or payload byte can never share an entry.
    """

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[object, WarmEntry]" = OrderedDict()
        #: The most recently stored entry: its capturing execution may
        #: still be running, so its snapshot cannot be materialized yet.
        self._unfrozen: Optional[WarmEntry] = None
        # Host-side observability only — never part of comparable().
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key_for(image: PMImage, image_key: Optional[str] = None):
        """The cache key for ``image`` (hint avoids re-hashing)."""
        if image_key:
            return image_key
        return (image.layout, bytes(image.uuid),
                hashlib.sha256(image.payload).digest())

    def _freeze_pending(self) -> None:
        """Freeze the last stored entry.

        Called at the start of every cache interaction: the executor is
        serial per process, so by the time the *next* execution consults
        the cache, the capturing execution has finished and the snapshot
        view is final.  (A hit on the entry's own key also lands here
        first, so an entry is always frozen before it is replayed.)
        """
        if self._unfrozen is not None:
            self._unfrozen.freeze()
            self._unfrozen = None

    # ------------------------------------------------------------------
    def get(self, key) -> Optional[WarmEntry]:
        """Return the frozen entry for ``key``, or None (counts a miss)."""
        self._freeze_pending()
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key, entry: WarmEntry) -> None:
        """Insert ``entry`` (unfrozen) under ``key``, evicting LRU."""
        self._freeze_pending()
        self._entries.pop(key, None)
        self._entries[key] = entry
        self._unfrozen = entry
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            if evicted is self._unfrozen:  # pragma: no cover - capacity >= 1
                self._unfrozen = None
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._unfrozen = None

    def __len__(self) -> int:
        return len(self._entries)


class WarmContext:
    """Per-execution binding of the cache to one run's state.

    Built by the executor only for cache-eligible runs (no injector, no
    trace collection, no snapshot plan) and handed to the workload
    harness, which calls :meth:`lookup` before the cold open and
    :meth:`store` right after the prefix completes.
    """

    __slots__ = ("cache", "image", "image_key", "crash_at_fence",
                 "crash_at_store", "branch_cov", "ctx", "_key")

    def __init__(self, cache: WarmOpenCache, image: PMImage,
                 image_key: Optional[str], crash_at_fence: Optional[int],
                 crash_at_store: Optional[int], branch_cov, ctx) -> None:
        self.cache = cache
        self.image = image
        self.image_key = image_key
        self.crash_at_fence = crash_at_fence
        self.crash_at_store = crash_at_store
        self.branch_cov = branch_cov
        self.ctx = ctx
        self._key = None

    # ------------------------------------------------------------------
    def lookup(self, layout: str):
        """Return a restored post-prefix pool, or None to open cold."""
        self._key = WarmOpenCache.key_for(self.image, self.image_key)
        entry = self.cache.get(self._key)
        if entry is None:
            return None
        if entry.layout != layout or entry.uuid != bytes(self.image.uuid):
            # Content hash collision across layouts cannot happen (the
            # key embeds both), but an engine-supplied key is trusted
            # input — verify rather than assume.
            self.cache.misses += 1
            self.cache.hits -= 1
            return None
        if (self.crash_at_fence is not None
                and self.crash_at_fence < entry.fence_count) or \
           (self.crash_at_store is not None
                and self.crash_at_store < entry.store_count):
            # The requested crash lands inside the prefix: it must fire
            # during real prefix execution, so this run opens cold.
            self.cache.bypasses += 1
            self.cache.hits -= 1
            return None
        return self._restore(entry)

    def _restore(self, entry: WarmEntry):
        from repro.execcore import make_domain
        from repro.pmdk.pool import PmemObjPool

        domain = make_domain(len(entry.media), entry.media)
        domain.warm_restore(entry.pending, entry.seq, entry.fence_count,
                            entry.store_count)
        # The pool image's payload is only written at close(); an empty
        # placeholder avoids copying 256 KiB that nothing reads.
        pool_image = PMImage(layout=entry.layout, payload=bytearray(),
                             uuid=bytes(entry.uuid))
        pool = PmemObjPool(pool_image, domain)
        # Replay the prefix's recorded side effects.
        self.branch_cov.preload(entry.branch_pairs, entry.branch_prev)
        self.ctx.counter_map.preload(entry.pm_pairs, entry.pm_prev)
        self.ctx.sites_hit.update(entry.sites)
        return pool

    # ------------------------------------------------------------------
    def store(self, pool) -> None:
        """Capture the just-completed prefix state of ``pool``."""
        snapshot, pending, seq, fence_count, store_count = \
            pool.domain.capture_warm_state()
        entry = WarmEntry(
            layout=self.image.layout,
            uuid=bytes(self.image.uuid),
            snapshot=snapshot,
            pending=pending,
            seq=seq,
            fence_count=fence_count,
            store_count=store_count,
            branch_pairs=tuple(self.branch_cov.sparse()),
            branch_prev=self.branch_cov.prev_loc,
            pm_pairs=tuple(self.ctx.counter_map.sparse()),
            pm_prev=self.ctx.counter_map.prev_id,
            sites=frozenset(self.ctx.sites_hit),
        )
        self.cache.put(self._key, entry)
