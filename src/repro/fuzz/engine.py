"""The greybox fuzzing loop (AFL++ analogue) with PMFuzz hook points.

:class:`FuzzEngine` is the complete AFL++-style campaign driver: queue
selection, deterministic + havoc + splice mutation, execution, branch
coverage feedback, favored culling, virtual-time accounting and coverage
sampling.  It *measures* PM-path coverage (the Figure 13 metric) in
every configuration but, like AFL++, does not act on it.

Two hook points let :class:`repro.core.pmfuzz.PMFuzzEngine` layer the
paper's contribution on top:

* :meth:`priority_for` — the Algorithm-2 Favored value (base: always 0);
* :meth:`on_new_pm_path` — PM image + crash image generation for test
  cases that covered a new PM path (base: no-op).

The Table-2 configuration object decides input fuzzing vs direct image
fuzzing and the cost model (SysOpt).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import os

from repro.core.config import FuzzConfig, ImgFuzzMode
from repro.core.dedup import ImageStore
from repro.core.storage import TestCaseStorage
from repro.core.testcase import TestCaseTree
from repro.errors import FuzzerError, HarnessFaultError, StorageFaultError
from repro.execcore import make_global_coverage, set_core
from repro.instrument.covcore import set_backend as set_cov_backend
from repro.fuzz.coverage import MAP_SIZE
from repro.fuzz.executor import CostModel, ExecResult, Executor
from repro.fuzz.mutators import MutationEngine
from repro.fuzz.queue import FuzzQueue, QueueEntry
from repro.fuzz.rng import DeterministicRandom
from repro.fuzz.stats import CoverageSample, FuzzStats
from repro.isolation.backend import create_backend
from repro.observe.bus import TraceBus
from repro.observe.metrics import MetricsRegistry
from repro.observe.monitor import StatusWriter, status_name
from repro.observe.profiler import StageProfiler
from repro.observe.sink import JsonlTraceSink, shard_name
from repro.workloads.base import RunOutcome, Workload

#: Basic seed inputs: "a list of basic commands" (Section 5.1).
#: Insert-heavy, as mapcli seed scripts are — the net insert rate of the
#: corpus determines how fast indirect image fuzzing grows the
#: persistent state.
DEFAULT_SEED_INPUTS: Sequence[bytes] = (
    b"i 1 10\ni 2 20\ni 3 30\ni 4 40\ng 1\nr 2\n",
    b"i 7 70\ni 13 31\ni 42 5\nr 13\nq\nn\n",
)

#: Hard cap so a mis-tuned budget can never spin forever.
MAX_EXECUTIONS = 200_000


class FuzzEngine:
    """One fuzzing campaign: a workload under one Table-2 configuration."""

    def __init__(
        self,
        workload_factory,
        config: FuzzConfig,
        rng: Optional[DeterministicRandom] = None,
        seed_inputs: Sequence[bytes] = DEFAULT_SEED_INPUTS,
        sample_interval: float = 0.25,
        havoc_batch: int = 12,
        injector=None,
        env_faults=None,
        exec_vtime_budget: float = 0.25,
        max_retries: int = 3,
        checkpoint_every: Optional[float] = None,
        checkpoint_path: Optional[str] = None,
        isolation: str = "none",
        isolation_workers: int = 1,
        exec_core: Optional[str] = None,
        batch_execs: int = 8,
        transport: str = "auto",
        exec_wall_timeout: float = 10.0,
        worker_rss_limit: Optional[int] = None,
        worker_max_execs: int = 256,
        triage_dir: Optional[str] = None,
        trace_dir: Optional[str] = None,
        trace_sample: int = 1,
        trace_rotate_bytes: Optional[int] = None,
        profile: bool = False,
        status_every: float = 0.5,
        corpus_db: Optional[str] = None,
        corpus_db_every: float = 0.5,
        cov_backend: Optional[str] = None,
        warm_open: bool = True,
    ) -> None:
        #: Execution core ("scalar" or "vector"): selects the
        #: persistence-domain / counter-map / coverage implementations
        #: process-wide.  Both cores are observationally identical (the
        #: scalar×vector equivalence grid is the contract); the choice
        #: is recorded here — never in the stats — so comparable() stays
        #: equal across cores.  Set before anything that builds a
        #: counter map or coverage object.
        self.exec_core = set_core(exec_core)
        #: Coverage backend ("settrace" or "monitoring"): same contract
        #: as the exec core — both produce identical edge maps (the
        #: fast-path grid is the proof), so the choice is campaign
        #: metadata, never part of comparable().
        self.cov_backend = set_cov_backend(cov_backend)
        self.workload_factory = workload_factory
        self.config = config
        self.rng = rng or DeterministicRandom()
        self.seed_inputs = [bytes(s) for s in seed_inputs]
        if not self.seed_inputs:
            raise FuzzerError("at least one seed input is required")
        self.sample_interval = sample_interval
        self.havoc_batch = havoc_batch

        self.cost_model = CostModel(sys_opt=config.sys_opt)
        self.env_faults = env_faults
        self.executor = Executor(workload_factory, self.cost_model,
                                 injector=injector, env_faults=env_faults,
                                 warm_open=warm_open)
        self.mutator = MutationEngine(self.rng)
        self.queue = FuzzQueue()
        self.branch_cov = make_global_coverage()
        self.pm_cov = make_global_coverage()  # measured in every config
        self.storage = TestCaseStorage(ImageStore(compress=config.sys_opt,
                                                  env_faults=env_faults))
        self.stats = FuzzStats(config_name=config.name)
        #: Observability layer: always-on metrics registry + per-stage
        #: profiler, and a trace bus that is inert unless a trace
        #: directory is configured.  Nothing here feeds back into
        #: campaign decisions (determinism-neutral by contract).
        self.trace_dir = trace_dir
        self.profile = profile
        self.status_every = status_every
        self.metrics = MetricsRegistry()
        self.profiler = StageProfiler(self.metrics, wall_enabled=profile)
        self._m_exec_cost = self.metrics.histogram("exec_cost_vs")
        self._m_queue_depth = self.metrics.gauge("queue_depth")
        self._m_pm_density = self.metrics.gauge("coverage/pm_density")
        self._m_branch_density = self.metrics.gauge(
            "coverage/branch_density")
        self._m_mutops: dict = {}
        # Pre-register every metric the campaign can touch: checkpoint
        # restore ignores unknown keys, so a lazily-registered counter
        # that had not re-fired since resume would silently lose its
        # checkpointed value.  Static registration also keeps the
        # snapshot key set identical across trace on/off and backends.
        for stage in ("mutate", "execute", "crashgen", "sync", "checkpoint",
                      "corpusdb"):
            self.profiler.add_vtime(stage, 0.0)
            self.profiler.count_call(stage, 0)
        for name in ("corpusdb/published", "corpusdb/imported",
                     "corpusdb/degraded"):
            self.metrics.counter(name)
        for op in self.mutator.op_names():
            for what in ("execs", "saves"):
                self._mutop(op, what)
        if trace_dir:
            self.trace = TraceBus(
                sink_factory=lambda: JsonlTraceSink(
                    os.path.join(trace_dir,
                                 shard_name(self.stats.member_index)),
                    rotate_bytes=trace_rotate_bytes),
                sample=trace_sample)
        else:
            self.trace = TraceBus()  # disabled, but still checkpointable
        self._status: Optional[StatusWriter] = None
        #: Per-child mutation-operator labels (set by _children_of,
        #: consumed by _run_one's effectiveness counters).
        self._current_ops: tuple = ()
        self._child_ops: List[tuple] = []
        #: Execution backend: in-process, or the fork-server worker pool
        #: (real wall-clock watchdogs + RSS ceilings + crash triage).
        #: Falls back to in-process where fork is unavailable, recording
        #: why, so a checkpointed fork campaign still resumes anywhere.
        self.backend, self._isolation_fallback = create_backend(
            isolation, self.executor,
            workers=isolation_workers,
            wall_timeout=exec_wall_timeout,
            rss_limit_bytes=worker_rss_limit,
            max_execs_per_worker=worker_max_execs,
            triage_dir=triage_dir,
            stats=self.stats,
            campaign_info=lambda: self.campaign_meta,
            batch_execs=batch_execs, transport=transport)
        self.stats.isolation_backend = self.backend.name
        self.stats.isolation_fallback = self._isolation_fallback
        #: Resilience layer: retries transient harness faults, enforces
        #: the per-test-case time budget, quarantines harness killers.
        # Imported here, not at module level: repro.resilience's package
        # init pulls repro.fuzz back in, and whichever package is
        # imported first must be able to finish initializing.
        from repro.resilience.supervisor import SupervisedExecutor
        self.supervisor = SupervisedExecutor(
            self.executor, stats=self.stats,
            max_retries=max_retries,
            exec_vtime_budget=exec_vtime_budget,
            backend=self.backend)
        # Fault and worker-kill events flow onto this campaign's bus at
        # the engine's current virtual time.
        self.supervisor.trace = self.trace
        self.supervisor.vclock_fn = lambda: self.vclock
        self.backend.trace = self.trace
        self.backend.vclock_fn = lambda: self.vclock
        self.vclock = 0.0
        self.tree: Optional[TestCaseTree] = None
        self._seed_image_id = ""
        self._seed_image_bytes = b""
        self._next_sample = 0.0
        self._set_up = False
        #: Fleet hook points (attached by repro.orchestrate, else inert):
        #: a shared-corpus syncer whose record_saved() sees every saved
        #: test case, and a per-round callback for heartbeat writes.
        self.fleet_sync = None
        self.round_hook = None
        self._fleet_sync_state = None  # stashed by checkpoint restore
        #: Cross-campaign corpus database client (inert when --corpus-db
        #: is off; never fails the run — see repro.corpusdb.client).
        self.corpus_db = None
        if corpus_db:
            from repro.corpusdb.client import CorpusDBClient
            self.corpus_db = CorpusDBClient(corpus_db,
                                            every=corpus_db_every)
            self.corpus_db.attach(self)
        #: Graceful-stop flag (first SIGINT/SIGTERM sets it; the loop
        #: finishes the in-flight execution and stops cleanly).
        self._stop_requested = False
        if checkpoint_every is not None and not checkpoint_path:
            raise FuzzerError("checkpoint_every requires checkpoint_path")
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self._next_checkpoint = checkpoint_every or 0.0
        #: Campaign provenance (workload name, config, kwargs) recorded
        #: by build_engine so checkpoints are self-describing; engines
        #: constructed by hand can still checkpoint by filling this in.
        self.campaign_meta: dict = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Create the seed image and execute every seed input once."""
        if self._set_up:
            return
        # The member index is assigned after construction (by the fleet
        # orchestrator); stamp it before the seed executions emit.
        self.trace.member = self.stats.member_index
        workload: Workload = self.workload_factory()
        self.stats.workload_name = workload.name
        seed_image = workload.create_image()
        # The campaign cannot exist without its seed image, so a
        # permanent storage fault here is allowed to propagate.
        (self._seed_image_id, _), fault_cost = \
            self.supervisor.save_image(self.storage, seed_image)
        self.vclock += fault_cost
        self._seed_image_bytes = seed_image.to_bytes()
        self.tree = TestCaseTree(self._seed_image_id)
        if self.config.img_fuzz is ImgFuzzMode.DIRECT:
            # The image bytes themselves are the fuzzed input.
            entry = self.queue.add(self._seed_image_bytes,
                                   image_id=self._seed_image_id,
                                   branch_favored=True)
            self._run_one(entry, self._seed_image_bytes)
        else:
            for data in self.seed_inputs:
                entry = self.queue.add(data, image_id=self._seed_image_id,
                                       branch_favored=True)
                self._run_one(entry, data)
        if self.corpus_db is not None:
            # Warm-start after the seed executions so imports are
            # coverage-gated against the real baseline maps.
            self.corpus_db.boot(self)
        self._set_up = True

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, budget_vseconds: float) -> FuzzStats:
        """Fuzz until the virtual-time budget is exhausted.

        With ``checkpoint_every`` set, the complete campaign state is
        snapshotted to ``checkpoint_path`` at fuzzing-round boundaries;
        a campaign killed at *any* point resumes from its last
        checkpoint (:meth:`resume`) and — because every random decision
        flows through the snapshotted RNG — replays the interrupted
        tail bit-for-bit, ending in the same final state as an
        uninterrupted run.
        """
        try:
            self.setup()
            self.run_slice(budget_vseconds)
        finally:
            # Reap fork-server workers even on an abrupt exit; the pool
            # respawns lazily if the engine runs again (resume).
            self.backend.close()
        return self.finish()

    def run_slice(self, until_vtime: float) -> None:
        """Fuzz until the virtual clock reaches ``until_vtime``.

        The epoch-sized unit of the fleet orchestrator: no finalization
        happens here (no stop_reason, no final sample, no backend
        teardown), so a member can interleave slices with corpus sync
        and checkpoints, then call :meth:`finish` once.  Solo campaigns
        get the same loop via :meth:`run`.
        """
        self.setup()
        # The member index is assigned after construction (by the fleet
        # orchestrator); stamp it on the bus before the first emit so
        # events carry the right shard label.
        self.trace.member = self.stats.member_index
        while (self.vclock < until_vtime
               and self.stats.executions < MAX_EXECUTIONS
               and not self._stop_requested):
            if self.round_hook is not None:
                self.round_hook(self)
            self._maybe_checkpoint()
            if self.corpus_db is not None:
                self.corpus_db.maybe_sync(self)
            entry = self.queue.select(self.rng)
            entry.fuzz_rounds += 1
            children = self._children_of(entry)
            self._plan_children(entry, children)
            for index, data in enumerate(children):
                if (self.vclock >= until_vtime
                        or self.stats.executions >= MAX_EXECUTIONS
                        or self._stop_requested):
                    break
                self._current_ops = (self._child_ops[index]
                                     if index < len(self._child_ops) else ())
                self._run_one(entry, data)
            self._current_ops = ()
            # Speculative batch results the round did not consume (budget
            # truncation, load faults) are dropped unmerged.
            self.backend.discard_plan()
            if self.stats.executions % 64 == 0:
                self.queue.cull()

    def finish(self) -> FuzzStats:
        """Finalize the campaign: stop reason, coverage sets, last sample.

        On a signal-requested stop the complete campaign state is
        checkpointed one final time (when a checkpoint path is
        configured), so a Ctrl-C'd campaign can resume without losing
        its tail.
        """
        self.backend.close()
        if self._stop_requested:
            self.stats.stop_reason = "signal"
        elif self.stats.executions >= MAX_EXECUTIONS:
            self.stats.stop_reason = "exec-cap"
        else:
            self.stats.stop_reason = "budget"
        self.stats.pm_covered_slots = set(self.pm_cov.covered_slots())
        self.stats.branch_covered_slots = set(self.branch_cov.covered_slots())
        if self.corpus_db is not None:
            self.corpus_db.final_flush(self)
        self._sample(force=True)
        # Final metrics snapshot lands in the stats object even without
        # a trace directory — comparable() always carries the metrics.
        self._snapshot_metrics()
        self.trace.close()
        if self._stop_requested and self.checkpoint_path:
            self.checkpoint()
        return self.stats

    def request_stop(self) -> None:
        """Ask the loop to stop cleanly after the in-flight execution.

        Safe to call from a signal handler: it only sets a flag; the
        fuzzing loop observes it at the next round boundary and
        :meth:`finish` records ``stop_reason="signal"`` plus a final
        checkpoint.
        """
        self._stop_requested = True

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    def close(self) -> None:
        """Release backend resources (idempotent; run() also does this)."""
        self.backend.close()

    # ------------------------------------------------------------------
    # Checkpoint / resume (crash-safe campaign state)
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self) -> None:
        if self.checkpoint_every is None:
            return
        if self.vclock < self._next_checkpoint:
            return
        # Advance the schedule *before* capturing so a resumed campaign
        # inherits the already-advanced value and the trajectory of
        # checkpoints (which never mutates campaign state) lines up.
        self._next_checkpoint = self.vclock + self.checkpoint_every
        self.checkpoint()

    def checkpoint(self, path: Optional[str] = None) -> str:
        """Atomically snapshot the complete campaign state to disk."""
        from repro.resilience.checkpoint import write_engine_checkpoint

        target = path or self.checkpoint_path
        if not target:
            raise FuzzerError("no checkpoint path configured")
        with self.profiler.stage("checkpoint"):
            # A full disk at checkpoint time costs this one snapshot,
            # never the campaign: the previous checkpoint (and its
            # .prev rotation) still exists, so resume stays possible.
            # Drawn from the host fault stream *before* the event is
            # emitted, so a skipped snapshot leaves no trace-seq gap.
            if self.env_faults is not None:
                try:
                    self.env_faults.check_host("disk-full")
                except StorageFaultError as exc:
                    self.stats.disk_full_faults += 1
                    self.trace.emit("fault_injected", self.vclock,
                                    fault="disk-full",
                                    detail=f"checkpoint skipped: {exc}")
                    return ""
            # Emit *before* capturing so the snapshotted bus sequence
            # already covers this event: a resumed member continues at
            # the same seq as an uninterrupted run (merge dedup relies
            # on replayed tails carrying identical (member, seq) pairs).
            self.trace.emit("checkpoint", self.vclock,
                            path=os.path.basename(target))
            write_engine_checkpoint(target, self)
            self.trace.flush()
        return target

    @classmethod
    def resume(cls, path: str, injector=None) -> "FuzzEngine":
        """Rebuild a campaign from its last checkpoint.

        The engine class is chosen from the checkpointed configuration
        (a PMFuzz config resumes as a
        :class:`~repro.core.pmfuzz.PMFuzzEngine`), so calling this on
        either class returns the right engine.  ``injector`` re-attaches
        a workload-level :class:`BugInjector`, which is process state
        and cannot be checkpointed.
        """
        from repro.resilience.checkpoint import resume_campaign

        return resume_campaign(path, injector=injector)

    def _children_of(self, entry: QueueEntry) -> List[bytes]:
        """Mutated inputs for one fuzzing round of ``entry``."""
        children: List[bytes] = []
        ops: List[tuple] = []
        with self.profiler.stage("mutate"):
            if entry.fuzz_rounds == 1 and self.config.input_fuzz:
                det = self.mutator.deterministic(entry.data, limit=8)
                children.extend(det)
                ops.extend([("deterministic",)] * len(det))
            for _ in range(self.havoc_batch):
                if len(self.queue) > 1 and self.rng.chance(0.2):
                    other = self.queue.select(self.rng)
                    children.append(
                        self.mutator.splice(entry.data, other.data))
                else:
                    children.append(self.mutator.havoc(entry.data))
                ops.append(self.mutator.last_ops)
        self._child_ops = ops
        return children

    def _plan_children(self, entry: QueueEntry, children: List[bytes]) -> None:
        """Announce the round's jobs so a batching backend can pipeline.

        The plan mirrors exactly the job tuples :meth:`_run_one` will
        dispatch, in order; a backend without batching ignores it.  The
        image bytes are resolved through the fault-free store read
        (:meth:`~repro.core.dedup.ImageStore.raw_serialized`), never the
        supervised load — planning must not perturb the deterministic
        fault stream.  An image that cannot be resolved simply goes
        unplanned (its execution falls back to a single dispatch).
        """
        if self.backend.batch_execs <= 1 or not children:
            return
        if self.config.img_fuzz is ImgFuzzMode.DIRECT:
            seed = bytes(self.seed_inputs[0])
            self.backend.plan([("raw", bytes(data), seed, {})
                               for data in children])
            return
        image_id = entry.image_id or self._seed_image_id
        if image_id == self._seed_image_id:
            image_bytes = self._seed_image_bytes
        else:
            image_bytes = self.storage.store.raw_serialized(image_id)
        if image_bytes is None:
            return
        self.backend.plan([("run", image_bytes, bytes(data),
                            {"image_key": image_id})
                           for data in children])

    # ------------------------------------------------------------------
    # One execution + feedback
    # ------------------------------------------------------------------
    def _run_one(self, parent: QueueEntry, data: bytes) -> None:
        with self.profiler.stage("execute"):
            if self.config.img_fuzz is ImgFuzzMode.DIRECT:
                result = self.supervisor.run_raw_image(
                    data, self.seed_inputs[0])
            else:
                image_id = parent.image_id or self._seed_image_id
                try:
                    image, fault_cost = self.supervisor.load_image(
                        self.storage, image_id)
                except HarnessFaultError as exc:
                    # The input image is unreadable right now; charge the
                    # recovery time, record a degraded execution, move on.
                    self.vclock += exc.vcost
                    self.profiler.add_vtime("execute", exc.vcost)
                    self.stats.executions += 1
                    self.trace.emit("exec", self.vclock,
                                    outcome="HARNESS_FAULT", cost=exc.vcost)
                    self._sample()
                    return
                self.vclock += fault_cost
                self.profiler.add_vtime("execute", fault_cost)
                # image_id doubles as the warm-open cache key: it is
                # content-derived by the store, so equal id == equal
                # image, and the executor skips re-hashing the payload.
                result = self.supervisor.run(image, data,
                                             image_id=image_id,
                                             image_key=image_id)
        self.vclock += result.cost
        self.profiler.add_vtime("execute", result.cost)
        self._m_exec_cost.observe(result.cost)
        self.stats.executions += 1
        self.trace.emit("exec", self.vclock,
                        outcome=result.outcome.name, cost=result.cost)
        if result.outcome is RunOutcome.INVALID_IMAGE:
            self.stats.invalid_image_runs += 1
        elif result.outcome is RunOutcome.SEGFAULT:
            self.stats.segfault_runs += 1
            self.trace.emit("crash", self.vclock,
                            outcome=result.outcome.name,
                            sites=len(result.sites_hit))
        # Record witness test cases per PM-operation site: the evaluation
        # replays exactly the test cases that cover a synthetic-bug site
        # (Table 3's detection step).  Up to three witnesses with distinct
        # input images are kept — the same site can be reached on paths
        # where an injected bug is benign (e.g. a skipped snapshot of a
        # freshly allocated object), so one witness is not always enough.
        image_id = parent.image_id or self._seed_image_id
        witness = (image_id, data, self.vclock)
        for site in result.sites_hit:
            recorded = self.stats.site_witness.get(site)
            if recorded is None:
                self.stats.site_witness[site] = [witness]
            elif all(w[0] != image_id for w in recorded[:2]):
                if len(recorded) < 3:
                    recorded.append(witness)
                else:
                    recorded[2] = witness  # rotating latest-witness slot
        self.stats.sites_hit.update(result.sites_hit)

        # Branch coverage feedback (the AFL++ logic, always active).
        new_edge, new_bucket = self.branch_cov.update(result.branch_sparse)
        # PM-path prioritization hook (Algorithm 2 in PMFuzz).
        priority = self.priority_for(result)
        pm_new_path, pm_new_bucket = self.pm_cov.update(result.pm_sparse)

        saved = None
        if new_edge or new_bucket or priority > 0:
            saved = self.queue.add(
                data,
                image_id=parent.image_id,
                favored=priority,
                branch_favored=new_edge,
                parent=parent.entry_id,
                created_at=self.vclock,
            )
            if self.fleet_sync is not None:
                # Fleet sync hook: every coverage-interesting test case
                # is a candidate for publication to the shared corpus at
                # the next epoch boundary.
                self.fleet_sync.record_saved(saved, result)
            if self.corpus_db is not None:
                # Same contract toward the cross-campaign database: the
                # entry is buffered now (bytes resolved fault-free) and
                # published at the next sync round.
                self.corpus_db.record_saved(saved, result)
        # Mutation-operator effectiveness: which operators produced the
        # children we ran, and which of those children earned a queue
        # slot.  Deterministic (a function of the seeded campaign only).
        for op in self._current_ops:
            self._mutop(op, "execs").inc()
            if saved is not None:
                self._mutop(op, "saves").inc()
        if saved is not None or pm_new_path or pm_new_bucket:
            self.trace.emit("new_path", self.vclock,
                            pm_paths=self.pm_cov.slots_covered,
                            branch_edges=self.branch_cov.slots_covered,
                            queue_size=len(self.queue),
                            pm_novel=bool(pm_new_path or pm_new_bucket))
            # Every *saved* test case contributes its output image back
            # into the corpus (this is where the paper's 1.5 TB of test
            # cases comes from); the expensive crash-image re-executions
            # are reserved for the PM-novel ones.
            self.on_new_pm_path(parent, data, result,
                                pm_novel=pm_new_path or pm_new_bucket)
        else:
            self.on_result(parent, data, result)
        self._sample()

    # ------------------------------------------------------------------
    # Hook points (overridden by PMFuzzEngine)
    # ------------------------------------------------------------------
    def priority_for(self, result: ExecResult) -> int:
        """Algorithm-2 Favored value; the AFL++ baseline ignores PM paths."""
        return 0

    def on_new_pm_path(self, parent: QueueEntry, data: bytes,
                       result: ExecResult, pm_novel: bool = True) -> None:
        """Called for saved / PM-novel test cases (base: no-op)."""

    def on_result(self, parent: QueueEntry, data: bytes,
                  result: ExecResult) -> None:
        """Called for every non-saved execution (base: no-op)."""

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def _sample(self, force: bool = False) -> None:
        if not force and self.vclock < self._next_sample:
            return
        self._next_sample = self.vclock + self.sample_interval
        # Gauges track the sampled state regardless of tracing, so the
        # deterministic metrics snapshot is identical trace on/off.
        self._m_queue_depth.set(len(self.queue))
        self._m_pm_density.set(self.pm_cov.slots_covered / MAP_SIZE)
        self._m_branch_density.set(self.branch_cov.slots_covered / MAP_SIZE)
        self.stats.record(CoverageSample(
            vtime=self.vclock,
            executions=self.stats.executions,
            pm_paths=self.pm_cov.slots_covered,
            branch_edges=self.branch_cov.slots_covered,
            queue_size=len(self.queue),
            images=len(self.storage.store),
            harness_faults=self.stats.harness_faults,
        ))
        status = self._status_writer()
        if status is not None:
            self._snapshot_metrics()
            status.maybe_write(self.stats, self.vclock, force=force)

    def _snapshot_metrics(self) -> None:
        """Publish the registry into the stats object (both classes)."""
        self.stats.metrics = self.metrics.snapshot()
        self.stats.metrics_host = self.metrics.snapshot(host_dependent=True)

    def _mutop(self, op: str, what: str):
        """Lazily-registered mutation-operator effectiveness counter."""
        key = (op, what)
        counter = self._m_mutops.get(key)
        if counter is None:
            counter = self.metrics.counter(f"mutops/{op}/{what}")
            self._m_mutops[key] = counter
        return counter

    def _status_writer(self) -> Optional[StatusWriter]:
        """Lazy status writer (path depends on the late member index)."""
        if self.trace_dir is None:
            return None
        if self._status is None:
            self._status = StatusWriter(
                os.path.join(self.trace_dir,
                             status_name(self.stats.member_index)),
                every_vtime=self.status_every)
        return self._status

    # ------------------------------------------------------------------
    # Supervised storage helpers
    # ------------------------------------------------------------------
    def _save_image(self, image) -> Optional[tuple]:
        """Supervised image save; ``(image_id, is_new)`` or None.

        A permanent storage fault costs the campaign this one image
        contribution (the recovery time is charged), never the campaign.
        """
        try:
            saved, fault_cost = self.supervisor.save_image(
                self.storage, image)
        except HarnessFaultError as exc:
            self.vclock += exc.vcost
            return None
        self.vclock += fault_cost
        return saved
