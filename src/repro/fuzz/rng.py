"""Deterministic randomness for the whole fuzzing stack.

Section 4.4 of the paper removes three sources of nondeterminism (image
UUIDs, address randomization, external RNGs via Preeny) so that the same
test case always produces the same path and the same PM image.  In this
reproduction the first two are structural (constant UUIDs, pool-relative
addresses); this module handles the third: every random decision in the
fuzzer flows through one seeded :class:`DeterministicRandom`, so a whole
fuzzing campaign replays bit-for-bit from its seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRandom:
    """A seeded RNG with the handful of draws the fuzzer needs."""

    def __init__(self, seed: int = 0x504D465A) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        return self._rng.randint(lo, hi)

    def randrange(self, n: int) -> int:
        """Uniform integer in [0, n)."""
        return self._rng.randrange(n)

    def chance(self, probability: float) -> bool:
        """Bernoulli draw."""
        return self._rng.random() < probability

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform element of a non-empty sequence."""
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """k distinct elements (k clamped to len(seq))."""
        return self._rng.sample(seq, min(k, len(seq)))

    def random_bytes(self, n: int) -> bytes:
        """n uniform bytes."""
        return bytes(self._rng.randrange(256) for _ in range(n))

    def getstate(self):
        """Snapshot the underlying generator state (checkpointable)."""
        return self._rng.getstate()

    def setstate(self, state) -> None:
        """Restore a state captured by :meth:`getstate`."""
        self._rng.setstate(state)

    def fork(self, label: str) -> "DeterministicRandom":
        """Derive an independent, reproducible child RNG.

        Used to give each fuzzing campaign (workload × config) its own
        stream so runs do not perturb each other's draws.
        """
        from repro._util import stable_hash32

        return DeterministicRandom(self.seed ^ stable_hash32(label))
